"""The Emu standard library (the paper's primary contribution).

"The relationship of Emu to .NET/Kiwi is roughly analogous to that of
the stdlib to C/GCC" — this package is that stdlib:

* :mod:`repro.core.dataplane`  — the ``NetFPGA_Data`` bundle handed to a
  service's main loop (frame bytes + sideband metadata).
* :mod:`repro.core.netfpga`    — utility functions of Fig. 6
  (``get_frame``/``set_frame``/``read_input_port``/``set_output_port``/…).
* :mod:`repro.core.protocols`  — reusable parsers of Fig. 3/4 (Ethernet,
  ARP, IPv4, ICMP, UDP, TCP, DNS, Memcached).
* :mod:`repro.core.checksum`   — internet checksum and L4 pseudo-header
  checksums.
* :mod:`repro.core.hash_wrapper` — the Fig. 5 ``Seed()`` handshake over
  the Pearson hash IP block.
* :mod:`repro.core.lru`        — the Fig. 9 LRU cache (HashCAM +
  NaughtyQ).
"""

from repro.core.dataplane import NetFPGAData
from repro.core import netfpga as NetFPGA
from repro.core.checksum import (
    internet_checksum, verify_checksum, icmp_checksum, udp_checksum,
    tcp_checksum,
)
from repro.core.lru import LRU, LookupResult

__all__ = [
    "NetFPGAData", "NetFPGA", "internet_checksum", "verify_checksum",
    "icmp_checksum", "udp_checksum", "tcp_checksum", "LRU", "LookupResult",
]
