"""The look-aside LRU cache of Fig. 9 — "a few lines" over two IP blocks.

``Lookup`` consults HashCAM for the slot index, reads the value from
NaughtyQ and refreshes recency; ``Cache`` enlists the value and records
the slot in the CAM.  The paper contrasts this with P4, where eviction
logic would have to live in the control plane.
"""

from repro.ip.cam import BinaryCAM
from repro.ip.naughtyq import NaughtyQ


class LookupResult:
    """The paper's ``Data`` result object (``matched`` + ``result``)."""

    __slots__ = ("matched", "result")

    def __init__(self, matched=False, result=0):
        self.matched = matched
        self.result = result

    def __repr__(self):
        return "LookupResult(matched=%s, result=%d)" % (
            self.matched, self.result)


class LRU:
    """Least-recently-used cache composed of HashCAM + NaughtyQ."""

    def __init__(self, key_width=64, value_width=64, depth=64):
        idx_bits = max(1, (depth - 1).bit_length())
        self.hash_cam = BinaryCAM(key_width, idx_bits, depth)
        self.naughty_q = NaughtyQ(value_width, depth)
        self.depth = depth
        self._slot_to_key = {}

    def lookup(self, key_in):
        """Fig. 9 ``Lookup``: CAM → queue read → refresh recency."""
        res = LookupResult()
        idx = self.hash_cam.lookup(key_in)
        if self.hash_cam.matched:
            res.matched = True
            res.result = self.naughty_q.read(idx)
            self.naughty_q.back_of_q(idx)
        return res

    def cache(self, key_in, value_in):
        """Fig. 9 ``Cache``: enlist the value, map key → slot.

        An already-cached key is updated in place (and refreshed),
        rather than enlisting a second slot for the same key.
        """
        existing = self.hash_cam.lookup(key_in)
        if self.hash_cam.matched:
            self.naughty_q.update(existing, value_in)
            self.naughty_q.back_of_q(existing)
            return existing
        idx = self.naughty_q.enlist(value_in)
        evicted = self.naughty_q.last_evicted
        if evicted is not None:
            old_key = self._slot_to_key.pop(evicted[0], None)
            if old_key is not None:
                self.hash_cam.invalidate(old_key)
        stale = self._slot_to_key.get(idx)
        if stale is not None and stale != key_in:
            self.hash_cam.invalidate(stale)
        self.hash_cam.write(key_in, idx)
        self._slot_to_key[idx] = key_in
        return idx

    def invalidate(self, key_in):
        """Remove *key_in* (cache deletion)."""
        queue_slot = self.hash_cam.lookup(key_in)
        if not self.hash_cam.matched:
            return False
        self.hash_cam.invalidate(key_in)
        self.naughty_q.release(queue_slot)
        self._slot_to_key.pop(queue_slot, None)
        return True

    @property
    def occupancy(self):
        return self.naughty_q.occupancy
