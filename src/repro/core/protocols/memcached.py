"""Memcached protocols (§4.3): binary over UDP, plus the ASCII protocol.

The paper's first prototype spoke the *binary* protocol over UDP with
6-byte keys and 8-byte values; later extensions added the ASCII protocol
and larger keys/values.  Both are implemented here in full generality —
the size limits live in the server configuration, not the codec.

Memcached-over-UDP prepends an 8-byte *frame header* (request id,
sequence, total datagrams, reserved) to every datagram; both codecs
account for it.
"""

from repro.core.protocols.udp import UDPWrapper
from repro.errors import ParseError
from repro.utils.bitutil import BitUtil

UDP_FRAME_HEADER_BYTES = 8
BINARY_HEADER_BYTES = 24


class BinaryMagic:
    REQUEST = 0x80
    RESPONSE = 0x81


class BinaryOpcodes:
    GET = 0x00
    SET = 0x01
    DELETE = 0x04


class BinaryStatus:
    NO_ERROR = 0x0000
    KEY_NOT_FOUND = 0x0001
    KEY_EXISTS = 0x0002
    VALUE_TOO_LARGE = 0x0003
    INVALID_ARGUMENTS = 0x0004
    NOT_STORED = 0x0005
    UNKNOWN_COMMAND = 0x0081
    OUT_OF_MEMORY = 0x0082


def build_udp_frame_header(request_id, sequence=0, total=1):
    """The 8-byte memcached-over-UDP frame header."""
    out = bytearray(UDP_FRAME_HEADER_BYTES)
    BitUtil.set16(out, 0, request_id)
    BitUtil.set16(out, 2, sequence)
    BitUtil.set16(out, 4, total)
    return bytes(out)


def split_udp_frame(payload):
    """Split a UDP payload into (request_id, body)."""
    if len(payload) < UDP_FRAME_HEADER_BYTES:
        raise ParseError("memcached UDP payload too short")
    return BitUtil.get16(payload, 0), bytes(payload[UDP_FRAME_HEADER_BYTES:])


def memcached_is_write(frame):
    """Classify a memcached-over-UDP :class:`~repro.net.packet.Frame`
    as a store mutation (SET or DELETE) — the per-service classifier
    the multi-core and cluster replication schemes key off."""
    try:
        udp = UDPWrapper(frame.data)
        _, body = split_udp_frame(udp.payload())
    except Exception:
        return False
    if body[:1] == b"\x80":
        return body[1] in (BinaryOpcodes.SET, BinaryOpcodes.DELETE)
    return body[:4] == b"set " or body[:7] == b"delete "


class MemcachedBinaryWrapper:
    """Typed view of a binary-protocol message (after the UDP header)."""

    def __init__(self, data):
        if len(data) < BINARY_HEADER_BYTES:
            raise ParseError("memcached binary message too short")
        self._data = bytes(data)

    @property
    def magic(self):
        return self._data[0]

    @property
    def opcode(self):
        return self._data[1]

    @property
    def key_length(self):
        return BitUtil.get16(self._data, 2)

    @property
    def extras_length(self):
        return self._data[4]

    @property
    def status(self):
        """Status (responses) / vbucket id (requests)."""
        return BitUtil.get16(self._data, 6)

    @property
    def total_body_length(self):
        return BitUtil.get32(self._data, 8)

    @property
    def opaque(self):
        return BitUtil.get32(self._data, 12)

    @property
    def cas(self):
        return BitUtil.get64(self._data, 16)

    @property
    def is_request(self):
        return self.magic == BinaryMagic.REQUEST

    @property
    def is_response(self):
        return self.magic == BinaryMagic.RESPONSE

    def extras(self):
        start = BINARY_HEADER_BYTES
        return self._data[start:start + self.extras_length]

    def key(self):
        start = BINARY_HEADER_BYTES + self.extras_length
        return self._data[start:start + self.key_length]

    def value(self):
        start = (BINARY_HEADER_BYTES + self.extras_length +
                 self.key_length)
        end = BINARY_HEADER_BYTES + self.total_body_length
        return self._data[start:end]


def _build_binary(magic, opcode, key=b"", extras=b"", value=b"",
                  status=0, opaque=0, cas=0):
    body_length = len(extras) + len(key) + len(value)
    out = bytearray(BINARY_HEADER_BYTES)
    out[0] = magic
    out[1] = opcode
    BitUtil.set16(out, 2, len(key))
    out[4] = len(extras)
    BitUtil.set16(out, 6, status)
    BitUtil.set32(out, 8, body_length)
    BitUtil.set32(out, 12, opaque)
    BitUtil.set64(out, 16, cas)
    out.extend(extras)
    out.extend(key)
    out.extend(value)
    return bytes(out)


def build_binary_get(key, opaque=0):
    return _build_binary(BinaryMagic.REQUEST, BinaryOpcodes.GET,
                         key=bytes(key), opaque=opaque)


def build_binary_set(key, value, flags=0, expiry=0, opaque=0):
    extras = int(flags).to_bytes(4, "big") + int(expiry).to_bytes(4, "big")
    return _build_binary(BinaryMagic.REQUEST, BinaryOpcodes.SET,
                         key=bytes(key), extras=extras, value=bytes(value),
                         opaque=opaque)


def build_binary_delete(key, opaque=0):
    return _build_binary(BinaryMagic.REQUEST, BinaryOpcodes.DELETE,
                         key=bytes(key), opaque=opaque)


def build_binary_response(opcode, status=BinaryStatus.NO_ERROR, key=b"",
                          value=b"", extras=b"", opaque=0, cas=0):
    return _build_binary(BinaryMagic.RESPONSE, opcode, key=bytes(key),
                         extras=bytes(extras), value=bytes(value),
                         status=status, opaque=opaque, cas=cas)


# -- ASCII protocol ---------------------------------------------------------

class AsciiCommand:
    """A decoded ASCII-protocol command."""

    __slots__ = ("verb", "key", "flags", "exptime", "value", "noreply")

    def __init__(self, verb, key=b"", flags=0, exptime=0, value=b"",
                 noreply=False):
        self.verb = verb
        self.key = key
        self.flags = flags
        self.exptime = exptime
        self.value = value
        self.noreply = noreply

    def __repr__(self):
        return "AsciiCommand(%s %r)" % (self.verb, self.key)


def parse_ascii_command(payload):
    """Parse one ASCII command (``get``/``set``/``delete``).

    *payload* is the request text after the UDP frame header, e.g.
    ``b"get foo\\r\\n"`` or ``b"set foo 0 0 3\\r\\nbar\\r\\n"``.
    """
    payload = bytes(payload)
    line_end = payload.find(b"\r\n")
    if line_end < 0:
        raise ParseError("ASCII command missing CRLF")
    parts = payload[:line_end].split()
    if not parts:
        raise ParseError("empty ASCII command")
    verb = parts[0].decode("ascii", "replace").lower()
    if verb == "get" or verb == "gets":
        if len(parts) < 2:
            raise ParseError("get needs a key")
        return AsciiCommand("get", key=parts[1])
    if verb == "delete":
        if len(parts) < 2:
            raise ParseError("delete needs a key")
        noreply = len(parts) > 2 and parts[2] == b"noreply"
        return AsciiCommand("delete", key=parts[1], noreply=noreply)
    if verb == "set":
        if len(parts) < 5:
            raise ParseError("set needs key/flags/exptime/bytes")
        try:
            flags = int(parts[2])
            exptime = int(parts[3])
            nbytes = int(parts[4])
        except ValueError:
            raise ParseError("bad numeric field in set")
        noreply = len(parts) > 5 and parts[5] == b"noreply"
        data_start = line_end + 2
        data_end = data_start + nbytes
        if len(payload) < data_end + 2 or \
                payload[data_end:data_end + 2] != b"\r\n":
            raise ParseError("set data block malformed")
        return AsciiCommand("set", key=parts[1], flags=flags,
                            exptime=exptime,
                            value=payload[data_start:data_end],
                            noreply=noreply)
    raise ParseError("unsupported ASCII verb %r" % verb)


def build_ascii_get(key):
    return b"get " + bytes(key) + b"\r\n"


def build_ascii_set(key, value, flags=0, exptime=0, noreply=False):
    head = b"set %s %d %d %d%s\r\n" % (
        bytes(key), flags, exptime, len(value),
        b" noreply" if noreply else b"")
    return head + bytes(value) + b"\r\n"


def build_ascii_delete(key, noreply=False):
    return b"delete " + bytes(key) + \
        (b" noreply" if noreply else b"") + b"\r\n"


def build_ascii_value_response(key, flags, value):
    """``VALUE <key> <flags> <bytes>\\r\\n<data>\\r\\nEND\\r\\n``"""
    return (b"VALUE %s %d %d\r\n" % (bytes(key), flags, len(value)) +
            bytes(value) + b"\r\nEND\r\n")
