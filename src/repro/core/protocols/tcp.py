"""TCP wrapper — enough for TCP Ping (SYN/SYN-ACK, §4.2) and NAT (§4.4)."""

from repro.core.checksum import tcp_checksum
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper, \
    build_ipv4_frame
from repro.errors import ParseError
from repro.utils.bitutil import BitUtil

MIN_HEADER_BYTES = 20


class TCPFlags:
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20


class TCPWrapper:
    """Typed view of a TCP segment inside an IPv4 packet."""

    def __init__(self, buf, offset=None):
        if offset is None:
            offset = IPv4Wrapper(buf).payload_offset()
        if len(buf) < offset + MIN_HEADER_BYTES:
            raise ParseError("frame too short for TCP: %d bytes" % len(buf))
        self._buf = buf
        self._off = offset

    @property
    def source_port(self):
        return BitUtil.get16(self._buf, self._off + 0)

    @source_port.setter
    def source_port(self, value):
        BitUtil.set16(self._buf, self._off + 0, value)

    @property
    def destination_port(self):
        return BitUtil.get16(self._buf, self._off + 2)

    @destination_port.setter
    def destination_port(self, value):
        BitUtil.set16(self._buf, self._off + 2, value)

    @property
    def sequence_number(self):
        return BitUtil.get32(self._buf, self._off + 4)

    @sequence_number.setter
    def sequence_number(self, value):
        BitUtil.set32(self._buf, self._off + 4, value)

    @property
    def ack_number(self):
        return BitUtil.get32(self._buf, self._off + 8)

    @ack_number.setter
    def ack_number(self, value):
        BitUtil.set32(self._buf, self._off + 8, value)

    @property
    def data_offset(self):
        return BitUtil.get_bits(self._buf, self._off + 12, 7, 4)

    @data_offset.setter
    def data_offset(self, value):
        BitUtil.set_bits(self._buf, self._off + 12, 7, 4, value)

    @property
    def flags(self):
        return BitUtil.get8(self._buf, self._off + 13)

    @flags.setter
    def flags(self, value):
        BitUtil.set8(self._buf, self._off + 13, value)

    @property
    def window(self):
        return BitUtil.get16(self._buf, self._off + 14)

    @window.setter
    def window(self, value):
        BitUtil.set16(self._buf, self._off + 14, value)

    @property
    def checksum(self):
        return BitUtil.get16(self._buf, self._off + 16)

    @checksum.setter
    def checksum(self, value):
        BitUtil.set16(self._buf, self._off + 16, value)

    @property
    def urgent_pointer(self):
        return BitUtil.get16(self._buf, self._off + 18)

    @urgent_pointer.setter
    def urgent_pointer(self, value):
        BitUtil.set16(self._buf, self._off + 18, value)

    # -- flag helpers -------------------------------------------------------

    def flag(self, bit):
        return bool(self.flags & bit)

    @property
    def is_syn(self):
        return self.flag(TCPFlags.SYN) and not self.flag(TCPFlags.ACK)

    @property
    def is_syn_ack(self):
        return self.flag(TCPFlags.SYN) and self.flag(TCPFlags.ACK)

    @property
    def is_rst(self):
        return self.flag(TCPFlags.RST)

    def segment(self):
        return bytes(self._buf[self._off:])

    def swap_ports(self):
        src, dst = self.source_port, self.destination_port
        self.destination_port = src
        self.source_port = dst

    def update_checksum(self, ip=None):
        ip = ip or IPv4Wrapper(self._buf)
        self.checksum = 0
        self.checksum = tcp_checksum(
            ip.source_ip_address, ip.destination_ip_address, self.segment())

    def checksum_ok(self, ip=None):
        ip = ip or IPv4Wrapper(self._buf)
        return tcp_checksum(ip.source_ip_address, ip.destination_ip_address,
                            self.segment()) == 0


def build_tcp_segment(src_port, dst_port, seq, ack, flags, window=65535,
                      payload=b""):
    """Assemble a TCP header (no options) + payload, checksum 0."""
    header = bytearray(MIN_HEADER_BYTES)
    BitUtil.set16(header, 0, src_port)
    BitUtil.set16(header, 2, dst_port)
    BitUtil.set32(header, 4, seq)
    BitUtil.set32(header, 8, ack)
    BitUtil.set_bits(header, 12, 7, 4, MIN_HEADER_BYTES // 4)
    BitUtil.set8(header, 13, flags)
    BitUtil.set16(header, 14, window)
    return bytes(header) + bytes(payload)


def build_tcp(dst_mac, src_mac, src_ip, dst_ip, src_port, dst_port,
              flags, seq=0, ack=0, payload=b""):
    """Assemble a complete Ethernet+IPv4+TCP frame with valid checksums."""
    segment = bytearray(build_tcp_segment(src_port, dst_port, seq, ack,
                                          flags, payload=payload))
    BitUtil.set16(segment, 16, tcp_checksum(src_ip, dst_ip, segment))
    return build_ipv4_frame(dst_mac, src_mac, src_ip, dst_ip,
                            IPProtocols.TCP, segment)
