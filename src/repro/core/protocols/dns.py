"""DNS wire format — enough for the non-recursive server of §4.3.

The paper's prototype resolves names of at most 26 bytes to IPv4
addresses and answers NXDOMAIN for unknown names; we implement the full
header, question and A-record answer encoding (plus name compression
pointers on decode) so the constraint is a *server* policy, not a parser
limitation — matching "these constraints can be relaxed".
"""

from repro.errors import ParseError
from repro.utils.bitutil import BitUtil

HEADER_BYTES = 12
MAX_PAPER_NAME_BYTES = 26


class QType:
    A = 1
    NS = 2
    CNAME = 5
    AAAA = 28


class QClass:
    IN = 1


class RCode:
    NO_ERROR = 0
    FORMAT_ERROR = 1
    SERVER_FAILURE = 2
    NAME_ERROR = 3          # NXDOMAIN
    NOT_IMPLEMENTED = 4


def encode_name(name):
    """``"a.example.com"`` → DNS label wire encoding."""
    if name.endswith("."):
        name = name[:-1]
    out = bytearray()
    if name:
        for label in name.split("."):
            raw = label.encode("ascii")
            if not 1 <= len(raw) <= 63:
                raise ParseError("bad DNS label %r" % label)
            out.append(len(raw))
            out.extend(raw)
    out.append(0)
    return bytes(out)


def decode_name(data, offset):
    """Decode a (possibly compressed) name; returns ``(name, next_off)``."""
    labels = []
    jumps = 0
    next_off = None
    while True:
        if offset >= len(data):
            raise ParseError("truncated DNS name")
        length = data[offset]
        if length == 0:
            offset += 1
            break
        if length & 0xC0 == 0xC0:       # compression pointer
            if offset + 1 >= len(data):
                raise ParseError("truncated DNS pointer")
            if next_off is None:
                next_off = offset + 2
            offset = ((length & 0x3F) << 8) | data[offset + 1]
            jumps += 1
            if jumps > 32:
                raise ParseError("DNS pointer loop")
            continue
        if length > 63:
            raise ParseError("bad DNS label length %d" % length)
        if offset + 1 + length > len(data):
            raise ParseError("truncated DNS label")
        labels.append(bytes(data[offset + 1:offset + 1 + length])
                      .decode("ascii", "replace"))
        offset += 1 + length
    name = ".".join(labels)
    return name, (next_off if next_off is not None else offset)


class DNSHeader:
    """Decoded DNS header fields."""

    __slots__ = ("txid", "flags", "qdcount", "ancount", "nscount", "arcount")

    def __init__(self, txid=0, flags=0, qdcount=0, ancount=0, nscount=0,
                 arcount=0):
        self.txid = txid
        self.flags = flags
        self.qdcount = qdcount
        self.ancount = ancount
        self.nscount = nscount
        self.arcount = arcount

    @property
    def is_query(self):
        return not (self.flags & 0x8000)

    @property
    def rcode(self):
        return self.flags & 0x000F

    @property
    def recursion_desired(self):
        return bool(self.flags & 0x0100)

    def encode(self):
        out = bytearray(HEADER_BYTES)
        BitUtil.set16(out, 0, self.txid)
        BitUtil.set16(out, 2, self.flags)
        BitUtil.set16(out, 4, self.qdcount)
        BitUtil.set16(out, 6, self.ancount)
        BitUtil.set16(out, 8, self.nscount)
        BitUtil.set16(out, 10, self.arcount)
        return bytes(out)

    @classmethod
    def decode(cls, data):
        if len(data) < HEADER_BYTES:
            raise ParseError("truncated DNS header")
        return cls(
            BitUtil.get16(data, 0), BitUtil.get16(data, 2),
            BitUtil.get16(data, 4), BitUtil.get16(data, 6),
            BitUtil.get16(data, 8), BitUtil.get16(data, 10))


class DNSQuestion:
    """One question entry."""

    __slots__ = ("name", "qtype", "qclass")

    def __init__(self, name, qtype=QType.A, qclass=QClass.IN):
        self.name = name
        self.qtype = qtype
        self.qclass = qclass

    def encode(self):
        out = bytearray(encode_name(self.name))
        out.extend(self.qtype.to_bytes(2, "big"))
        out.extend(self.qclass.to_bytes(2, "big"))
        return bytes(out)

    @classmethod
    def decode(cls, data, offset):
        name, offset = decode_name(data, offset)
        if offset + 4 > len(data):
            raise ParseError("truncated DNS question")
        qtype = BitUtil.get16(data, offset)
        qclass = BitUtil.get16(data, offset + 2)
        return cls(name, qtype, qclass), offset + 4


class DNSWrapper:
    """Decoded view of a DNS message (header + questions + answers)."""

    def __init__(self, data):
        data = bytes(data)
        self.header = DNSHeader.decode(data)
        self.questions = []
        self.answers = []       # (name, qtype, qclass, ttl, rdata)
        offset = HEADER_BYTES
        for _ in range(self.header.qdcount):
            question, offset = DNSQuestion.decode(data, offset)
            self.questions.append(question)
        for _ in range(self.header.ancount):
            name, offset = decode_name(data, offset)
            if offset + 10 > len(data):
                raise ParseError("truncated DNS answer")
            qtype = BitUtil.get16(data, offset)
            qclass = BitUtil.get16(data, offset + 2)
            ttl = BitUtil.get32(data, offset + 4)
            rdlength = BitUtil.get16(data, offset + 8)
            offset += 10
            if offset + rdlength > len(data):
                raise ParseError("truncated DNS rdata")
            self.answers.append(
                (name, qtype, qclass, ttl, bytes(data[offset:offset +
                                                      rdlength])))
            offset += rdlength

    def first_a_record(self):
        """The first A answer as a 32-bit address, or ``None``."""
        for _, qtype, _, _, rdata in self.answers:
            if qtype == QType.A and len(rdata) == 4:
                return int.from_bytes(rdata, "big")
        return None


def build_dns_query(txid, name, qtype=QType.A, recursion_desired=False):
    """Encode a single-question DNS query payload."""
    header = DNSHeader(txid=txid,
                       flags=0x0100 if recursion_desired else 0,
                       qdcount=1)
    return header.encode() + DNSQuestion(name, qtype).encode()


def build_dns_response(txid, question, address=None,
                       rcode=RCode.NO_ERROR, ttl=300):
    """Encode a response to *question*; A record if *address* given."""
    flags = 0x8000 | (rcode & 0xF)      # QR=1, AA left clear, RD/RA clear
    if rcode == RCode.NO_ERROR and address is not None:
        ancount = 1
    else:
        ancount = 0
    header = DNSHeader(txid=txid, flags=flags, qdcount=1, ancount=ancount)
    out = bytearray(header.encode())
    out.extend(question.encode())
    if ancount:
        out.extend(b"\xC0\x0C")          # pointer to the question name
        out.extend(QType.A.to_bytes(2, "big"))
        out.extend(QClass.IN.to_bytes(2, "big"))
        out.extend(int(ttl).to_bytes(4, "big"))
        out.extend((4).to_bytes(2, "big"))
        out.extend(int(address).to_bytes(4, "big"))
    return bytes(out)
