"""Reusable protocol parsers (paper Fig. 3/4).

Each wrapper shares the underlying frame buffer — mutating a field
through a wrapper mutates the frame, exactly like the paper's C#
wrappers over ``dataplane.tdata``:

    eth = EthernetWrapper(dataplane.tdata)
    ip  = IPv4Wrapper(dataplane.tdata)
    tcp = TCPWrapper(dataplane.tdata)
    arp = ARPWrapper(dataplane.tdata)

Each module also provides ``build_*`` constructors so workloads and
tests can assemble valid packets.
"""

from repro.core.protocols.ethernet import EthernetWrapper, EtherTypes, \
    build_ethernet
from repro.core.protocols.arp import ARPWrapper, build_arp_request, \
    build_arp_reply
from repro.core.protocols.ipv4 import IPv4Wrapper, IPProtocols, build_ipv4
from repro.core.protocols.icmp import ICMPWrapper, ICMPTypes, \
    build_icmp_echo_request
from repro.core.protocols.udp import UDPWrapper, build_udp
from repro.core.protocols.tcp import TCPWrapper, TCPFlags, build_tcp
from repro.core.protocols.dns import (
    DNSWrapper, DNSHeader, DNSQuestion, encode_name, decode_name,
    build_dns_query, build_dns_response, RCode, QType, QClass,
)
from repro.core.protocols.memcached import (
    MemcachedBinaryWrapper, BinaryOpcodes, BinaryMagic, BinaryStatus,
    build_binary_get, build_binary_set, build_binary_delete,
    build_binary_response, parse_ascii_command, build_ascii_get,
    build_ascii_set, build_ascii_delete, AsciiCommand,
)

__all__ = [
    "EthernetWrapper", "EtherTypes", "build_ethernet",
    "ARPWrapper", "build_arp_request", "build_arp_reply",
    "IPv4Wrapper", "IPProtocols", "build_ipv4",
    "ICMPWrapper", "ICMPTypes", "build_icmp_echo_request",
    "UDPWrapper", "build_udp",
    "TCPWrapper", "TCPFlags", "build_tcp",
    "DNSWrapper", "DNSHeader", "DNSQuestion", "encode_name", "decode_name",
    "build_dns_query", "build_dns_response", "RCode", "QType", "QClass",
    "MemcachedBinaryWrapper", "BinaryOpcodes", "BinaryMagic", "BinaryStatus",
    "build_binary_get", "build_binary_set", "build_binary_delete",
    "build_binary_response", "parse_ascii_command", "build_ascii_get",
    "build_ascii_set", "build_ascii_delete", "AsciiCommand",
]
