"""Ethernet II framing."""

from repro.errors import ParseError
from repro.utils.bitutil import BitUtil

HEADER_BYTES = 14


class EtherTypes:
    """Well-known EtherType values (paper Fig. 2 uses ``EtherTypes.IPv4``)."""

    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100
    IPV6 = 0x86DD
    # The direction-packet EtherType is private/experimental (§3.5).
    DIRECTION = 0x88B5


class EthernetWrapper:
    """Typed view of the Ethernet header at the start of a frame."""

    def __init__(self, buf):
        if len(buf) < HEADER_BYTES:
            raise ParseError(
                "frame too short for Ethernet header: %d bytes" % len(buf))
        self._buf = buf

    @property
    def destination_mac(self):
        return BitUtil.get48(self._buf, 0)

    @destination_mac.setter
    def destination_mac(self, value):
        BitUtil.set48(self._buf, 0, value)

    @property
    def source_mac(self):
        return BitUtil.get48(self._buf, 6)

    @source_mac.setter
    def source_mac(self, value):
        BitUtil.set48(self._buf, 6, value)

    @property
    def ethertype(self):
        return BitUtil.get16(self._buf, 12)

    @ethertype.setter
    def ethertype(self, value):
        BitUtil.set16(self._buf, 12, value)

    @property
    def is_broadcast(self):
        return self.destination_mac == 0xFFFFFFFFFFFF

    @property
    def is_multicast(self):
        return bool((self.destination_mac >> 40) & 0x01)

    def swap_macs(self):
        """Swap source and destination (echo/reply services)."""
        src, dst = self.source_mac, self.destination_mac
        self.destination_mac = src
        self.source_mac = dst

    def payload_offset(self):
        return HEADER_BYTES


def build_ethernet(dst_mac, src_mac, ethertype, payload=b""):
    """Assemble an Ethernet frame (unpadded; see ``Frame.pad``)."""
    buf = bytearray(HEADER_BYTES)
    BitUtil.set48(buf, 0, dst_mac)
    BitUtil.set48(buf, 6, src_mac)
    BitUtil.set16(buf, 12, ethertype)
    buf.extend(payload)
    return buf
