"""ARP over Ethernet (RFC 826), as instantiated in the NAT use case."""

from repro.core.protocols.ethernet import EtherTypes, HEADER_BYTES, \
    build_ethernet
from repro.errors import ParseError
from repro.utils.bitutil import BitUtil

ARP_BYTES = 28
OP_REQUEST = 1
OP_REPLY = 2


class ARPWrapper:
    """Typed view of an ARP packet following the Ethernet header."""

    def __init__(self, buf, offset=HEADER_BYTES):
        if len(buf) < offset + ARP_BYTES:
            raise ParseError("frame too short for ARP: %d bytes" % len(buf))
        self._buf = buf
        self._off = offset

    @property
    def hardware_type(self):
        return BitUtil.get16(self._buf, self._off + 0)

    @hardware_type.setter
    def hardware_type(self, value):
        BitUtil.set16(self._buf, self._off + 0, value)

    @property
    def protocol_type(self):
        return BitUtil.get16(self._buf, self._off + 2)

    @protocol_type.setter
    def protocol_type(self, value):
        BitUtil.set16(self._buf, self._off + 2, value)

    @property
    def hardware_size(self):
        return BitUtil.get8(self._buf, self._off + 4)

    @property
    def protocol_size(self):
        return BitUtil.get8(self._buf, self._off + 5)

    @property
    def opcode(self):
        return BitUtil.get16(self._buf, self._off + 6)

    @opcode.setter
    def opcode(self, value):
        BitUtil.set16(self._buf, self._off + 6, value)

    @property
    def sender_mac(self):
        return BitUtil.get48(self._buf, self._off + 8)

    @sender_mac.setter
    def sender_mac(self, value):
        BitUtil.set48(self._buf, self._off + 8, value)

    @property
    def sender_ip(self):
        return BitUtil.get32(self._buf, self._off + 14)

    @sender_ip.setter
    def sender_ip(self, value):
        BitUtil.set32(self._buf, self._off + 14, value)

    @property
    def target_mac(self):
        return BitUtil.get48(self._buf, self._off + 18)

    @target_mac.setter
    def target_mac(self, value):
        BitUtil.set48(self._buf, self._off + 18, value)

    @property
    def target_ip(self):
        return BitUtil.get32(self._buf, self._off + 24)

    @target_ip.setter
    def target_ip(self, value):
        BitUtil.set32(self._buf, self._off + 24, value)

    @property
    def is_request(self):
        return self.opcode == OP_REQUEST

    @property
    def is_reply(self):
        return self.opcode == OP_REPLY


def _build_arp(opcode, sender_mac, sender_ip, target_mac, target_ip):
    payload = bytearray(ARP_BYTES)
    BitUtil.set16(payload, 0, 1)           # Ethernet
    BitUtil.set16(payload, 2, EtherTypes.IPV4)
    BitUtil.set8(payload, 4, 6)
    BitUtil.set8(payload, 5, 4)
    BitUtil.set16(payload, 6, opcode)
    BitUtil.set48(payload, 8, sender_mac)
    BitUtil.set32(payload, 14, sender_ip)
    BitUtil.set48(payload, 18, target_mac)
    BitUtil.set32(payload, 24, target_ip)
    return payload


def build_arp_request(sender_mac, sender_ip, target_ip):
    """Who-has *target_ip*?  Broadcast frame."""
    payload = _build_arp(OP_REQUEST, sender_mac, sender_ip, 0, target_ip)
    return build_ethernet(0xFFFFFFFFFFFF, sender_mac, EtherTypes.ARP,
                          payload)


def build_arp_reply(sender_mac, sender_ip, target_mac, target_ip):
    """*sender_ip* is-at *sender_mac*.  Unicast frame."""
    payload = _build_arp(OP_REPLY, sender_mac, sender_ip, target_mac,
                         target_ip)
    return build_ethernet(target_mac, sender_mac, EtherTypes.ARP, payload)
