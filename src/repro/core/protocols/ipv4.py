"""IPv4 header wrapper (paper Fig. 4 shows two of these accessors)."""

from repro.core.checksum import internet_checksum
from repro.core.protocols.ethernet import EtherTypes, HEADER_BYTES, \
    build_ethernet
from repro.errors import ParseError
from repro.utils.bitutil import BitUtil

MIN_HEADER_BYTES = 20


class IPProtocols:
    ICMP = 1
    TCP = 6
    UDP = 17


class IPv4Wrapper:
    """Typed view of an IPv4 header following the Ethernet header."""

    def __init__(self, buf, offset=HEADER_BYTES):
        if len(buf) < offset + MIN_HEADER_BYTES:
            raise ParseError("frame too short for IPv4: %d bytes" % len(buf))
        self._buf = buf
        self._off = offset

    @property
    def version(self):
        return BitUtil.get_bits(self._buf, self._off, 7, 4)

    @version.setter
    def version(self, value):
        BitUtil.set_bits(self._buf, self._off, 7, 4, value)

    @property
    def ihl(self):
        return BitUtil.get_bits(self._buf, self._off, 3, 4)

    @ihl.setter
    def ihl(self, value):
        BitUtil.set_bits(self._buf, self._off, 3, 4, value)

    @property
    def header_bytes(self):
        return self.ihl * 4

    @property
    def dscp_ecn(self):
        return BitUtil.get8(self._buf, self._off + 1)

    @dscp_ecn.setter
    def dscp_ecn(self, value):
        BitUtil.set8(self._buf, self._off + 1, value)

    @property
    def total_length(self):
        return BitUtil.get16(self._buf, self._off + 2)

    @total_length.setter
    def total_length(self, value):
        BitUtil.set16(self._buf, self._off + 2, value)

    @property
    def identification(self):
        return BitUtil.get16(self._buf, self._off + 4)

    @identification.setter
    def identification(self, value):
        BitUtil.set16(self._buf, self._off + 4, value)

    @property
    def flags_fragment(self):
        return BitUtil.get16(self._buf, self._off + 6)

    @flags_fragment.setter
    def flags_fragment(self, value):
        BitUtil.set16(self._buf, self._off + 6, value)

    @property
    def ttl(self):
        return BitUtil.get8(self._buf, self._off + 8)

    @ttl.setter
    def ttl(self, value):
        BitUtil.set8(self._buf, self._off + 8, value)

    @property
    def protocol(self):
        return BitUtil.get8(self._buf, self._off + 9)

    @protocol.setter
    def protocol(self, value):
        BitUtil.set8(self._buf, self._off + 9, value)

    @property
    def header_checksum(self):
        return BitUtil.get16(self._buf, self._off + 10)

    @header_checksum.setter
    def header_checksum(self, value):
        BitUtil.set16(self._buf, self._off + 10, value)

    # Fig. 4 of the paper defines exactly these two accessors.

    @property
    def source_ip_address(self):
        return BitUtil.get32(self._buf, self._off + 12)

    @source_ip_address.setter
    def source_ip_address(self, value):
        BitUtil.set32(self._buf, self._off + 12, value)

    @property
    def destination_ip_address(self):
        return BitUtil.get32(self._buf, self._off + 16)

    @destination_ip_address.setter
    def destination_ip_address(self, value):
        BitUtil.set32(self._buf, self._off + 16, value)

    # -- derived -----------------------------------------------------------

    def payload_offset(self):
        return self._off + self.header_bytes

    def header(self):
        return bytes(self._buf[self._off:self._off + self.header_bytes])

    def update_checksum(self):
        """Recompute the header checksum in place."""
        self.header_checksum = 0
        self.header_checksum = internet_checksum(self.header())

    def checksum_ok(self):
        return internet_checksum(self.header()) == 0

    def swap_ips(self):
        src, dst = self.source_ip_address, self.destination_ip_address
        self.source_ip_address = dst
        self.destination_ip_address = src


def build_ipv4(src_ip, dst_ip, protocol, payload, ttl=64, identification=0):
    """Assemble an IPv4 header (20 bytes, checksummed) + payload."""
    header = bytearray(MIN_HEADER_BYTES)
    BitUtil.set8(header, 0, 0x45)                 # version 4, IHL 5
    BitUtil.set16(header, 2, MIN_HEADER_BYTES + len(payload))
    BitUtil.set16(header, 4, identification)
    BitUtil.set8(header, 8, ttl)
    BitUtil.set8(header, 9, protocol)
    BitUtil.set32(header, 12, src_ip)
    BitUtil.set32(header, 16, dst_ip)
    BitUtil.set16(header, 10, internet_checksum(header))
    return bytes(header) + bytes(payload)


def build_ipv4_frame(dst_mac, src_mac, src_ip, dst_ip, protocol, payload,
                     ttl=64, identification=0):
    """Assemble a complete Ethernet+IPv4 frame."""
    return build_ethernet(
        dst_mac, src_mac, EtherTypes.IPV4,
        build_ipv4(src_ip, dst_ip, protocol, payload, ttl, identification))
