"""UDP wrapper (DNS, Memcached-over-UDP, NAT all ride on this)."""

from repro.core.checksum import udp_checksum
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper, \
    build_ipv4_frame
from repro.errors import ParseError
from repro.utils.bitutil import BitUtil

HEADER_BYTES = 8


class UDPWrapper:
    """Typed view of a UDP datagram inside an IPv4 packet."""

    def __init__(self, buf, offset=None):
        if offset is None:
            offset = IPv4Wrapper(buf).payload_offset()
        if len(buf) < offset + HEADER_BYTES:
            raise ParseError("frame too short for UDP: %d bytes" % len(buf))
        self._buf = buf
        self._off = offset

    @property
    def source_port(self):
        return BitUtil.get16(self._buf, self._off + 0)

    @source_port.setter
    def source_port(self, value):
        BitUtil.set16(self._buf, self._off + 0, value)

    @property
    def destination_port(self):
        return BitUtil.get16(self._buf, self._off + 2)

    @destination_port.setter
    def destination_port(self, value):
        BitUtil.set16(self._buf, self._off + 2, value)

    @property
    def length(self):
        return BitUtil.get16(self._buf, self._off + 4)

    @length.setter
    def length(self, value):
        BitUtil.set16(self._buf, self._off + 4, value)

    @property
    def checksum(self):
        return BitUtil.get16(self._buf, self._off + 6)

    @checksum.setter
    def checksum(self, value):
        BitUtil.set16(self._buf, self._off + 6, value)

    def payload_offset(self):
        return self._off + HEADER_BYTES

    def payload(self):
        end = self._off + self.length if self.length else len(self._buf)
        return bytes(self._buf[self._off + HEADER_BYTES:end])

    def set_payload(self, payload):
        """Replace the payload, truncating/extending the frame."""
        del self._buf[self._off + HEADER_BYTES:]
        self._buf.extend(payload)
        self.length = HEADER_BYTES + len(payload)

    def datagram(self):
        end = self._off + self.length if self.length else len(self._buf)
        return bytes(self._buf[self._off:end])

    def swap_ports(self):
        src, dst = self.source_port, self.destination_port
        self.destination_port = src
        self.source_port = dst

    def update_checksum(self, ip=None):
        ip = ip or IPv4Wrapper(self._buf)
        self.checksum = 0
        self.checksum = udp_checksum(
            ip.source_ip_address, ip.destination_ip_address, self.datagram())

    def checksum_ok(self, ip=None):
        if self.checksum == 0:      # checksum disabled
            return True
        ip = ip or IPv4Wrapper(self._buf)
        data = bytearray(self.datagram())
        stored = self.checksum
        BitUtil.set16(data, 6, 0)
        return udp_checksum(ip.source_ip_address, ip.destination_ip_address,
                            data) == stored


def build_udp_datagram(src_port, dst_port, payload):
    """Assemble a UDP header + payload (checksum left 0 = disabled)."""
    header = bytearray(HEADER_BYTES)
    BitUtil.set16(header, 0, src_port)
    BitUtil.set16(header, 2, dst_port)
    BitUtil.set16(header, 4, HEADER_BYTES + len(payload))
    return bytes(header) + bytes(payload)


def build_udp(dst_mac, src_mac, src_ip, dst_ip, src_port, dst_port,
              payload, with_checksum=True):
    """Assemble a complete Ethernet+IPv4+UDP frame."""
    datagram = bytearray(build_udp_datagram(src_port, dst_port, payload))
    if with_checksum:
        BitUtil.set16(datagram, 6,
                      udp_checksum(src_ip, dst_ip, datagram))
    return build_ipv4_frame(dst_mac, src_mac, src_ip, dst_ip,
                            IPProtocols.UDP, datagram)
