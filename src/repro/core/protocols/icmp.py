"""ICMP (echo request/reply) for the ICMP Echo service (§4.2)."""

from repro.core.checksum import internet_checksum
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper, \
    build_ipv4_frame
from repro.errors import ParseError
from repro.utils.bitutil import BitUtil

HEADER_BYTES = 8


class ICMPTypes:
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


class ICMPWrapper:
    """Typed view of an ICMP message inside an IPv4 packet."""

    def __init__(self, buf, offset=None):
        if offset is None:
            offset = IPv4Wrapper(buf).payload_offset()
        if len(buf) < offset + HEADER_BYTES:
            raise ParseError("frame too short for ICMP: %d bytes" % len(buf))
        self._buf = buf
        self._off = offset

    @property
    def icmp_type(self):
        return BitUtil.get8(self._buf, self._off + 0)

    @icmp_type.setter
    def icmp_type(self, value):
        BitUtil.set8(self._buf, self._off + 0, value)

    @property
    def code(self):
        return BitUtil.get8(self._buf, self._off + 1)

    @code.setter
    def code(self, value):
        BitUtil.set8(self._buf, self._off + 1, value)

    @property
    def checksum(self):
        return BitUtil.get16(self._buf, self._off + 2)

    @checksum.setter
    def checksum(self, value):
        BitUtil.set16(self._buf, self._off + 2, value)

    @property
    def identifier(self):
        return BitUtil.get16(self._buf, self._off + 4)

    @identifier.setter
    def identifier(self, value):
        BitUtil.set16(self._buf, self._off + 4, value)

    @property
    def sequence(self):
        return BitUtil.get16(self._buf, self._off + 6)

    @sequence.setter
    def sequence(self, value):
        BitUtil.set16(self._buf, self._off + 6, value)

    @property
    def is_echo_request(self):
        return self.icmp_type == ICMPTypes.ECHO_REQUEST

    @property
    def is_echo_reply(self):
        return self.icmp_type == ICMPTypes.ECHO_REPLY

    def message(self):
        """All ICMP bytes (header + payload) to the end of the frame."""
        return bytes(self._buf[self._off:])

    def update_checksum(self):
        self.checksum = 0
        self.checksum = internet_checksum(self.message())

    def checksum_ok(self):
        return internet_checksum(self.message()) == 0


def build_icmp_echo_request(dst_mac, src_mac, src_ip, dst_ip,
                            identifier=1, sequence=1, payload=b"emu-ping"):
    """Assemble a complete Ethernet+IPv4+ICMP echo request frame."""
    icmp = bytearray(HEADER_BYTES)
    BitUtil.set8(icmp, 0, ICMPTypes.ECHO_REQUEST)
    BitUtil.set16(icmp, 4, identifier)
    BitUtil.set16(icmp, 6, sequence)
    icmp.extend(payload)
    BitUtil.set16(icmp, 2, internet_checksum(icmp))
    return build_ipv4_frame(dst_mac, src_mac, src_ip, dst_ip,
                            IPProtocols.ICMP, icmp)
