"""The Fig. 5 wrapper: driving the hash IP block's seed handshake.

The paper's C# ``Seed()`` busy-waits on ``init_hash_ready`` with
``Kiwi.Pause()`` between samples.  Here the same protocol is written as a
generator — each ``yield`` is one ``Kiwi.Pause()`` — so the hardware
target can step it cycle-by-cycle and the software target can just drain
it.
"""

from repro.ip.pearson import PearsonHash
from repro.kiwi.runtime import pause


class HashWrapper:
    """Cycle-level driver for :class:`~repro.ip.pearson.PearsonHash`."""

    def __init__(self, core=None):
        self.core = core if core is not None else PearsonHash()

    def seed(self, data_in):
        """Transcription of the paper's ``Seed(byte data_in)``.

        Generator; the caller (or target runtime) must tick the hash core
        once per yielded pause, mirroring the shared clock.
        """
        while self.core.init_hash_ready:
            yield pause()
        self.core.data_in = data_in
        self.core.init_hash_enable = True
        yield pause()
        while not self.core.init_hash_ready:
            yield pause()
        yield pause()
        self.core.init_hash_enable = False
        yield pause()

    def seed_bytes(self, data):
        """Seed a whole byte string through the handshake."""
        for byte in bytes(data):
            for marker in self.seed(byte):
                yield marker

    def run_software(self, data):
        """Software semantics: drain the handshake, ticking as we go."""
        gen = self.seed_bytes(data)
        for _ in gen:
            self.core.tick()
        return self.core.digest

    @property
    def digest(self):
        return self.core.digest
