"""Internet checksums (RFC 1071) and L4 pseudo-header checksums.

The paper's §5.5 debugging anecdote is literally about a checksum bug
found via direction packets; these functions are both the library code
services use and the oracle the debug example checks against.
"""


def internet_checksum(data):
    """One's-complement 16-bit checksum over *data*."""
    data = bytes(data)
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    # Fold any remaining carry.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data):
    """True iff *data* (with its checksum field in place) sums to zero."""
    return internet_checksum(data) == 0


def icmp_checksum(icmp_bytes):
    """Checksum over the ICMP header+payload (checksum field zeroed)."""
    return internet_checksum(icmp_bytes)


def _pseudo_header(src_ip, dst_ip, protocol, length):
    return bytes([
        (src_ip >> 24) & 0xFF, (src_ip >> 16) & 0xFF,
        (src_ip >> 8) & 0xFF, src_ip & 0xFF,
        (dst_ip >> 24) & 0xFF, (dst_ip >> 16) & 0xFF,
        (dst_ip >> 8) & 0xFF, dst_ip & 0xFF,
        0, protocol,
        (length >> 8) & 0xFF, length & 0xFF,
    ])


def udp_checksum(src_ip, dst_ip, udp_bytes):
    """UDP checksum with IPv4 pseudo-header; 0 results become 0xFFFF."""
    pseudo = _pseudo_header(src_ip, dst_ip, 17, len(udp_bytes))
    value = internet_checksum(pseudo + bytes(udp_bytes))
    # In UDP a computed 0 is transmitted as 0xFFFF (0 means "no checksum").
    return value if value != 0 else 0xFFFF


def tcp_checksum(src_ip, dst_ip, tcp_bytes):
    """TCP checksum with IPv4 pseudo-header."""
    pseudo = _pseudo_header(src_ip, dst_ip, 6, len(tcp_bytes))
    return internet_checksum(pseudo + bytes(tcp_bytes))
