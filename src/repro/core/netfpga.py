"""Utility functions for interacting with the FPGA dataplane (Fig. 6).

The paper lists these as the target-binding layer: "one could have
different sets of such functions for different targets, without changing
the code for protocol parsing or IP blocks."  The CPU and netsim targets
reuse exactly these functions over the same :class:`NetFPGAData`.
"""

from repro.core.dataplane import NetFPGAData


def get_frame(src):
    """Extract the frame from ``NetFPGA_Data`` into a byte array."""
    return bytearray(src.tdata)


def set_frame(src, dst):
    """Move the contents of a byte array into the frame field."""
    dst.tdata[:] = src


def read_input_port(dataplane):
    """Read the port on which the frame was received."""
    return dataplane.src_port


def set_output_port(dataplane, value):
    """Forward out of a single port: one-hot encode *value*."""
    dataplane.dst_ports = 1 << int(value)


def set_output_ports_raw(dataplane, bitmap):
    """Set the raw one-hot output bitmap (multi-port transmission)."""
    dataplane.dst_ports = int(bitmap)


def broadcast(dataplane, exclude_source=True):
    """Send out of every port (except, by default, the input port)."""
    mask = (1 << NetFPGAData.NUM_PORTS) - 1
    if exclude_source:
        mask &= ~(1 << dataplane.src_port)
    dataplane.dst_ports = mask


def drop(dataplane):
    """Clear the output bitmap: the frame is implicitly dropped."""
    dataplane.dst_ports = 0


def send_back(dataplane):
    """Reply out of the port the frame arrived on (echo services)."""
    dataplane.dst_ports = 1 << dataplane.src_port
