"""The dataplane bundle a service's main loop receives.

Matches the paper's ``NetFPGA_Data``: ``tdata`` is the frame (a byte
buffer shared with every protocol wrapper — Fig. 3 instantiates four
wrappers over the same ``dataplane.tdata``), and the metadata sideband
carries the input port and the one-hot output-port bitmap.
"""

from repro.core.protocols.ethernet import EtherTypes
from repro.net.packet import Frame
from repro.utils.bitutil import BitUtil


class TData(bytearray):
    """The frame buffer, with the protocol-test helpers used in Fig. 2.

    ``dataplane.tdata.ethertype_is(EtherTypes.IPV4)`` mirrors the
    listing's ``dataplane.tdata.EtherType_Is(EtherTypes.IPv4)``.
    """

    def ethertype(self):
        return BitUtil.get16(self, 12) if len(self) >= 14 else 0

    def ethertype_is(self, ethertype):
        return self.ethertype() == ethertype

    def is_ipv4(self):
        return self.ethertype_is(EtherTypes.IPV4)

    def is_arp(self):
        return self.ethertype_is(EtherTypes.ARP)


class NetFPGAData:
    """Frame + metadata as presented to the main logical core."""

    __slots__ = ("tdata", "src_port", "dst_ports", "tuser")

    NUM_PORTS = 4

    def __init__(self, frame=None, src_port=0):
        if frame is None:
            self.tdata = TData()
            self.src_port = src_port
        elif isinstance(frame, Frame):
            self.tdata = TData(frame.data)
            self.src_port = frame.src_port
        else:
            self.tdata = TData(frame)
            self.src_port = src_port
        self.dst_ports = 0
        self.tuser = 0

    @property
    def dropped(self):
        """No output port selected: the frame is implicitly dropped."""
        return self.dst_ports == 0

    def to_frame(self):
        """Convert back to a :class:`~repro.net.packet.Frame`."""
        return Frame(bytes(self.tdata), self.src_port, self.dst_ports)

    def __repr__(self):
        return "NetFPGAData(%d bytes, src=%d, dst=0x%x)" % (
            len(self.tdata), self.src_port, self.dst_ports)
