"""Exception hierarchy for the Emu reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch framework errors without masking programming mistakes.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class BitRangeError(ReproError, ValueError):
    """A bit/byte access fell outside the backing buffer."""


class WidthError(ReproError, ValueError):
    """An operation mixed incompatible bit widths."""


class ParseError(ReproError, ValueError):
    """A packet or protocol header could not be parsed."""


class CompileError(ReproError):
    """The Kiwi compiler rejected an input program."""

    def __init__(self, message, node=None):
        self.node = node
        if node is not None and hasattr(node, "lineno"):
            message = "line %d: %s" % (node.lineno, message)
        super().__init__(message)


class ScheduleError(CompileError):
    """The scheduler could not place operations into clock cycles."""


class SimulationError(ReproError):
    """The RTL simulator hit an inconsistent state (e.g. comb. loop)."""


class SimulationTimeout(SimulationError):
    """``run_until`` exhausted its cycle budget waiting on a signal.

    Carries the signal name, the value waited for, and the number of
    cycles actually spent, so harness failures name the stuck wire
    instead of a bare cycle count.
    """

    def __init__(self, signal_name, value, cycles, last_value):
        self.signal_name = signal_name
        self.value = value
        self.cycles = cycles
        self.last_value = last_value
        super().__init__(
            "signal %r never reached %d within %d cycles "
            "(still %d)" % (signal_name, value, cycles, last_value))


class EngineError(ReproError):
    """The compiled execution engine rejected or timed out a design."""


class ProtocolError(ReproError):
    """An IP-block handshake or wire protocol was violated."""


class DirectionError(ReproError):
    """A direction (debug) command was malformed or unsupported."""


class TargetError(ReproError):
    """A heterogeneous target could not run the requested service."""


class NetSimError(ReproError):
    """The network simulator was misconfigured."""


class HostModelError(ReproError):
    """The host-stack model received invalid parameters."""


class ClusterError(ReproError):
    """The scale-out cluster layer was misconfigured."""


class ObsError(ReproError):
    """The observability layer (tracing/metrics/profiling) was misused."""


class ServeError(ReproError):
    """The socket serving front-end (repro.serve) was misconfigured,
    or a service cannot be put behind a real socket."""
