"""Synchronous FIFO.

The output-queue stage of the NetFPGA reference pipeline (Fig. 10) is a
bank of these; the input arbiter also uses one per port.
"""

from repro.errors import ProtocolError, WidthError
from repro.rtl import Module, const, mux


class SyncFIFO:
    """Behavioural model + netlist of a single-clock FIFO."""

    def __init__(self, width, depth):
        if depth <= 0:
            raise WidthError("FIFO depth must be positive")
        self.width = width
        self.depth = depth
        self._items = []

    # -- behavioural ------------------------------------------------------

    def push(self, value):
        """Enqueue; raises :class:`ProtocolError` when full (overrun)."""
        if self.full:
            raise ProtocolError("FIFO overrun (depth %d)" % self.depth)
        self._items.append(value)

    def pop(self):
        """Dequeue; raises :class:`ProtocolError` when empty (underrun)."""
        if self.empty:
            raise ProtocolError("FIFO underrun")
        return self._items.pop(0)

    def try_push(self, value):
        if self.full:
            return False
        self._items.append(value)
        return True

    def try_pop(self):
        if self.empty:
            return None
        return self._items.pop(0)

    def peek(self):
        if self.empty:
            raise ProtocolError("FIFO peek on empty")
        return self._items[0]

    @property
    def empty(self):
        return not self._items

    @property
    def full(self):
        return len(self._items) >= self.depth

    @property
    def occupancy(self):
        return len(self._items)

    def clear(self):
        self._items = []

    # -- netlist ----------------------------------------------------------

    def build_netlist(self, name="fifo"):
        """Classic circular-buffer FIFO with registered pointers."""
        m = Module(name)
        ptr_bits = max(1, self.depth.bit_length())
        push = m.input("push", 1)
        pop = m.input("pop", 1)
        data_in = m.input("data_in", self.width)
        data_out = m.output("data_out", self.width)
        empty = m.output("empty", 1)
        full = m.output("full", 1)

        storage = m.memory("storage", self.width, self.depth)
        head = m.reg("head", ptr_bits)
        tail = m.reg("tail", ptr_bits)
        count = m.reg("count", ptr_bits)

        is_empty = count.eq(const(0, ptr_bits))
        is_full = count.eq(const(self.depth, ptr_bits))
        do_push = push & ~is_full
        do_pop = pop & ~is_empty

        def bump(ptr):
            wrapped = ptr.eq(const(self.depth - 1, ptr_bits))
            return mux(wrapped, const(0, ptr_bits),
                       ptr + const(1, ptr_bits))

        m.sync(tail, mux(do_push, bump(tail), tail))
        m.sync(head, mux(do_pop, bump(head), head))
        delta_up = count + const(1, ptr_bits)
        delta_down = count - const(1, ptr_bits)
        m.sync(count, mux(do_push & ~do_pop, delta_up,
                          mux(do_pop & ~do_push, delta_down, count)))
        m.write_port(storage, tail, data_in, do_push)
        m.comb(data_out, storage.read(head))
        m.comb(empty, is_empty)
        m.comb(full, is_full)
        return m
