"""NaughtyQ: the recency queue behind the LRU cache of Fig. 9.

The paper's LRU is built from two blocks: ``HashCAM`` (key → slot index)
and ``NaughtyQ`` (slot storage ordered by recency).  The queue exposes:

* ``enlist(value) -> idx``  — store a value in a slot, placing the slot
  at the back (most-recently-used end) of the queue; when no free slot
  exists, the *front* (least-recently-used) slot is reclaimed and its
  eviction is reported via :attr:`last_evicted`.
* ``read(idx) -> value``    — fetch a slot's value.
* ``back_of_q(idx)``        — move a slot to the MRU end (a cache hit).
"""

from repro.errors import WidthError
from repro.rtl import Module


class NaughtyQ:
    """Behavioural model + resource stub of the recency queue."""

    def __init__(self, value_width, depth):
        if depth <= 0:
            raise WidthError("NaughtyQ depth must be positive")
        self.value_width = value_width
        self.depth = depth
        self._values = [0] * depth
        self._order = []          # slot indices, front = LRU
        self._free = list(range(depth))
        self.last_evicted = None  # (slot, value) of the most recent evict

    def enlist(self, value):
        """Store *value*, return its slot; evicts the LRU slot if full."""
        if value < 0 or value >= (1 << self.value_width):
            raise WidthError("value exceeds %d bits" % self.value_width)
        self.last_evicted = None
        if self._free:
            slot = self._free.pop(0)
        else:
            slot = self._order.pop(0)
            self.last_evicted = (slot, self._values[slot])
        self._values[slot] = value
        self._order.append(slot)
        return slot

    def read(self, idx):
        self._check(idx)
        return self._values[idx]

    def update(self, idx, value):
        """Overwrite a slot's value without changing its recency."""
        self._check(idx)
        self._values[idx] = value & ((1 << self.value_width) - 1)

    def back_of_q(self, idx):
        """Mark slot *idx* most recently used."""
        self._check(idx)
        if idx in self._order:
            self._order.remove(idx)
            self._order.append(idx)

    def release(self, idx):
        """Free a slot explicitly (cache invalidation)."""
        self._check(idx)
        if idx in self._order:
            self._order.remove(idx)
            self._free.append(idx)
            self._values[idx] = 0

    def lru_slot(self):
        """The slot that would be evicted next, or ``None`` if not full."""
        if self._free or not self._order:
            return None
        return self._order[0]

    @property
    def occupancy(self):
        return len(self._order)

    def _check(self, idx):
        if not 0 <= idx < self.depth:
            raise WidthError("NaughtyQ slot %d out of range" % idx)

    def build_netlist(self, name="naughtyq"):
        """Resource model: value BRAM + doubly-linked recency list."""
        m = Module(name)
        idx_bits = max(1, (self.depth - 1).bit_length())
        m.memory("values", self.value_width, self.depth)
        m.memory("next_ptr", idx_bits, self.depth)
        m.memory("prev_ptr", idx_bits, self.depth)
        head = m.reg("head", idx_bits)
        tail = m.reg("tail", idx_bits)
        count = m.reg("count", idx_bits + 1)
        for reg in (head, tail, count):
            m.sync(reg, reg)
        # Pointer-update logic is the block's dominant LUT cost.
        m.attributes["blackbox_luts"] = 14 * idx_bits + 40
        m.attributes["is_ip_block"] = True
        return m
