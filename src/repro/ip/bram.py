"""Block RAM with 1-cycle read latency.

On-chip memory is what gives Emu services their low, *constant* latency
(§5.4 "Optimizations": on-chip = low constant latency, on-board DRAM =
bigger but slower and variable).  :class:`BlockRAM` models the on-chip
variant; :class:`DramModel` models the on-board DDR3 alternative with
refresh-induced latency variance, used by the Memcached ablation.
"""

from repro.errors import WidthError
from repro.rtl import Module, mux


class BlockRAM:
    """Behavioural model + netlist of a simple dual-port BRAM."""

    READ_LATENCY_CYCLES = 1

    def __init__(self, width, depth):
        if depth <= 0:
            raise WidthError("BRAM depth must be positive")
        self.width = width
        self.depth = depth
        self._data = [0] * depth

    def read(self, addr):
        self._check(addr)
        return self._data[addr]

    def write(self, addr, value):
        self._check(addr)
        if value < 0 or value >= (1 << self.width):
            raise WidthError("BRAM value exceeds %d bits" % self.width)
        self._data[addr] = value

    def load(self, values, base=0):
        """Bulk initialisation (e.g. DNS resolution table)."""
        for offset, value in enumerate(values):
            self.write(base + offset, value)

    def _check(self, addr):
        if not 0 <= addr < self.depth:
            raise WidthError("BRAM address %d out of range" % addr)

    @property
    def bits(self):
        return self.width * self.depth

    def build_netlist(self, name="bram"):
        m = Module(name)
        addr_bits = max(1, (self.depth - 1).bit_length())
        read_addr = m.input("read_addr", addr_bits)
        write_addr = m.input("write_addr", addr_bits)
        write_data = m.input("write_data", self.width)
        write_en = m.input("write_en", 1)
        read_data = m.output("read_data", self.width)

        storage = m.memory("storage", self.width, self.depth)
        # Registered read address models the 1-cycle read latency.
        addr_reg = m.reg("addr_reg", addr_bits)
        m.sync(addr_reg, read_addr)
        m.comb(read_data, storage.read(addr_reg))
        m.write_port(storage, write_addr, write_data, write_en)
        return m


class DramModel:
    """On-board DRAM: larger, but reads take longer and vary with refresh.

    The access time alternates deterministically (so simulations are
    reproducible): every ``REFRESH_PERIOD``-th access collides with a
    refresh and pays ``REFRESH_PENALTY_CYCLES`` extra.
    """

    BASE_LATENCY_CYCLES = 14
    REFRESH_PERIOD = 64
    REFRESH_PENALTY_CYCLES = 26

    def __init__(self, width, depth):
        self.width = width
        self.depth = depth
        self._data = {}
        self._accesses = 0

    def read(self, addr):
        if not 0 <= addr < self.depth:
            raise WidthError("DRAM address %d out of range" % addr)
        self._accesses += 1
        return self._data.get(addr, 0)

    def write(self, addr, value):
        if not 0 <= addr < self.depth:
            raise WidthError("DRAM address %d out of range" % addr)
        self._accesses += 1
        self._data[addr] = value & ((1 << self.width) - 1)

    def last_access_latency(self):
        """Cycles the most recent access took (refresh-aware)."""
        if self._accesses % self.REFRESH_PERIOD == 0:
            return self.BASE_LATENCY_CYCLES + self.REFRESH_PENALTY_CYCLES
        return self.BASE_LATENCY_CYCLES

    @property
    def bits(self):
        return self.width * self.depth
