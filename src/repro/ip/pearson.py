"""Pearson hashing IP block with the seed handshake of Fig. 5.

The paper uses this module in streaming mode: the host program seeds it
byte-by-byte over a two-signal handshake (``init_hash_ready`` /
``init_hash_enable`` plus ``data_in``), then feeds data bytes and reads
the digest.  We reproduce both the hash function and the wire protocol;
:class:`repro.core.hash_wrapper.HashWrapper` re-implements the paper's
C# ``Seed()`` loop on top of it.
"""

from repro.errors import ProtocolError
from repro.rtl import Module, const, mux

# Classic Pearson permutation table (a fixed 0..255 permutation).  Built
# deterministically from a linear-congruential shuffle so no data files
# are needed.
def _build_table():
    table = list(range(256))
    state = 0x9E3779B1
    for i in range(255, 0, -1):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        j = state % (i + 1)
        table[i], table[j] = table[j], table[i]
    return table


PEARSON_TABLE = _build_table()


def pearson_hash(data, seed=0, table=None):
    """Reference software Pearson hash of *data* (bytes) with *seed*."""
    table = table or PEARSON_TABLE
    digest = seed & 0xFF
    for byte in bytes(data):
        digest = table[digest ^ byte]
    return digest


def pearson_hash_wide(data, width=16):
    """Multi-lane Pearson hash producing a *width*-bit digest.

    Standard construction: lane *i* hashes the data with seed *i* and
    contributes one byte of the digest.
    """
    lanes = (width + 7) // 8
    digest = 0
    for lane in range(lanes):
        digest = (digest << 8) | pearson_hash(data, seed=lane)
    return digest & ((1 << width) - 1)


class PearsonHash:
    """Cycle-level model of the streaming hash core (Fig. 5 protocol).

    Wire protocol (one transaction per clock edge, via :meth:`tick`):

    * ``init_hash_ready`` (output) — core is busy absorbing a byte.
    * ``init_hash_enable`` (input) — caller presents ``data_in``.
    * ``data_in`` (input, 8 bits) — next byte.

    The caller asserts *enable* while *ready* is low; the core raises
    *ready* for one cycle while it absorbs, then drops it.
    """

    ABSORB_CYCLES = 1

    def __init__(self):
        self.init_hash_ready = False
        self.init_hash_enable = False
        self.data_in = 0
        self._digest = 0
        self._absorbing = 0
        self._pending_byte = None

    def tick(self):
        """Advance one clock edge."""
        if self._absorbing:
            self._absorbing -= 1
            if self._absorbing == 0:
                self._digest = PEARSON_TABLE[
                    self._digest ^ (self._pending_byte & 0xFF)]
                self.init_hash_ready = False
                self._pending_byte = None
            return
        if self.init_hash_enable:
            if self.init_hash_ready:
                raise ProtocolError(
                    "enable asserted while hash core still busy")
            self._pending_byte = self.data_in
            self.init_hash_ready = True
            self._absorbing = self.ABSORB_CYCLES

    @property
    def digest(self):
        return self._digest

    def reset(self):
        self.__init__()

    # -- netlist ----------------------------------------------------------

    def build_netlist(self, name="pearson"):
        m = Module(name)
        enable = m.input("init_hash_enable", 1)
        data_in = m.input("data_in", 8)
        ready = m.output("init_hash_ready", 1)
        digest_out = m.output("digest", 8)

        table = m.memory("table", 8, 256, init=PEARSON_TABLE)
        digest = m.reg("digest_reg", 8)
        busy = m.reg("busy", 1)

        absorb = enable & ~busy
        next_digest = table.read(digest ^ data_in)
        m.sync(digest, mux(absorb, next_digest, digest))
        m.sync(busy, mux(absorb, const(1, 1), const(0, 1)))
        m.comb(ready, busy)
        m.comb(digest_out, digest)
        m.attributes["is_ip_block"] = True
        return m
