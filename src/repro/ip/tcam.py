"""Ternary CAM: masked matching with priority.

Used by the L3–L4 filter (§4.1): each entry matches ``(key & mask) ==
(value & mask)`` and the lowest-numbered matching entry wins, exactly
like an iptables rule chain evaluated in order.
"""

from repro.errors import WidthError
from repro.rtl import Module, const, mux
from repro.rtl.expr import Const


class TernaryCAM:
    """Behavioural model + netlist of a ternary CAM."""

    def __init__(self, key_width, value_width, depth):
        if depth <= 0:
            raise WidthError("TCAM depth must be positive")
        self.key_width = key_width
        self.value_width = value_width
        self.depth = depth
        # Entries: list of (key, mask, value) or None; index = priority.
        self._entries = [None] * depth
        self.matched = False

    def write(self, slot, key, mask, value):
        """Program rule *slot* (0 = highest priority)."""
        if not 0 <= slot < self.depth:
            raise WidthError("TCAM slot %d out of range" % slot)
        limit = 1 << self.key_width
        if not (0 <= key < limit and 0 <= mask < limit):
            raise WidthError("TCAM key/mask exceeds %d bits" % self.key_width)
        self._entries[slot] = (key & mask, mask, value)

    def invalidate(self, slot):
        if not 0 <= slot < self.depth:
            raise WidthError("TCAM slot %d out of range" % slot)
        self._entries[slot] = None

    def lookup(self, key):
        """Return the value of the highest-priority matching rule."""
        for entry in self._entries:
            if entry is None:
                continue
            stored_key, mask, value = entry
            if (key & mask) == stored_key:
                self.matched = True
                return value
        self.matched = False
        return 0

    def occupancy(self):
        return sum(1 for e in self._entries if e is not None)

    def build_netlist(self, name="tcam"):
        m = Module(name)
        search_key = m.input("search_key", self.key_width)
        match = m.output("match", 1)
        value_out = m.output("value_out", self.value_width)

        hit_any = const(0, 1)
        result = const(0, self.value_width)
        # Lowest slot wins: build the mux chain from the bottom up.
        for slot in reversed(range(self.depth)):
            key_reg = m.reg("key_%d" % slot, self.key_width)
            mask_reg = m.reg("mask_%d" % slot, self.key_width)
            value_reg = m.reg("value_%d" % slot, self.value_width)
            valid_reg = m.reg("valid_%d" % slot, 1)
            for reg in (key_reg, mask_reg, value_reg, valid_reg):
                m.sync(reg, reg)  # programmed via config cells
            hit = (search_key & mask_reg).eq(key_reg) & valid_reg
            hit_any = mux(hit, const(1, 1), hit_any)
            result = mux(hit, value_reg, result)
        m.comb(match, hit_any)
        m.comb(value_out, result)
        # Ternary cells store key + mask + valid per searchable bit.
        m.attributes["cam_cell_bits"] = self.depth * (2 * self.key_width + 1)
        m.attributes["is_ip_block"] = True
        return m
