"""Content-addressable memory.

The learning switch (§4.1) demonstrates both ways Emu can get a CAM:

* :class:`BinaryCAM` — the *native FPGA IP block*: single-cycle lookup,
  dedicated match-line cells.  In Table 3 this block accounts for ~85%
  of the Emu switch's logic resources.
* :class:`RegisterCAM` — the *implemented-in-Emu* variant: a register
  file searched with generated comparators.  It frees the developer from
  IP-block wiring but costs more logic and a longer combinational path,
  the trade-off §4.1 describes.
"""

from repro.errors import ProtocolError, WidthError
from repro.rtl import Module, const, mux
from repro.rtl.resources import CAM_LUTS_PER_CELL_BIT
from repro.rtl.expr import Const


class BinaryCAM:
    """Behavioural model + netlist of a binary CAM IP block.

    Lookup and write each take one cycle.  Writing an existing key
    updates its value; writing a new key claims the next free slot, or
    evicts slot 0 ... n in FIFO order when full (matching the simple
    wrap-around of the paper's switch, Fig. 2 line 17).
    """

    def __init__(self, key_width, value_width, depth):
        if depth <= 0:
            raise WidthError("CAM depth must be positive")
        self.key_width = key_width
        self.value_width = value_width
        self.depth = depth
        self._keys = [None] * depth
        self._values = [0] * depth
        self._free = 0
        # Observable flags, like the paper's HashCAM.matched.
        self.matched = False

    # -- behavioural ------------------------------------------------------

    def lookup(self, key):
        """Return the value for *key*; sets :attr:`matched`."""
        self._check_key(key)
        for slot, stored in enumerate(self._keys):
            if stored == key:
                self.matched = True
                return self._values[slot]
        self.matched = False
        return 0

    def lookup_index(self, key):
        """Return the slot index holding *key*, or ``None``."""
        self._check_key(key)
        for slot, stored in enumerate(self._keys):
            if stored == key:
                return slot
        return None

    def write(self, key, value):
        """Insert or update ``key -> value``; returns the slot used."""
        self._check_key(key)
        if value < 0 or value >= (1 << self.value_width):
            raise WidthError("CAM value 0x%x exceeds %d bits"
                             % (value, self.value_width))
        slot = self.lookup_index(key)
        if slot is None:
            # Prefer an invalid (free) cell; fall back to the wrap-around
            # pointer when the CAM is truly full.
            if None in self._keys:
                slot = self._keys.index(None)
            else:
                slot = self._free
            self._free = 0 if self._free >= self.depth - 1 \
                else self._free + 1
        self._keys[slot] = key
        self._values[slot] = value
        return slot

    def invalidate(self, key):
        """Remove *key* if present; returns True if it was stored."""
        slot = self.lookup_index(key)
        if slot is None:
            return False
        self._keys[slot] = None
        self._values[slot] = 0
        return True

    def occupancy(self):
        return sum(1 for k in self._keys if k is not None)

    def clear(self):
        self._keys = [None] * self.depth
        self._values = [0] * self.depth
        self._free = 0
        self.matched = False

    def _check_key(self, key):
        if key < 0 or key >= (1 << self.key_width):
            raise WidthError("CAM key 0x%x exceeds %d bits"
                             % (key, self.key_width))

    # -- netlist ----------------------------------------------------------

    def build_netlist(self, name="cam"):
        """Functional netlist: match-line cells + value RAM + allocator.

        Lookup is combinational (match + value read in the same cycle the
        pipeline registers the result, i.e. 1-cycle latency).  A write
        updates a matching entry in place, or claims the free-pointer
        slot with wrap-around — the behaviour of :meth:`write`.

        Key/valid storage and comparators are dedicated match-line cells,
        charged through ``cam_cell_bits`` (this is what makes the CAM
        dominate the Emu switch's resources in Table 3); the per-slot
        registers are *not* additionally counted as fabric FFs.
        """
        m = Module(name)
        search_key = m.input("search_key", self.key_width)
        write_en = m.input("write_en", 1)
        write_key = m.input("write_key", self.key_width)
        write_value = m.input("write_value", self.value_width)
        match = m.output("match", 1)
        value_out = m.output("value_out", self.value_width)

        index_bits = max(1, (self.depth - 1).bit_length())
        value_mem = m.memory("values", self.value_width, self.depth)
        free_ptr = m.reg("free_ptr", index_bits)

        hit_any = None
        whit_any = None
        match_index = const(0, index_bits)
        write_index = const(0, index_bits)
        cells = []
        for slot in range(self.depth):
            key_reg = m.reg("key_%d" % slot, self.key_width)
            valid_reg = m.reg("valid_%d" % slot, 1)
            cells.append((key_reg, valid_reg))
            hit = key_reg.eq(search_key) & valid_reg
            whit = key_reg.eq(write_key) & valid_reg
            hit_any = hit if hit_any is None else (hit_any | hit)
            whit_any = whit if whit_any is None else (whit_any | whit)
            match_index = mux(hit, const(slot, index_bits), match_index)
            write_index = mux(whit, const(slot, index_bits), write_index)
        alloc = write_en & ~whit_any
        for slot, (key_reg, valid_reg) in enumerate(cells):
            claim = alloc & free_ptr.eq(const(slot, index_bits))
            m.sync(key_reg, mux(claim, write_key, key_reg))
            m.sync(valid_reg, mux(claim, const(1, 1), valid_reg))
        wrapped = free_ptr.eq(const(self.depth - 1, index_bits))
        m.sync(free_ptr, mux(
            alloc, mux(wrapped, const(0, index_bits),
                       free_ptr + const(1, index_bits)), free_ptr))
        final_windex = mux(whit_any, write_index, free_ptr)
        m.write_port(value_mem, final_windex, write_value, write_en)
        m.comb(match, hit_any if hit_any is not None else const(0, 1))
        m.comb(value_out, value_mem.read(match_index))
        # Dedicated-cell pricing: a CAM's match lines are hard cells, not
        # LUT comparators, so the block advertises its cost and the
        # estimator uses it instead of synthesising the behavioural
        # netlist to fabric.  It is still the dominant component of the
        # Emu switch (the paper attributes ~85% of resources to it).
        cell_bits = self.depth * (self.key_width + 1)
        value_bits = self.depth * self.value_width
        m.attributes["is_ip_block"] = True
        m.attributes["ip_logic_luts"] = \
            cell_bits * CAM_LUTS_PER_CELL_BIT + value_bits / 32.0
        m.attributes["ip_ffs"] = 0
        m.attributes["ip_mem_units"] = -(-value_bits // 512)  # ceil
        return m


class RegisterCAM(BinaryCAM):
    """A CAM expressed in the source language instead of as an IP block.

    Functionally identical to :class:`BinaryCAM`; the netlist differs:
    every key bit is a general-purpose flip-flop plus LUT comparator and
    the lookup result is a full mux tree, so logic cost and critical path
    are larger — the §4.1 trade-off, quantified by the
    ``bench_ablation_cam`` benchmark.
    """

    def build_netlist(self, name="register_cam"):
        m = Module(name)
        search_key = m.input("search_key", self.key_width)
        write_en = m.input("write_en", 1)
        write_key = m.input("write_key", self.key_width)
        write_value = m.input("write_value", self.value_width)
        write_slot = m.input(
            "write_slot", max(1, (self.depth - 1).bit_length()))
        match = m.output("match", 1)
        value_out = m.output("value_out", self.value_width)

        hit_any = None
        result = const(0, self.value_width)
        for slot in range(self.depth):
            key_reg = m.reg("key_%d" % slot, self.key_width)
            value_reg = m.reg("value_%d" % slot, self.value_width)
            valid_reg = m.reg("valid_%d" % slot, 1)
            slot_sel = write_en & write_slot.eq(
                Const(slot, write_slot.width))
            m.sync(key_reg, mux(slot_sel, write_key, key_reg))
            m.sync(value_reg, mux(slot_sel, write_value, value_reg))
            m.sync(valid_reg, mux(slot_sel, const(1, 1), valid_reg))
            hit = key_reg.eq(search_key) & valid_reg
            hit_any = hit if hit_any is None else (hit_any | hit)
            result = mux(hit, value_reg, result)
        m.comb(match, hit_any if hit_any is not None else const(0, 1))
        m.comb(value_out, result)
        return m


class CamHandshake:
    """Cycle-level request/grant wrapper used by compiled designs.

    Models the IP-block wire protocol: assert ``req`` with a key, the
    block answers with ``done`` the next cycle.  Misuse (reading a result
    before ``done``) raises :class:`ProtocolError`, the kind of bug the
    paper's direction packets were used to find.
    """

    def __init__(self, cam):
        self.cam = cam
        self._pending = None
        self._done = False
        self.result = 0
        self.matched = False

    def request(self, key):
        self._pending = key
        self._done = False

    def tick(self):
        """Advance one clock cycle."""
        if self._pending is not None:
            self.result = self.cam.lookup(self._pending)
            self.matched = self.cam.matched
            self._pending = None
            self._done = True

    @property
    def done(self):
        return self._done

    def read_result(self):
        if not self._done:
            raise ProtocolError("CAM result read before done was asserted")
        return self.result
