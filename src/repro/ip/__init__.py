"""IP blocks (paper §3.2 (i), §3.4).

Emu reaches "specialized modules that take advantage of hardware
features" through explicit wire protocols (Fig. 5).  Each block here has
two faces:

* a **behavioural model** — plain Python methods used when the service
  runs under software semantics (CPU target) and when the hardware target
  steps services cycle-by-cycle;
* a **netlist builder** (``build_netlist()``) — an :class:`repro.rtl.Module`
  used for resource estimation, Verilog emission and RTL simulation.

Blocks provided:

* :class:`~repro.ip.cam.BinaryCAM` — content-addressable memory (the
  block that dominates the Emu switch's resources: ~85% in Table 3).
* :class:`~repro.ip.cam.RegisterCAM` — the "CAM implemented in Emu"
  alternative from §4.1 (pure language, worse resources/timing).
* :class:`~repro.ip.tcam.TernaryCAM` — masked matching for L3/L4 filters.
* :class:`~repro.ip.fifo.SyncFIFO` — clocked FIFO used by output queues.
* :class:`~repro.ip.bram.BlockRAM` — 1-cycle-latency RAM (value store).
* :class:`~repro.ip.pearson.PearsonHash` — streaming hash with the
  seed handshake of Fig. 5.
* :class:`~repro.ip.naughtyq.NaughtyQ` — recency queue used by the LRU
  cache of Fig. 9.
"""

from repro.ip.cam import BinaryCAM, RegisterCAM
from repro.ip.tcam import TernaryCAM
from repro.ip.fifo import SyncFIFO
from repro.ip.bram import BlockRAM
from repro.ip.pearson import PearsonHash
from repro.ip.naughtyq import NaughtyQ

__all__ = [
    "BinaryCAM", "RegisterCAM", "TernaryCAM", "SyncFIFO", "BlockRAM",
    "PearsonHash", "NaughtyQ",
]
