"""``registry()``: one :class:`~repro.deploy.spec.ServiceSpec` per
deployable service.

This is the single place that knows how to build each paper service
with evaluation-grade defaults (the Table 4 addresses), which workload
drives it, which host-stack baseline it compares against, and which
deploy backends can faithfully run it.  The harness tables, the
examples, the conformance suite, and the ``python -m repro.deploy``
CLI all consume these entries instead of hand-wiring factories.

Addresses match the §5 evaluation setup: the service at ``10.0.0.1``,
the client at ``10.0.0.2``, the NAT gateway public side at
``198.51.100.1``.
"""

from repro.core.protocols.icmp import build_icmp_echo_request
from repro.core.protocols.memcached import memcached_is_write
from repro.core.protocols.tcp import TCPFlags, build_tcp
from repro.core.protocols.udp import build_udp
from repro.deploy.spec import ProtocolClient, ServiceSpec
from repro.hoststack import (
    host_dns, host_icmp_echo, host_memcached, host_nat, host_tcp_ping,
)
from repro.net.packet import Frame, ip_to_int
from repro.net.workloads import (
    dns_query_stream, memaslap_mix, ping_flood, tcp_syn_stream,
)
from repro.serve.spec import (
    ServeSpec, dns_bindings, icmp_bindings, memcached_bindings,
)
from repro.services.dns_server import DnsServerService
from repro.services.filter_l3l4 import FilteringSwitch, FilterRule
from repro.services.icmp_echo import IcmpEchoService
from repro.services.memcached import MemcachedService
from repro.services.nat import NatService
from repro.services.switch import LearningSwitch
from repro.services.tcp_ping import TcpPingService

import random

SERVICE_IP = ip_to_int("10.0.0.1")
CLIENT_IP = ip_to_int("10.0.0.2")
PUBLIC_IP = ip_to_int("198.51.100.1")
REMOTE_IP = ip_to_int("203.0.113.9")

DNS_NAMES = ["host%02d.example" % i for i in range(16)]

LAN_MAC = 0x02_00_00_00_00_AA
GATEWAY_MAC = 0x02_00_00_00_00_05
MAC_A = 0x02_00_00_00_00_AA
MAC_B = 0x02_00_00_00_00_BB

#: Request/reply services route cleanly through every backend;
#: port-semantics services (flooding switches, the two-sided NAT
#: gateway) need a real port space, which the 1-port-per-core
#: scale-out targets don't have.
_KEYED_BACKENDS = ("cpu", "fpga", "multicore", "cluster", "netsim")
_PORT_BACKENDS = ("cpu", "fpga", "netsim")


# -- factories ---------------------------------------------------------------

def make_icmp():
    return IcmpEchoService(my_ip=SERVICE_IP)


def make_tcp_ping():
    return TcpPingService(my_ip=SERVICE_IP, open_ports=(7,))


def make_dns():
    return DnsServerService(
        my_ip=SERVICE_IP,
        table={name: ip_to_int("192.0.2.%d" % (index + 1))
               for index, name in enumerate(DNS_NAMES)})


def make_memcached():
    return MemcachedService(my_ip=SERVICE_IP)


def make_nat():
    return NatService(public_ip=PUBLIC_IP)


def make_switch():
    return LearningSwitch()


def make_filter():
    """The L3/L4-filtered switch with the README's demo chain: no
    telnet, no UDP "game" ports, default accept."""
    switch = FilteringSwitch()
    switch.filter.append(FilterRule(protocol=6, dport_lo=23,
                                    dport_hi=23, verdict="DROP"))
    switch.filter.append(FilterRule(protocol=17, dport_lo=1000,
                                    dport_hi=2000, verdict="DROP"))
    return switch


# -- workloads ---------------------------------------------------------------

def icmp_workload(count, seed=3, **_):
    return ping_flood(SERVICE_IP, CLIENT_IP, count=count)


def tcp_ping_workload(count, seed=3, **_):
    return tcp_syn_stream(SERVICE_IP, CLIENT_IP, dst_port=7,
                          count=count, seed=seed)


def dns_workload(count, seed=3, **_):
    return dns_query_stream(SERVICE_IP, CLIENT_IP, DNS_NAMES,
                            count=count, seed=seed)


def memcached_workload(count, seed=3, protocol="ascii", **_):
    return memaslap_mix(SERVICE_IP, CLIENT_IP, count=count, seed=seed,
                        protocol=protocol)


def nat_workload(count, seed=3, **_):
    """UDP flows from the LAN side through the gateway (§5.4 setup)."""
    rng = random.Random(seed)
    for index in range(count):
        yield _nat_frame(rng.randint(2000, 60000), index)


def nat_trace(count, seed=3, **_):
    """Shard-safe NAT trace: one flow, so the 5-tuple routes every
    frame (and its sequential port allocation) to one shard."""
    for index in range(count):
        yield _nat_frame(3333, index)


def _nat_frame(sport, index):
    frame = Frame(build_udp(
        GATEWAY_MAC, LAN_MAC, CLIENT_IP, REMOTE_IP, sport, 53,
        b"payload-%04d" % (index % 10000)), src_port=0)
    return frame.pad()


def switch_workload(count, seed=3, **_):
    """Two hosts ping-ponging across ports 2 and 0: the first frame
    floods, then both directions forward on learned entries."""
    for index in range(count):
        if index % 2 == 0:
            yield _switch_frame(MAC_B, MAC_A, src_port=2)
        else:
            yield _switch_frame(MAC_A, MAC_B, src_port=0)


def _switch_frame(dst_mac, src_mac, src_port):
    return Frame(build_icmp_echo_request(dst_mac, src_mac, CLIENT_IP,
                                         SERVICE_IP),
                 src_port=src_port).pad()


def filter_workload(count, seed=3, **_):
    """SYNs alternating between an accepted port (ssh) and the dropped
    telnet rule, so both verdict paths are exercised."""
    for index in range(count):
        dport = 22 if index % 2 == 0 else 23
        yield Frame(build_tcp(MAC_B, MAC_A, CLIENT_IP, SERVICE_IP,
                              1234, dport, TCPFlags.SYN,
                              seq=index & 0xFFFFFFFF),
                    src_port=0).pad()


# -- socket serving (see repro.serve) ----------------------------------------
#
# Request/reply services with a client-visible L7 protocol get a
# ServeSpec; everything below it is a *network function* whose
# semantics live in ports/MACs/raw headers that loopback sockets
# cannot carry, so they declare serve=None (explicitly unservable)
# rather than leaving the capability undeclared.

def _serve_icmp():
    return ServeSpec(icmp_bindings(CLIENT_IP, SERVICE_IP))


def _serve_dns():
    table = {name: ip_to_int("192.0.2.%d" % (index + 1))
             for index, name in enumerate(DNS_NAMES)}
    return ServeSpec(dns_bindings(CLIENT_IP, SERVICE_IP, table),
                     port=5353)


def _serve_memcached():
    return ServeSpec(memcached_bindings(CLIENT_IP, SERVICE_IP),
                     port=11211)


# -- protocol clients --------------------------------------------------------

def _client_from_workload(name, workload, **options):
    def request(seed=1, **overrides):
        merged = dict(options)
        merged.update(overrides)
        return next(iter(workload(1, seed, **merged)))
    return ProtocolClient(name, request)


# -- the registry ------------------------------------------------------------

def registry():
    """name -> :class:`ServiceSpec` for every deployable service.

    Returns a fresh dict each call (mutate freely); the specs
    themselves are immutable-by-convention shared descriptions.
    """
    return {spec.name: spec for spec in _build_specs()}


def _build_specs():
    return [
        ServiceSpec(
            "icmp", make_icmp,
            client=_client_from_workload("icmp", icmp_workload),
            workload=icmp_workload,
            host_wrapper=host_icmp_echo,
            backends=_KEYED_BACKENDS,
            serve=_serve_icmp(),
            description="ICMP echo server (§4.2)"),
        ServiceSpec(
            "tcp_ping", make_tcp_ping,
            client=_client_from_workload("tcp_ping", tcp_ping_workload),
            workload=tcp_ping_workload,
            host_wrapper=host_tcp_ping,
            backends=_KEYED_BACKENDS,
            serve=None,  # replies are raw SYN-ACKs, not an L7 payload
            description="TCP reachability responder (§4.2)"),
        ServiceSpec(
            "dns", make_dns,
            client=_client_from_workload("dns", dns_workload),
            workload=dns_workload,
            host_wrapper=host_dns,
            backends=_KEYED_BACKENDS,
            serve=_serve_dns(),
            description="non-recursive DNS server (§4.3)"),
        ServiceSpec(
            "memcached", make_memcached,
            client=_client_from_workload("memcached",
                                         memcached_workload),
            workload=memcached_workload,
            is_write=memcached_is_write,
            host_wrapper=host_memcached,
            has_kernel=True,
            backends=_KEYED_BACKENDS,
            serve=_serve_memcached(),
            description="Memcached server (§4.3, §5.4)"),
        ServiceSpec(
            "nat", make_nat,
            client=_client_from_workload("nat", nat_trace),
            workload=nat_workload,
            trace=nat_trace,
            host_wrapper=host_nat,
            has_kernel=True,
            backends=_PORT_BACKENDS,
            serve=None,  # two-sided gateway: needs real port spaces
            description="UDP/TCP NAT gateway (§4.4)"),
        ServiceSpec(
            "switch", make_switch,
            client=_client_from_workload("switch", switch_workload),
            workload=switch_workload,
            backends=_PORT_BACKENDS,
            serve=None,  # floods across ports; no socket equivalent
            description="L2 learning switch (§4.1, Fig. 2)"),
        ServiceSpec(
            "filter", make_filter,
            client=_client_from_workload("filter", filter_workload),
            workload=filter_workload,
            has_kernel=True,
            backends=_PORT_BACKENDS,
            serve=None,  # port-semantics filter; netsim only
            description="L3/L4 filter + learning switch (§4.1)"),
    ]
