"""Service base class: one codebase, heterogeneous targets (§3.3).

A service implements ``on_frame(dataplane)`` as a generator that yields
``pause()`` wherever the C# original called ``Kiwi.Pause()``.  The three
targets drive it differently:

* CPU target / network simulator — :meth:`process` drains the generator
  (software semantics);
* FPGA target — the pipeline steps the generator one segment per clock
  (hardware semantics), which *measures* the service's cycle count.
"""

from repro.core.dataplane import NetFPGAData
from repro.kiwi.runtime import run_software


class EmuService:
    """Base class for Emu network services."""

    #: Human-readable service name (used in reports).
    name = "service"

    def on_frame(self, dataplane):
        """Per-frame handler; generator yielding ``pause()`` markers.

        Subclasses decide the fate of the frame by setting
        ``dataplane.dst_ports`` (directly or through the
        :mod:`repro.core.netfpga` helpers); leaving it zero drops the
        frame, exactly like Fig. 2's comment says.
        """
        raise NotImplementedError

    def tick(self):
        """Advance per-clock IP-block models (overridden if any)."""

    # -- software semantics -------------------------------------------------

    def process(self, frame_or_dataplane):
        """Run the handler to completion (software semantics).

        Accepts a :class:`~repro.net.packet.Frame` or a prepared
        :class:`~repro.core.dataplane.NetFPGAData`; returns the dataplane
        so callers can inspect ``dst_ports`` and the mutated frame.
        """
        if isinstance(frame_or_dataplane, NetFPGAData):
            dataplane = frame_or_dataplane
        else:
            dataplane = NetFPGAData(frame_or_dataplane)
        run_software(self.on_frame(dataplane))
        return dataplane

    def process_counting(self, frame_or_dataplane):
        """Hardware semantics: returns ``(dataplane, cycles)``.

        Steps the handler one pause-segment per cycle, ticking IP-block
        models on the shared clock; the cycle count is the service's
        contribution to module latency.
        """
        if isinstance(frame_or_dataplane, NetFPGAData):
            dataplane = frame_or_dataplane
        else:
            dataplane = NetFPGAData(frame_or_dataplane)
        gen = self.on_frame(dataplane)
        cycles = 1
        try:
            while True:
                next(gen)
                cycles += 1
                self.tick()
        except StopIteration:
            pass
        return dataplane, cycles

    def reset(self):
        """Clear learned/cached state (overridden where meaningful)."""
