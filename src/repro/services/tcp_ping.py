"""TCP ping responder (§4.2).

Performs the first two steps of the three-way handshake: a SYN to a
configured (address, port set) is answered with SYN-ACK; a closed port
gets RST, so reachability probing works even where ICMP is filtered —
the Pingmesh-style failure case the paper cites.  The client never
completes the handshake (it sends RST after measuring), so no state is
kept — which is what makes this implementable at line rate.
"""

from repro.core import netfpga as NetFPGA
from repro.core.protocols.ethernet import EthernetWrapper
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper
from repro.core.protocols.tcp import TCPFlags, TCPWrapper
from repro.kiwi.runtime import pause
from repro.services.base import EmuService

DEFAULT_ISS = 0x1000_0000    # deterministic initial sequence number


class TcpPingService(EmuService):
    """SYN → SYN-ACK responder for reachability probing."""

    name = "tcp_ping"

    def __init__(self, my_ip, my_mac=0x02_00_00_00_00_02,
                 open_ports=(7, 80), iss=DEFAULT_ISS):
        self.my_ip = my_ip
        self.my_mac = my_mac
        self.open_ports = set(open_ports)
        self.iss = iss
        self.syns_seen = 0
        self.synacks_sent = 0
        self.rsts_sent = 0

    def on_frame(self, dataplane):
        if not dataplane.tdata.is_ipv4():
            return
        ip = IPv4Wrapper(dataplane.tdata)
        if ip.protocol != IPProtocols.TCP or \
                ip.destination_ip_address != self.my_ip:
            return
        yield pause()

        tcp = TCPWrapper(dataplane.tdata)
        if not tcp.is_syn:
            return
        self.syns_seen += 1
        port_open = tcp.destination_port in self.open_ports
        yield pause()

        eth = EthernetWrapper(dataplane.tdata)
        eth.swap_macs()
        ip.swap_ips()
        ip.ttl = 64
        tcp.swap_ports()
        yield pause()

        client_seq = tcp.sequence_number
        if port_open:
            tcp.flags = TCPFlags.SYN | TCPFlags.ACK
            tcp.ack_number = (client_seq + 1) & 0xFFFFFFFF
            tcp.sequence_number = self.iss
            self.synacks_sent += 1
        else:
            tcp.flags = TCPFlags.RST | TCPFlags.ACK
            tcp.ack_number = (client_seq + 1) & 0xFFFFFFFF
            tcp.sequence_number = 0
            self.rsts_sent += 1
        yield pause()

        ip.update_checksum()
        tcp.update_checksum(ip)
        NetFPGA.send_back(dataplane)

    def datapath_extra_cycles(self, frame):
        """TCP checksum walks (pseudo-header + segment, verify and
        regenerate at 2 B/cycle) plus IP header checksum and the
        sequence/ack arithmetic unit."""
        segment_bytes = max(0, len(frame.data) - 34) + 12
        return 24 + segment_bytes
