"""ICMP echo server (§4.2): the paper's simplest quantitative baseline.

Replies to echo requests addressed to the service, dropping everything
else.  The frame is transformed in place: MACs and IPs swapped, type
flipped to echo-reply, checksum updated incrementally.
"""

from repro.core import netfpga as NetFPGA
from repro.core.protocols.ethernet import EthernetWrapper, EtherTypes
from repro.core.protocols.icmp import ICMPTypes, ICMPWrapper
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper
from repro.kiwi.runtime import pause
from repro.services.base import EmuService


class IcmpEchoService(EmuService):
    """Responds to ICMP echo requests for one configured address."""

    name = "icmp_echo"

    def __init__(self, my_ip, my_mac=0x02_00_00_00_00_01,
                 answer_any_ip=False):
        self.my_ip = my_ip
        self.my_mac = my_mac
        self.answer_any_ip = answer_any_ip
        self.requests_seen = 0
        self.replies_sent = 0

    def on_frame(self, dataplane):
        if not dataplane.tdata.is_ipv4():
            return                          # implicit drop
        ip = IPv4Wrapper(dataplane.tdata)
        if ip.protocol != IPProtocols.ICMP:
            return
        if not self.answer_any_ip and \
                ip.destination_ip_address != self.my_ip:
            return
        yield pause()

        icmp = ICMPWrapper(dataplane.tdata)
        if not icmp.is_echo_request or not icmp.checksum_ok():
            return
        self.requests_seen += 1
        yield pause()

        eth = EthernetWrapper(dataplane.tdata)
        eth.swap_macs()
        ip.swap_ips()
        ip.ttl = 64
        icmp.icmp_type = ICMPTypes.ECHO_REPLY
        yield pause()

        ip.update_checksum()
        icmp.update_checksum()
        self.replies_sent += 1
        NetFPGA.send_back(dataplane)

    def datapath_extra_cycles(self, frame):
        """Byte-serial hardware work beyond the handler's pauses: the
        ICMP checksum unit walks the message at 2 B/cycle twice (verify
        + regenerate) and the IP header checksum unit adds ~10 cycles.
        """
        icmp_bytes = max(0, len(frame.data) - 34)
        return 10 + icmp_bytes


def icmp_echo_kernel(frame: "mem[128]x8", my_ip: "u32") -> "u4":
    """Flat Emu-Python ICMP echo for the Kiwi compiler.

    Checks EtherType/protocol/type/destination, swaps addresses in the
    frame memory, flips the type and patches the checksum incrementally
    (reply checksum = request checksum + 0x0800, one's-complement).
    Returns the output-port bitmap (0 = drop, 1 = send back on port 0).
    """
    ethertype = (frame[12] << 8) | frame[13]
    if ethertype != 0x0800:
        return 0
    proto = frame[23]
    if proto != 1:
        return 0
    pause()

    dst_ip = 0
    for i in range(4):
        dst_ip = (dst_ip << 8) | frame[30 + i]
    if bits(dst_ip, 32) != my_ip:
        return 0
    icmp_type = frame[34]
    if icmp_type != 8:
        return 0
    pause()

    # Swap MACs.
    for i in range(6):
        tmp = frame[i]
        frame[i] = frame[6 + i]
        frame[6 + i] = tmp
    pause()

    # Swap IPs.
    for i in range(4):
        tmp2 = frame[26 + i]
        frame[26 + i] = frame[30 + i]
        frame[30 + i] = tmp2
    pause()

    # Echo request (8) -> reply (0); incremental checksum update
    # (RFC 1624): adding 0x0800 to the checksum compensates clearing
    # the type byte.
    frame[34] = 0
    csum = (frame[36] << 8) | frame[37]
    csum = csum + 0x0800
    if csum > 65535:
        csum = (csum & 65535) + 1
    frame[36] = bits(csum >> 8, 8)
    frame[37] = bits(csum, 8)
    return 1
