"""Memcached server (§4.3).

The paper's design evolved in stages, all reproduced here:

* the initial prototype: binary protocol over UDP, 6-byte keys, 8-byte
  values (``MemcachedService(profile="paper-initial")``);
* later extensions: the ASCII protocol, larger keys/values, and more
  storage (``profile="extended"``) — each with its own latency/
  throughput/functionality trade-off (§5.4 "Optimizations" discusses
  on-chip vs DRAM storage; see ``storage="dram"``).

Eviction is LRU via the Fig. 9 construction (HashCAM + NaughtyQ) when
the store fills.
"""

from repro.core import netfpga as NetFPGA
from repro.core.protocols.ethernet import EthernetWrapper
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper
from repro.core.protocols.memcached import (
    BinaryMagic, BinaryOpcodes, BinaryStatus, MemcachedBinaryWrapper,
    build_binary_response, build_udp_frame_header, parse_ascii_command,
    split_udp_frame,
)
from repro.core.protocols.udp import UDPWrapper
from repro.errors import HostModelError, ParseError
from repro.ip.bram import DramModel
from repro.kiwi.runtime import pause
from repro.services.base import EmuService

MEMCACHED_PORT = 11211

PROFILES = {
    # The paper's first prototype: GET/SET/DELETE, binary over UDP,
    # 6-byte keys, 8-byte values.
    "paper-initial": {"max_key": 6, "max_value": 8, "capacity": 4096,
                      "ascii": False, "binary": True},
    # The extended design evaluated in Table 4 (UDP + ASCII protocol).
    "extended": {"max_key": 250, "max_value": 1024, "capacity": 65536,
                 "ascii": True, "binary": True},
}


class MemcachedService(EmuService):
    """GET/SET/DELETE key-value cache over UDP."""

    name = "memcached"

    def __init__(self, my_ip, my_mac=0x02_00_00_00_00_04,
                 profile="extended", storage="onchip"):
        if profile not in PROFILES:
            raise HostModelError("unknown profile %r" % profile)
        config = PROFILES[profile]
        self.my_ip = my_ip
        self.my_mac = my_mac
        self.profile = profile
        self.max_key = config["max_key"]
        self.max_value = config["max_value"]
        self.capacity = config["capacity"]
        self.ascii_enabled = config["ascii"]
        self.binary_enabled = config["binary"]
        self.storage = storage
        self._store = {}
        self._recency = []
        self._dram = DramModel(width=8, depth=1 << 24) \
            if storage == "dram" else None
        self.gets = 0
        self.sets = 0
        self.deletes = 0
        self.hits = 0
        self.misses = 0
        self.extra_cycles = 0        # DRAM access cycles, if any

    # -- store ---------------------------------------------------------------

    def _touch(self, key):
        if key in self._recency:
            self._recency.remove(key)
        self._recency.append(key)

    def store_set(self, key, value, flags=0):
        if len(key) > self.max_key:
            return BinaryStatus.INVALID_ARGUMENTS
        if len(value) > self.max_value:
            return BinaryStatus.VALUE_TOO_LARGE
        if key not in self._store and len(self._store) >= self.capacity:
            victim = self._recency.pop(0)       # LRU eviction
            del self._store[victim]
        self._store[key] = (bytes(value), flags)
        self._touch(key)
        if self._dram is not None:
            self._dram.write(hash(key) & (self._dram.depth - 1), 0)
            self.extra_cycles += self._dram.last_access_latency()
        return BinaryStatus.NO_ERROR

    def store_get(self, key):
        entry = self._store.get(key)
        if self._dram is not None:
            self._dram.read(hash(key) & (self._dram.depth - 1))
            self.extra_cycles += self._dram.last_access_latency()
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(key)
        return entry

    def store_delete(self, key):
        if key in self._store:
            del self._store[key]
            self._recency.remove(key)
            return True
        return False

    # -- dataplane -----------------------------------------------------------

    def on_frame(self, dataplane):
        if not dataplane.tdata.is_ipv4():
            return
        ip = IPv4Wrapper(dataplane.tdata)
        if ip.protocol != IPProtocols.UDP or \
                ip.destination_ip_address != self.my_ip:
            return
        udp = UDPWrapper(dataplane.tdata)
        if udp.destination_port != MEMCACHED_PORT:
            return
        yield pause()

        try:
            request_id, body = split_udp_frame(udp.payload())
        except ParseError:
            return
        yield pause()

        if self.binary_enabled and body[:1] and \
                body[0] == BinaryMagic.REQUEST:
            response = yield from self._handle_binary(body)
        elif self.ascii_enabled:
            response = yield from self._handle_ascii(body)
        else:
            return
        if response is None:
            return
        yield pause()

        eth = EthernetWrapper(dataplane.tdata)
        eth.swap_macs()
        ip.swap_ips()
        ip.ttl = 64
        udp.swap_ports()
        udp.set_payload(build_udp_frame_header(request_id) + response)
        ip.total_length = ip.header_bytes + udp.length
        ip.update_checksum()
        udp.update_checksum(ip)
        NetFPGA.send_back(dataplane)

    def _handle_binary(self, body):
        try:
            message = MemcachedBinaryWrapper(body)
        except ParseError:
            return None
        opcode = message.opcode
        key = message.key()
        yield pause()

        if opcode == BinaryOpcodes.GET:
            self.gets += 1
            entry = self.store_get(key)
            yield pause()
            if entry is None:
                return build_binary_response(
                    opcode, status=BinaryStatus.KEY_NOT_FOUND,
                    opaque=message.opaque)
            value, flags = entry
            return build_binary_response(
                opcode, value=value, opaque=message.opaque,
                extras=int(flags).to_bytes(4, "big"))
        if opcode == BinaryOpcodes.SET:
            self.sets += 1
            extras = message.extras()
            flags = int.from_bytes(extras[:4], "big") if len(extras) >= 4 \
                else 0
            status = self.store_set(key, message.value(), flags)
            yield pause()
            return build_binary_response(opcode, status=status,
                                         opaque=message.opaque)
        if opcode == BinaryOpcodes.DELETE:
            self.deletes += 1
            found = self.store_delete(key)
            yield pause()
            status = BinaryStatus.NO_ERROR if found else \
                BinaryStatus.KEY_NOT_FOUND
            return build_binary_response(opcode, status=status,
                                         opaque=message.opaque)
        return build_binary_response(
            opcode, status=BinaryStatus.UNKNOWN_COMMAND,
            opaque=message.opaque)

    def _handle_ascii(self, body):
        try:
            command = parse_ascii_command(body)
        except ParseError:
            return b"ERROR\r\n"
        yield pause()

        if command.verb == "get":
            self.gets += 1
            entry = self.store_get(command.key)
            yield pause()
            if entry is None:
                return b"END\r\n"
            value, flags = entry
            return (b"VALUE %s %d %d\r\n" % (command.key, flags,
                                             len(value)) +
                    value + b"\r\nEND\r\n")
        if command.verb == "set":
            self.sets += 1
            status = self.store_set(command.key, command.value,
                                    command.flags)
            yield pause()
            if command.noreply:
                return None
            return b"STORED\r\n" if status == BinaryStatus.NO_ERROR \
                else b"NOT_STORED\r\n"
        if command.verb == "delete":
            self.deletes += 1
            found = self.store_delete(command.key)
            yield pause()
            if command.noreply:
                return None
            return b"DELETED\r\n" if found else b"NOT_FOUND\r\n"
        return b"ERROR\r\n"

    def kernel_cycle_model(self, opt_level, batch=None,
                           level_budget=None):
        """Core-cycle model from the compiled paper-initial kernel.

        Used by :class:`~repro.targets.fpga.FpgaTarget` when an
        explicit ``opt_level`` is requested: per-request cycles are then
        measured on the Kiwi-compiled binary-protocol datapath (the
        paper's first prototype) instead of counted from the
        behavioural handler's pauses.  *batch* selects the lockstep SoA
        engine for the measurement (same cycles, less wall clock).
        """
        from repro.targets.kernel_model import KernelCycleModel
        return KernelCycleModel(memcached_kernel, opt_level,
                                scalars={"my_ip": self.my_ip},
                                batch=batch, level_budget=level_budget)

    def datapath_extra_cycles(self, frame):
        """Byte-serial request parse and response construction, UDP/IP
        checksum passes, plus any DRAM wait cycles accrued this request
        (on-chip storage adds none — §5.4 "Optimizations")."""
        payload_bytes = max(0, len(frame.data) - 42)
        dram_wait, self.extra_cycles = self.extra_cycles, 0
        return 30 + payload_bytes + dram_wait

    def reset(self):
        self._store.clear()
        self._recency = []
        self.gets = self.sets = self.deletes = 0
        self.hits = self.misses = 0


def memcached_kernel(frame: "mem[512]x8", my_ip: "u32",
                     ktags: "mem[256]x48", values: "mem[256]x64",
                     kvalid: "mem[256]x1") -> "u4":
    """Flat Emu-Python Memcached (binary GET/SET, 6-byte key, 8-byte
    value) for the Kiwi compiler — the paper's initial prototype, used
    for the Table 5 utilisation baseline.
    """
    ethertype = (frame[12] << 8) | frame[13]
    if ethertype != 0x0800:
        return 0
    if frame[23] != 17:
        return 0
    dport = (frame[36] << 8) | frame[37]
    if dport != 11211:
        return 0
    pause()

    # Binary header starts after 8-byte UDP frame header: offset 50.
    magic = frame[50]
    if magic != 0x80:
        return 0
    opcode = frame[51]
    keylen = (frame[52] << 8) | frame[53]
    extras = frame[54]
    if keylen != 6:
        return 0
    pause()

    # Key: 6 bytes after the 24-byte header + extras.
    key = 0
    kb = 74 + extras
    for i in range(6):
        key = (key << 8) | frame[kb + i]
    h = bits(key ^ (key >> 24) ^ (key >> 41), 8)
    pause()

    status = 0
    hit = 0
    value = 0
    if opcode == 0:
        # GET: probe, tag-compare.
        if kvalid[h] == 1 and ktags[h] == bits(key, 48):
            hit = 1
            value = values[h]
        else:
            status = 1
    else:
        if opcode == 1:
            # SET: 8-byte value follows the key.
            v = 0
            for i in range(8):
                v = (v << 8) | frame[kb + 6 + i]
            ktags[h] = bits(key, 48)
            values[h] = v
            kvalid[h] = 1
        else:
            if opcode == 4:
                # DELETE.
                if kvalid[h] == 1 and ktags[h] == bits(key, 48):
                    kvalid[h] = 0
                else:
                    status = 1
            else:
                status = 0x81
    pause()

    # Response header in place: magic, status, body length.
    frame[50] = 0x81
    frame[56] = bits(status >> 8, 8)
    frame[57] = bits(status, 8)
    frame[58] = 0
    frame[59] = 0
    frame[60] = 0
    frame[61] = bits(hit * 8, 8)
    pause()

    if hit == 1:
        for i in range(8):
            frame[74 + i] = bits(value >> bits(8 * (7 - i), 6), 8)
    pause()

    # Swap MACs, IPs, UDP ports.
    for k in range(6):
        t1 = frame[k]
        frame[k] = frame[6 + k]
        frame[6 + k] = t1
    for k in range(4):
        t2 = frame[26 + k]
        frame[26 + k] = frame[30 + k]
        frame[30 + k] = t2
    for k in range(2):
        t3 = frame[34 + k]
        frame[34 + k] = frame[36 + k]
        frame[36 + k] = t3
    return 1
