"""The networking services of paper §4, written against the Emu API.

Every service is a pause-annotated handler (single codebase) that runs
under software semantics (CPU target), inside the network simulator, or
stepped cycle-by-cycle inside the FPGA pipeline model.  Services that
the paper synthesised also ship a flat *kernel* in the compilable
Emu-Python subset (``<service>_kernel``) used for resource and latency
reports.

* :mod:`repro.services.switch`      — L2 learning switch (§4.1, Fig. 2)
* :mod:`repro.services.filter_l3l4` — L3–L4 filter slotted into the
  switch, plus the iptables-style rule front-end (§4.1)
* :mod:`repro.services.icmp_echo`   — ICMP echo server (§4.2)
* :mod:`repro.services.tcp_ping`    — TCP reachability responder (§4.2)
* :mod:`repro.services.dns_server`  — non-recursive DNS server (§4.3)
* :mod:`repro.services.memcached`   — Memcached server (§4.3)
* :mod:`repro.services.nat`         — UDP/TCP NAT gateway (§4.4)
* :mod:`repro.services.kvcache`     — in-dataplane LRU cache (§4.4)
"""

from repro.services.base import EmuService
from repro.services.switch import LearningSwitch
from repro.services.filter_l3l4 import FilterRule, L3L4Filter, \
    FilteringSwitch
from repro.services.icmp_echo import IcmpEchoService
from repro.services.tcp_ping import TcpPingService
from repro.services.dns_server import DnsServerService
from repro.services.memcached import MemcachedService
from repro.services.nat import NatService
from repro.services.kvcache import KVCacheService


def registry():
    """name -> :class:`~repro.deploy.spec.ServiceSpec` for every
    deployable service (see :mod:`repro.services.catalog`).

    Imported lazily: the registry pulls in the deploy layer, which
    pulls in every backend — a cycle if resolved at package init
    (``cluster.balancer`` is itself an Emu service).
    """
    from repro.services.catalog import registry as _registry
    return _registry()

__all__ = [
    "EmuService", "LearningSwitch", "FilterRule", "L3L4Filter",
    "FilteringSwitch", "IcmpEchoService", "TcpPingService",
    "DnsServerService", "MemcachedService", "NatService", "KVCacheService",
    "registry",
]
