"""Non-recursive DNS server (§4.3).

Resolves A-record queries from a fixed table.  The paper's prototype
limits names to 26 bytes and answers "cannot resolve" for unknown names;
both behaviours are reproduced (the length cap is configurable, as the
paper notes the constraint can be relaxed).
"""

from repro.core import netfpga as NetFPGA
from repro.core.protocols.dns import (
    DNSHeader, DNSQuestion, MAX_PAPER_NAME_BYTES, QClass, QType, RCode,
    build_dns_response, decode_name, encode_name,
)
from repro.core.protocols.ethernet import EthernetWrapper
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper
from repro.core.protocols.udp import UDPWrapper
from repro.errors import ParseError
from repro.kiwi.runtime import pause
from repro.services.base import EmuService

DNS_PORT = 53


class DnsServerService(EmuService):
    """Answers non-recursive A queries from a resolution table."""

    name = "dns"

    def __init__(self, my_ip, my_mac=0x02_00_00_00_00_03,
                 max_name_bytes=MAX_PAPER_NAME_BYTES, table=None):
        self.my_ip = my_ip
        self.my_mac = my_mac
        self.max_name_bytes = max_name_bytes
        self.table = {}
        if table:
            for name, address in table.items():
                self.add_record(name, address)
        self.queries_seen = 0
        self.answers_sent = 0
        self.nxdomain_sent = 0

    def add_record(self, name, address):
        """Register ``name -> address`` (address as 32-bit int)."""
        if len(name) > self.max_name_bytes:
            raise ParseError(
                "name %r exceeds the %d-byte limit"
                % (name, self.max_name_bytes))
        self.table[name.lower().rstrip(".")] = address

    def remove_record(self, name):
        self.table.pop(name.lower().rstrip("."), None)

    def on_frame(self, dataplane):
        if not dataplane.tdata.is_ipv4():
            return
        ip = IPv4Wrapper(dataplane.tdata)
        if ip.protocol != IPProtocols.UDP or \
                ip.destination_ip_address != self.my_ip:
            return
        udp = UDPWrapper(dataplane.tdata)
        if udp.destination_port != DNS_PORT:
            return
        yield pause()

        payload = udp.payload()
        try:
            header = DNSHeader.decode(payload)
            if not header.is_query or header.qdcount < 1:
                return
            question, _ = DNSQuestion.decode(payload, 12)
        except ParseError:
            return
        self.queries_seen += 1
        yield pause()

        # Resolution-table lookup (CAM/hash probe in hardware).
        rcode, address = self._resolve(question)
        yield pause()

        response = build_dns_response(header.txid, question,
                                      address=address, rcode=rcode)
        if rcode == RCode.NO_ERROR and address is not None:
            self.answers_sent += 1
        else:
            self.nxdomain_sent += 1
        yield pause()

        eth = EthernetWrapper(dataplane.tdata)
        eth.swap_macs()
        ip.swap_ips()
        ip.ttl = 64
        udp.swap_ports()
        udp.set_payload(response)
        ip.total_length = ip.header_bytes + udp.length
        ip.update_checksum()
        udp.update_checksum(ip)
        NetFPGA.send_back(dataplane)

    def _resolve(self, question):
        name = question.name.lower()
        if len(encode_name(name)) - 1 > self.max_name_bytes + 1:
            return RCode.NAME_ERROR, None
        if question.qtype != QType.A or question.qclass != QClass.IN:
            return RCode.NOT_IMPLEMENTED, None
        address = self.table.get(name)
        if address is None:
            return RCode.NAME_ERROR, None
        return RCode.NO_ERROR, address

    def datapath_extra_cycles(self, frame):
        """The hardware walks the QNAME byte-serially (hash + compare),
        builds the answer record byte-serially, and runs UDP + IP
        checksum passes — all beyond the handler's coarse pauses."""
        payload_bytes = max(0, len(frame.data) - 42)
        return 40 + 3 * payload_bytes

    def reset(self):
        self.queries_seen = 0
        self.answers_sent = 0
        self.nxdomain_sent = 0


def dns_kernel(frame: "mem[512]x8", my_ip: "u32", tags: "mem[64]x32",
               addrs: "mem[64]x32", tvalid: "mem[64]x1") -> "u4":
    """Flat Emu-Python DNS responder for the Kiwi compiler (Table 5).

    Hardware design: hash the queried name into a 64-entry table of
    (tag, address); tag-compare confirms the hit.  The response is
    written over the query in the frame memory.  Returns the output
    bitmap (0 = drop).
    """
    ethertype = (frame[12] << 8) | frame[13]
    if ethertype != 0x0800:
        return 0
    if frame[23] != 17:
        return 0
    dport = (frame[36] << 8) | frame[37]
    if dport != 53:
        return 0
    pause()

    # Walk the QNAME labels (bytes from offset 54), hashing as we go.
    h = 0
    tag = 0
    i = 0
    bad = 0
    while i < 64:
        c = frame[54 + i]
        if c == 0:
            i = 64
        else:
            h = bits(h * 31 + c, 32)
            tag = bits(tag ^ (bits(c, 32) << bits(8 * (i & 3), 6)), 32)
            i = i + 1
            if i == 27:
                bad = 1
                i = 64
        pause()
    if bad == 1:
        return 0
    pause()

    # Table probe.
    idx = bits(h, 6)
    hit = 0
    addr = 0
    if tvalid[idx] == 1 and tags[idx] == tag:
        hit = 1
        addr = addrs[idx]
    pause()

    # Patch the header into a response: QR=1, rcode, ANCOUNT.
    frame[44] = 0x80 + (0 if hit == 1 else 3)
    frame[45] = 0
    frame[48] = 0
    frame[49] = hit
    pause()

    # Swap MACs and IPs, swap UDP ports.
    for k in range(6):
        t1 = frame[k]
        frame[k] = frame[6 + k]
        frame[6 + k] = t1
    for k in range(4):
        t2 = frame[26 + k]
        frame[26 + k] = frame[30 + k]
        frame[30 + k] = t2
    for k in range(2):
        t3 = frame[34 + k]
        frame[34 + k] = frame[36 + k]
        frame[36 + k] = t3
    pause()

    if hit == 1:
        # Append a compressed-name A record; offsets are frame-relative
        # (the record starts right after the question, found via i scan
        # in a fuller design; fixed layout assumed here).
        base = 54 + 32
        frame[base] = 0xC0
        frame[base + 1] = 0x0C
        frame[base + 2] = 0
        frame[base + 3] = 1
        frame[base + 4] = 0
        frame[base + 5] = 1
        frame[base + 6] = 0
        frame[base + 7] = 0
        frame[base + 8] = 1
        frame[base + 9] = 44
        frame[base + 10] = 0
        frame[base + 11] = 4
        frame[base + 12] = bits(addr >> 24, 8)
        frame[base + 13] = bits(addr >> 16, 8)
        frame[base + 14] = bits(addr >> 8, 8)
        frame[base + 15] = bits(addr, 8)
    return 1
