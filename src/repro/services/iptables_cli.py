"""iptables-style command-line front-end for the L3–L4 filter (§4.1).

Accepts the familiar argument vocabulary and programs an
:class:`~repro.services.filter_l3l4.L3L4Filter` instead of a Linux
server's netfilter:

    -A FORWARD -p tcp --dport 80 -j DROP
    -A FORWARD -s 10.0.0.0/8 -j ACCEPT
    -D FORWARD 2
    -F FORWARD
    -P FORWARD DROP
"""

from repro.core.protocols.ipv4 import IPProtocols
from repro.errors import ParseError
from repro.net.packet import ip_to_int
from repro.services.filter_l3l4 import ACCEPT, DROP, FilterRule

_PROTOCOLS = {
    "icmp": IPProtocols.ICMP,
    "tcp": IPProtocols.TCP,
    "udp": IPProtocols.UDP,
    "all": None,
}


def _parse_cidr(text):
    """``"10.0.0.0/8"`` → (ip, mask); a bare address implies /32."""
    if "/" in text:
        addr, bits = text.split("/", 1)
        try:
            bits = int(bits)
        except ValueError:
            raise ParseError("bad prefix length %r" % bits)
        if not 0 <= bits <= 32:
            raise ParseError("prefix length %d out of range" % bits)
    else:
        addr, bits = text, 32
    mask = 0 if bits == 0 else (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
    return ip_to_int(addr), mask


def _parse_port_range(text):
    """``"80"`` or ``"1000:2000"`` → (lo, hi)."""
    if ":" in text:
        lo, hi = text.split(":", 1)
    else:
        lo = hi = text
    try:
        lo, hi = int(lo), int(hi)
    except ValueError:
        raise ParseError("bad port range %r" % text)
    if not (0 <= lo <= 0xFFFF and 0 <= hi <= 0xFFFF and lo <= hi):
        raise ParseError("port range %r out of order" % text)
    return lo, hi


class IptablesCli:
    """Parses iptables-style argv lists and programs a filter chain."""

    def __init__(self, filter_chain):
        self.filter = filter_chain

    def run(self, argv):
        """Apply one command; returns a status string."""
        if isinstance(argv, str):
            argv = argv.split()
        argv = list(argv)
        if not argv:
            raise ParseError("empty iptables command")
        action = argv.pop(0)
        if action == "-A":
            return self._append(argv)
        if action == "-D":
            return self._delete(argv)
        if action == "-F":
            self.filter.flush()
            return "flushed"
        if action == "-P":
            return self._policy(argv)
        if action == "-L":
            return self._list()
        raise ParseError("unsupported iptables action %r" % action)

    def _append(self, argv):
        if not argv or argv.pop(0) != "FORWARD":
            raise ParseError("only the FORWARD chain is supported")
        rule_kwargs = {}
        verdict = None
        it = iter(argv)
        for flag in it:
            if flag in ("-p", "--protocol"):
                proto = next(it, None)
                if proto not in _PROTOCOLS:
                    raise ParseError("unknown protocol %r" % proto)
                rule_kwargs["protocol"] = _PROTOCOLS[proto]
            elif flag in ("-s", "--source"):
                ip, mask = _parse_cidr(_next(it, flag))
                rule_kwargs["src_ip"] = ip
                rule_kwargs["src_mask"] = mask
            elif flag in ("-d", "--destination"):
                ip, mask = _parse_cidr(_next(it, flag))
                rule_kwargs["dst_ip"] = ip
                rule_kwargs["dst_mask"] = mask
            elif flag == "--sport":
                lo, hi = _parse_port_range(_next(it, flag))
                rule_kwargs["sport_lo"] = lo
                rule_kwargs["sport_hi"] = hi
            elif flag == "--dport":
                lo, hi = _parse_port_range(_next(it, flag))
                rule_kwargs["dport_lo"] = lo
                rule_kwargs["dport_hi"] = hi
            elif flag in ("-j", "--jump"):
                verdict = _next(it, flag)
            else:
                raise ParseError("unsupported iptables flag %r" % flag)
        if verdict not in (ACCEPT, DROP):
            raise ParseError("rule needs -j ACCEPT or -j DROP")
        index = self.filter.append(FilterRule(verdict=verdict,
                                              **rule_kwargs))
        return "appended rule %d" % index

    def _delete(self, argv):
        if len(argv) != 2 or argv[0] != "FORWARD":
            raise ParseError("usage: -D FORWARD <rulenum>")
        try:
            rulenum = int(argv[1])
        except ValueError:
            raise ParseError("bad rule number %r" % argv[1])
        self.filter.delete(rulenum - 1)     # iptables numbers from 1
        return "deleted rule %d" % rulenum

    def _policy(self, argv):
        if len(argv) != 2 or argv[0] != "FORWARD":
            raise ParseError("usage: -P FORWARD <ACCEPT|DROP>")
        if argv[1] not in (ACCEPT, DROP):
            raise ParseError("policy must be ACCEPT or DROP")
        self.filter.default_policy = argv[1]
        return "policy %s" % argv[1]

    def _list(self):
        lines = ["Chain FORWARD (policy %s)" % self.filter.default_policy]
        for index, rule in enumerate(self.filter.rules):
            lines.append("%4d %r" % (index + 1, rule))
        return "\n".join(lines)


def _next(it, flag):
    value = next(it, None)
    if value is None:
        raise ParseError("flag %s needs an argument" % flag)
    return value
