"""L3–L4 filter (§4.1): iptables-style rules slotted into the switch.

The paper ships "a tool that emulates the command-line parameter
interface of IP tables" which "generates code that slots into our
learning switch", turning it into an L3 filter (addresses, protocols)
or L4 filter (TCP/UDP port ranges).  Here:

* :class:`FilterRule` / :class:`L3L4Filter` — the rule engine over a
  TCAM IP block;
* :class:`FilteringSwitch` — the learning switch with the filter
  slotted in front;
* :mod:`repro.services.iptables_cli` — the command-line front-end.
"""

from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper
from repro.core.protocols.tcp import TCPWrapper
from repro.core.protocols.udp import UDPWrapper
from repro.errors import ParseError
from repro.ip.tcam import TernaryCAM
from repro.kiwi.runtime import pause
from repro.services.base import EmuService
from repro.services.switch import LearningSwitch

ACCEPT = "ACCEPT"
DROP = "DROP"


class FilterRule:
    """One match-and-verdict rule (a parsed iptables rule)."""

    __slots__ = ("protocol", "src_ip", "src_mask", "dst_ip", "dst_mask",
                 "sport_lo", "sport_hi", "dport_lo", "dport_hi", "verdict")

    def __init__(self, protocol=None, src_ip=0, src_mask=0, dst_ip=0,
                 dst_mask=0, sport_lo=0, sport_hi=0xFFFF, dport_lo=0,
                 dport_hi=0xFFFF, verdict=DROP):
        if verdict not in (ACCEPT, DROP):
            raise ParseError("verdict must be ACCEPT or DROP")
        self.protocol = protocol
        self.src_ip = src_ip & 0xFFFFFFFF
        self.src_mask = src_mask & 0xFFFFFFFF
        self.dst_ip = dst_ip & 0xFFFFFFFF
        self.dst_mask = dst_mask & 0xFFFFFFFF
        self.sport_lo = sport_lo
        self.sport_hi = sport_hi
        self.dport_lo = dport_lo
        self.dport_hi = dport_hi
        self.verdict = verdict

    def matches(self, protocol, src_ip, dst_ip, sport, dport):
        if self.protocol is not None and protocol != self.protocol:
            return False
        if (src_ip & self.src_mask) != (self.src_ip & self.src_mask):
            return False
        if (dst_ip & self.dst_mask) != (self.dst_ip & self.dst_mask):
            return False
        if not self.sport_lo <= sport <= self.sport_hi:
            return False
        if not self.dport_lo <= dport <= self.dport_hi:
            return False
        return True

    def __repr__(self):
        proto = {None: "all", IPProtocols.ICMP: "icmp",
                 IPProtocols.TCP: "tcp",
                 IPProtocols.UDP: "udp"}.get(self.protocol, "?")
        return "FilterRule(%s -> %s)" % (proto, self.verdict)


class L3L4Filter:
    """An ordered rule chain with a default policy.

    Exact-prefix rules are additionally programmed into a TCAM netlist
    so the design's resource cost is accounted like hardware would be.
    """

    def __init__(self, default_policy=ACCEPT, depth=64):
        if default_policy not in (ACCEPT, DROP):
            raise ParseError("default policy must be ACCEPT or DROP")
        self.rules = []
        self.default_policy = default_policy
        self.tcam = TernaryCAM(key_width=72, value_width=1, depth=depth)
        self.matched_rule = None

    def append(self, rule):
        self.rules.append(rule)
        self._program_tcam()
        return len(self.rules) - 1

    def delete(self, index):
        if not 0 <= index < len(self.rules):
            raise ParseError("no rule %d" % index)
        del self.rules[index]
        self._program_tcam()

    def flush(self):
        self.rules = []
        self._program_tcam()

    def _program_tcam(self):
        """Mirror prefix-matchable parts of the chain into the TCAM."""
        for slot in range(self.tcam.depth):
            self.tcam.invalidate(slot)
        for slot, rule in enumerate(self.rules[:self.tcam.depth]):
            key = ((rule.protocol or 0) << 64) | (rule.src_ip << 32) | \
                rule.dst_ip
            mask = ((0xFF if rule.protocol is not None else 0) << 64) | \
                (rule.src_mask << 32) | rule.dst_mask
            self.tcam.write(slot, key, mask,
                            1 if rule.verdict == ACCEPT else 0)

    def verdict(self, protocol, src_ip, dst_ip, sport=0, dport=0):
        """First-match verdict, iptables chain semantics."""
        for rule in self.rules:
            if rule.matches(protocol, src_ip, dst_ip, sport, dport):
                self.matched_rule = rule
                return rule.verdict
        self.matched_rule = None
        return self.default_policy

    def verdict_for_frame(self, tdata):
        """Classify an Ethernet frame; non-IPv4 follows the default."""
        if not tdata.is_ipv4():
            return self.default_policy
        ip = IPv4Wrapper(tdata)
        sport = dport = 0
        if ip.protocol == IPProtocols.TCP:
            l4 = TCPWrapper(tdata)
            sport, dport = l4.source_port, l4.destination_port
        elif ip.protocol == IPProtocols.UDP:
            l4 = UDPWrapper(tdata)
            sport, dport = l4.source_port, l4.destination_port
        return self.verdict(ip.protocol, ip.source_ip_address,
                            ip.destination_ip_address, sport, dport)


class FilteringSwitch(EmuService):
    """The learning switch with the L3–L4 filter slotted in front."""

    name = "filtering_switch"

    def __init__(self, filter_chain=None, **switch_kwargs):
        self.filter = filter_chain if filter_chain is not None \
            else L3L4Filter()
        self.switch = LearningSwitch(**switch_kwargs)
        self.accepted = 0
        self.filtered = 0

    def on_frame(self, dataplane):
        verdict = self.filter.verdict_for_frame(dataplane.tdata)
        yield pause()
        if verdict == DROP:
            self.filtered += 1
            dataplane.dst_ports = 0
            return
        self.accepted += 1
        yield from self.switch.on_frame(dataplane)

    def reset(self):
        self.switch.reset()
        self.accepted = 0
        self.filtered = 0

    def kernel_cycle_model(self, opt_level, batch=None,
                           level_budget=None):
        """Core-cycle model from the compiled filter-stage kernel,
        programmed with this switch's rule chain (first 8 rules)."""
        from repro.targets.kernel_model import KernelCycleModel
        model = KernelCycleModel(filter_kernel, opt_level, batch=batch,
                                 level_budget=level_budget)
        for slot, rule in enumerate(self.filter.rules[:8]):
            model.poke_memory("rule_valid", slot, 1)
            model.poke_memory("rule_proto", slot, rule.protocol or 0)
            model.poke_memory("rule_src", slot, rule.src_ip)
            model.poke_memory("rule_smask", slot, rule.src_mask)
            model.poke_memory("rule_dlo", slot, rule.dport_lo)
            model.poke_memory("rule_dhi", slot, rule.dport_hi)
            model.poke_memory(
                "rule_accept", slot, 1 if rule.verdict == ACCEPT else 0)
        return model


def filter_kernel(frame: "mem[64]x8", rule_proto: "mem[8]x8",
                  rule_src: "mem[8]x32", rule_smask: "mem[8]x32",
                  rule_dlo: "mem[8]x16", rule_dhi: "mem[8]x16",
                  rule_accept: "mem[8]x1",
                  rule_valid: "mem[8]x1") -> "u1":
    """Flat Emu-Python L3/L4 filter stage for the Kiwi compiler.

    An 8-entry rule chain evaluated in order (first match wins,
    iptables semantics, default accept): protocol, masked source
    address, and destination-port range.  The rule memories are the
    hardware image of :class:`FilterRule`; the unrolled match chain is
    what the optimizer's CSE and fusion passes chew on.  Returns the
    accept bit.
    """
    ethertype = (frame[12] << 8) | frame[13]
    if ethertype != 0x0800:
        return 1                    # non-IP traffic is switched freely
    proto = frame[23]
    src_ip = 0
    for i in range(4):
        src_ip = bits((src_ip << 8) | frame[26 + i], 32)
    pause()

    dport = (frame[36] << 8) | frame[37]
    ports_known = 0
    if proto == 6:
        ports_known = 1
    if proto == 17:
        ports_known = 1
    if ports_known == 0:
        dport = 0
    pause()

    verdict = 1
    decided = 0
    for r in range(8):
        m = 0
        if rule_valid[r] == 1:
            m = 1
            if rule_proto[r] != 0:
                if bits(rule_proto[r], 8) != bits(proto, 8):
                    m = 0
            if bits(src_ip & rule_smask[r], 32) != rule_src[r]:
                m = 0
            if bits(dport, 16) < rule_dlo[r]:
                m = 0
            if bits(dport, 16) > rule_dhi[r]:
                m = 0
        if decided == 0:
            if m == 1:
                verdict = rule_accept[r]
                decided = 1
    pause()
    return verdict
