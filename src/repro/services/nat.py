"""NAT gateway (§4.4) — UDP and TCP, "written entirely in C#".

Port-restricted NAPT between a local network (port ``LAN_PORT``) and an
external network (port ``WAN_PORT``):

* outbound packets get their source rewritten to the gateway's public
  address and an allocated public port; the mapping is remembered;
* inbound packets to a mapped public port are rewritten back to the
  private endpoint; unmapped inbound traffic is dropped.

ICMP echo packets are translated by (identifier) the same way, so
``ping`` through the gateway works.
"""

from repro.core import netfpga as NetFPGA
from repro.core.protocols.ethernet import EthernetWrapper
from repro.core.protocols.icmp import ICMPWrapper
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper
from repro.core.protocols.tcp import TCPWrapper
from repro.core.protocols.udp import UDPWrapper
from repro.kiwi.runtime import pause
from repro.services.base import EmuService

LAN_PORT = 0
WAN_PORT = 1
FIRST_PUBLIC_PORT = 10000


class NatEntry:
    """One translation: (private ip, private port) <-> public port."""

    __slots__ = ("private_ip", "private_port", "public_port", "protocol")

    def __init__(self, private_ip, private_port, public_port, protocol):
        self.private_ip = private_ip
        self.private_port = private_port
        self.public_port = public_port
        self.protocol = protocol


class NatService(EmuService):
    """NAPT gateway between a LAN-side and a WAN-side port."""

    name = "nat"

    def __init__(self, public_ip, gateway_mac=0x02_00_00_00_00_05,
                 wan_next_hop_mac=0x02_00_00_00_01_00,
                 lan_port=LAN_PORT, wan_port=WAN_PORT,
                 max_entries=4096):
        self.public_ip = public_ip
        self.gateway_mac = gateway_mac
        self.wan_next_hop_mac = wan_next_hop_mac
        self.lan_port = lan_port
        self.wan_port = wan_port
        self.max_entries = max_entries
        self._next_port = FIRST_PUBLIC_PORT
        self._outbound = {}      # (proto, priv_ip, priv_port) -> entry
        self._inbound = {}       # (proto, public_port) -> entry
        self._lan_macs = {}      # private ip -> mac (learned)
        self.translated_out = 0
        self.translated_in = 0
        self.dropped = 0

    # -- mapping -------------------------------------------------------------

    def _allocate(self, protocol, private_ip, private_port):
        key = (protocol, private_ip, private_port)
        entry = self._outbound.get(key)
        if entry is None:
            if len(self._outbound) >= self.max_entries:
                return None                     # table exhausted
            public_port = self._next_port
            self._next_port += 1
            if self._next_port > 0xFFFF:
                self._next_port = FIRST_PUBLIC_PORT
            entry = NatEntry(private_ip, private_port, public_port,
                             protocol)
            self._outbound[key] = entry
            self._inbound[(protocol, public_port)] = entry
        return entry

    def mapping_for(self, protocol, private_ip, private_port):
        """Inspect the translation table (tests/debugging)."""
        return self._outbound.get((protocol, private_ip, private_port))

    # -- dataplane -----------------------------------------------------------

    def on_frame(self, dataplane):
        if not dataplane.tdata.is_ipv4():
            self.dropped += 1
            return
        ip = IPv4Wrapper(dataplane.tdata)
        outbound = dataplane.src_port == self.lan_port
        yield pause()

        if ip.protocol == IPProtocols.UDP:
            l4 = UDPWrapper(dataplane.tdata)
        elif ip.protocol == IPProtocols.TCP:
            l4 = TCPWrapper(dataplane.tdata)
        elif ip.protocol == IPProtocols.ICMP:
            yield from self._translate_icmp(dataplane, ip, outbound)
            return
        else:
            self.dropped += 1
            return
        yield pause()

        if outbound:
            self._lan_macs[ip.source_ip_address] = \
                EthernetWrapper(dataplane.tdata).source_mac
            entry = self._allocate(ip.protocol, ip.source_ip_address,
                                   l4.source_port)
            if entry is None:
                self.dropped += 1
                return
            yield pause()
            ip.source_ip_address = self.public_ip
            l4.source_port = entry.public_port
            self._finish(dataplane, ip, l4, self.wan_port,
                         self.wan_next_hop_mac)
            self.translated_out += 1
        else:
            entry = self._inbound.get((ip.protocol, l4.destination_port))
            if entry is None or ip.destination_ip_address != self.public_ip:
                self.dropped += 1
                return
            yield pause()
            ip.destination_ip_address = entry.private_ip
            l4.destination_port = entry.private_port
            dst_mac = self._lan_macs.get(entry.private_ip, 0xFFFFFFFFFFFF)
            self._finish(dataplane, ip, l4, self.lan_port, dst_mac)
            self.translated_in += 1

    def _translate_icmp(self, dataplane, ip, outbound):
        icmp = ICMPWrapper(dataplane.tdata)
        yield pause()
        if outbound:
            entry = self._allocate(IPProtocols.ICMP, ip.source_ip_address,
                                   icmp.identifier)
            if entry is None:
                self.dropped += 1
                return
            self._lan_macs[ip.source_ip_address] = \
                EthernetWrapper(dataplane.tdata).source_mac
            ip.source_ip_address = self.public_ip
            icmp.identifier = entry.public_port
            self._finish(dataplane, ip, icmp, self.wan_port,
                         self.wan_next_hop_mac)
            self.translated_out += 1
        else:
            entry = self._inbound.get((IPProtocols.ICMP, icmp.identifier))
            if entry is None or ip.destination_ip_address != self.public_ip:
                self.dropped += 1
                return
            ip.destination_ip_address = entry.private_ip
            icmp.identifier = entry.private_port
            dst_mac = self._lan_macs.get(entry.private_ip, 0xFFFFFFFFFFFF)
            self._finish(dataplane, ip, icmp, self.lan_port, dst_mac)
            self.translated_in += 1

    def _finish(self, dataplane, ip, l4, out_port, dst_mac):
        eth = EthernetWrapper(dataplane.tdata)
        eth.source_mac = self.gateway_mac
        eth.destination_mac = dst_mac
        ip.ttl = max(1, ip.ttl - 1)
        ip.update_checksum()
        if isinstance(l4, (UDPWrapper, TCPWrapper)):
            l4.update_checksum(ip)
        else:
            l4.update_checksum()
        NetFPGA.set_output_port(dataplane, out_port)

    def datapath_extra_cycles(self, frame):
        """Header rewrite plus incremental L3 checksum and a full L4
        checksum pass over the translated segment (2 B/cycle)."""
        l4_bytes = max(0, len(frame.data) - 34)
        return 16 + l4_bytes // 2

    def reset(self):
        self._outbound.clear()
        self._inbound.clear()
        self._lan_macs.clear()
        self._next_port = FIRST_PUBLIC_PORT
        self.translated_out = self.translated_in = self.dropped = 0

    def kernel_cycle_model(self, opt_level, batch=None,
                           level_budget=None):
        """Core-cycle model from the compiled outbound-path kernel
        (used by the FPGA target when an ``opt_level`` is requested)."""
        from repro.targets.kernel_model import KernelCycleModel
        return KernelCycleModel(
            nat_kernel, opt_level,
            scalars={"public_ip": self.public_ip, "src_port": 0},
            batch=batch, level_budget=level_budget)


def nat_kernel(frame: "mem[64]x8", public_ip: "u32", src_port: "u8",
               map_ip: "mem[64]x32", map_port: "mem[64]x16",
               map_valid: "mem[64]x1") -> ("u4", "u16"):
    """Flat Emu-Python outbound NAPT datapath for the Kiwi compiler.

    The hot path of the gateway: a LAN-side UDP frame has its source
    endpoint remembered in a 64-entry direct-mapped table and is
    rewritten to leave from ``(public_ip, 10000 + slot)``.  Inbound and
    ICMP translation stay behavioural; this kernel is what the
    optimizer benchmarks measure.  Returns ``(output-port bitmap,
    public port)`` — bitmap 0 drops, bit 1 is the WAN port.
    """
    ethertype = (frame[12] << 8) | frame[13]
    if ethertype != 0x0800:
        return 0, 0
    if frame[23] != 17:
        return 0, 0
    if src_port != 0:
        return 0, 0                 # inbound handled elsewhere
    pause()

    src_ip = 0
    for i in range(4):
        src_ip = bits((src_ip << 8) | frame[26 + i], 32)
    sport = (frame[34] << 8) | frame[35]
    slot = bits(src_ip ^ (src_ip >> 8) ^ sport, 6)
    pause()

    # Port-restricted mapping: install on miss, reuse on hit.
    hit = 0
    if map_valid[slot] == 1 and map_ip[slot] == src_ip and \
            map_port[slot] == bits(sport, 16):
        hit = 1
    if hit == 0:
        map_ip[slot] = src_ip
        map_port[slot] = bits(sport, 16)
        map_valid[slot] = 1
    public_port = bits(slot, 16) + 10000
    pause()

    # Rewrite the source IP (checksum passes are charged as datapath
    # extras, as in the behavioural service).
    frame[26] = bits(public_ip >> 24, 8)
    frame[27] = bits(public_ip >> 16, 8)
    frame[28] = bits(public_ip >> 8, 8)
    frame[29] = bits(public_ip, 8)
    pause()

    frame[34] = bits(public_port >> 8, 8)
    frame[35] = bits(public_port, 8)
    return 2, public_port
