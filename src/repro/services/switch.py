"""L2 learning switch (§4.1) — the paper's flagship example (Fig. 2).

Two variants, exactly as the paper describes:

* :class:`LearningSwitch` with ``use_ip_cam=True`` (default) uses the
  CAM IP block — less developer burden on the tooling side, much better
  resource usage and timing;
* ``use_ip_cam=False`` uses the pure-language :class:`RegisterCAM` —
  "does not burden developers with implementation details".

``switch_kernel`` is the flat Emu-Python version that the Kiwi compiler
synthesises for Table 3's resource/latency comparison.
"""

from repro.core import netfpga as NetFPGA
from repro.core.protocols.ethernet import EthernetWrapper
from repro.ip.cam import BinaryCAM, RegisterCAM
from repro.kiwi.runtime import pause
from repro.services.base import EmuService

DEFAULT_TABLE_SIZE = 256     # 256-entry tables, as in §5.3


class LearningSwitch(EmuService):
    """Layer-2 learning switch over a MAC → port CAM."""

    name = "switch"

    def __init__(self, table_size=DEFAULT_TABLE_SIZE, use_ip_cam=True,
                 num_ports=4):
        cam_cls = BinaryCAM if use_ip_cam else RegisterCAM
        self.lut = cam_cls(key_width=48, value_width=8, depth=table_size)
        self.num_ports = num_ports
        self.use_ip_cam = use_ip_cam

    def on_frame(self, dataplane):
        """Direct transcription of Fig. 2."""
        eth = EthernetWrapper(dataplane.tdata)
        dst_mac = eth.destination_mac
        src_mac = eth.source_mac

        # CAM lookup for the destination port (1 cycle on the IP block).
        lut_element_op = self.lut.lookup(dst_mac)
        dstmac_lut_hit = self.lut.matched
        yield pause()

        if dstmac_lut_hit:
            NetFPGA.set_output_port(dataplane, lut_element_op)
        else:
            NetFPGA.broadcast(dataplane)
        yield pause()

        # Learn: add the source MAC if it is not already there.
        self.lut.lookup(src_mac)
        srcmac_lut_exist = self.lut.matched
        yield pause()
        if not srcmac_lut_exist:
            self.lut.write(src_mac, dataplane.src_port)

    def learned_port(self, mac):
        """The port learned for *mac*, or ``None``."""
        port = self.lut.lookup(mac)
        return port if self.lut.matched else None

    def reset(self):
        self.lut.clear()


def switch_kernel(frame: "mem[64]x8", src_port: "u8", dst_hit: "u1",
                  dst_port: "u8", src_hit: "u1") -> ("u4", "u1", "u48"):
    """Flat Emu-Python learning switch for the Kiwi compiler.

    The CAM is an IP block (§3.2 (i)): its match results arrive as the
    ``dst_hit``/``dst_port``/``src_hit`` inputs, and the learn request
    leaves as the ``(learn_enable, learn_key)`` results —
    :func:`build_emu_switch_core` wires both sides together.  The frame
    memory holds the packet headers.  Returns ``(dst_ports bitmap,
    learn_enable, learn_key)``.  The schedule lands the paper's 8-cycle
    module latency (Table 3): 2 cycles of CAM interaction + 6 here.
    """
    dst_mac: "u48" = 0
    src_mac: "u48" = 0
    for i in range(6):
        dst_mac = bits((dst_mac << 8) | frame[i], 48)
        src_mac = bits((src_mac << 8) | frame[6 + i], 48)
    pause()

    # Fig. 2: hit -> one-hot output port, miss -> broadcast (all ports
    # except the source).
    out_ports: "u4" = 0
    if dst_hit == 1:
        out_ports = bits(1 << bits(dst_port, 2), 4)
    else:
        out_ports = bits(15 & ~(1 << bits(src_port, 2)), 4)
    pause()

    # Fig. 2 lines 13-18: learn the source MAC if absent.
    learn: "u1" = 0
    if src_hit == 0:
        learn = 1
    pause()
    return out_ports, learn, src_mac


def build_emu_switch_core(table_size=DEFAULT_TABLE_SIZE, opt_level=None):
    """The full Emu switch design: compiled kernel + CAM IP block.

    Returns ``(compiled_design, top_module)``; the top module is what
    Table 3 reports resources for (and matches the paper's observation
    that ~85% of the Emu switch's resources are the CAM).  *opt_level*
    overrides the compiler's default middle-end level (e.g. ``2`` for
    the optimized Table 3 row).
    """
    from repro.kiwi.compiler import DEFAULT_OPT_LEVEL, compile_function
    from repro.rtl.module import Module

    if opt_level is None:
        opt_level = DEFAULT_OPT_LEVEL
    design = compile_function(switch_kernel, opt_level=opt_level)
    cam = BinaryCAM(key_width=48, value_width=8, depth=table_size)
    cam_netlist = cam.build_netlist("mac_cam")

    top = Module("emu_switch_core")
    start = top.input("start", 1)
    src_port = top.input("src_port", 8)
    search_key = top.input("search_key", 48)
    dst_ports = top.output("dst_ports", 4)
    busy = top.output("busy", 1)

    cam_match = top.wire("cam_match", 1)
    cam_value = top.wire("cam_value", 8)
    kernel_result = top.wire("kernel_dst_ports", 4)
    kernel_busy = top.wire("kernel_busy", 1)
    learn_en = top.wire("learn_en", 1)
    learn_key = top.wire("learn_key", 48)

    top.instantiate(
        "cam", cam_netlist,
        search_key=search_key, write_en=learn_en, write_key=learn_key,
        write_value=src_port, match=cam_match, value_out=cam_value)
    top.instantiate(
        "kernel", design.module,
        start=start, src_port=src_port, dst_hit=cam_match,
        dst_port=cam_value, src_hit=cam_match,
        busy=kernel_busy, result0=kernel_result, result1=learn_en,
        result2=learn_key)
    top.comb(dst_ports, kernel_result)
    top.comb(busy, kernel_busy)
    return design, top
