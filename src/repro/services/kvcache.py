"""In-dataplane look-aside LRU cache (§4.4 "Caching").

The SwitchKV-inspired use case: GET requests whose key is cached are
answered directly from the dataplane; misses are forwarded on to the
storage server, and the server's responses populate the cache on the
way back.  Eviction is the Fig. 9 LRU (HashCAM + NaughtyQ) — the logic
that "would be difficult in P4 because eviction must be managed by the
control plane".
"""

from repro.core import netfpga as NetFPGA
from repro.core.lru import LRU
from repro.core.protocols.ethernet import EthernetWrapper
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper
from repro.core.protocols.memcached import (
    BinaryMagic, BinaryOpcodes, BinaryStatus, MemcachedBinaryWrapper,
    build_binary_response, build_udp_frame_header, split_udp_frame,
)
from repro.core.protocols.udp import UDPWrapper
from repro.errors import ParseError
from repro.kiwi.runtime import pause
from repro.services.base import EmuService

CACHE_PORT = 11211


class KVCacheService(EmuService):
    """Cache sitting between clients (port 0) and a server (port 1)."""

    name = "kvcache"

    def __init__(self, client_port=0, server_port=1, depth=64,
                 listen_port=CACHE_PORT):
        self.client_port = client_port
        self.server_port = server_port
        self.listen_port = listen_port
        self.lru = LRU(key_width=64, value_width=64, depth=depth)
        self.cache_hits = 0
        self.cache_misses = 0
        self.populated = 0

    @staticmethod
    def _key64(key):
        """Fold a key (≤8 bytes meaningfully) into the CAM's 64-bit key."""
        return int.from_bytes(bytes(key[:8]).ljust(8, b"\x00"), "big")

    def on_frame(self, dataplane):
        if not dataplane.tdata.is_ipv4():
            return
        ip = IPv4Wrapper(dataplane.tdata)
        if ip.protocol != IPProtocols.UDP:
            self._forward(dataplane)
            return
        udp = UDPWrapper(dataplane.tdata)
        from_client = dataplane.src_port == self.client_port
        port_field = udp.destination_port if from_client \
            else udp.source_port
        if port_field != self.listen_port:
            self._forward(dataplane)
            return
        yield pause()

        try:
            request_id, body = split_udp_frame(udp.payload())
            message = MemcachedBinaryWrapper(body)
        except ParseError:
            self._forward(dataplane)
            return
        yield pause()

        if from_client and message.is_request and \
                message.opcode == BinaryOpcodes.GET:
            result = self.lru.lookup(self._key64(message.key()))
            yield pause()
            if result.matched:
                self.cache_hits += 1
                self._answer(dataplane, ip, udp, request_id, message,
                             result.result)
                return
            self.cache_misses += 1
            self._forward(dataplane)
            return
        if not from_client and message.is_response and \
                message.opcode == BinaryOpcodes.GET and \
                message.status == BinaryStatus.NO_ERROR:
            value = message.value()
            if len(value) == 8:
                self.lru.cache(self._key64(message.key()),
                               int.from_bytes(value, "big"))
                self.populated += 1
            yield pause()
        self._forward(dataplane)

    def _forward(self, dataplane):
        out = self.server_port if dataplane.src_port == self.client_port \
            else self.client_port
        NetFPGA.set_output_port(dataplane, out)

    def _answer(self, dataplane, ip, udp, request_id, message, value):
        response = build_binary_response(
            BinaryOpcodes.GET, value=int(value).to_bytes(8, "big"),
            opaque=message.opaque, extras=b"\x00" * 4)
        eth = EthernetWrapper(dataplane.tdata)
        eth.swap_macs()
        ip.swap_ips()
        udp.swap_ports()
        udp.set_payload(build_udp_frame_header(request_id) + response)
        ip.total_length = ip.header_bytes + udp.length
        ip.update_checksum()
        udp.update_checksum(ip)
        NetFPGA.send_back(dataplane)

    def reset(self):
        self.lru = LRU(key_width=64, value_width=64, depth=self.lru.depth)
        self.cache_hits = self.cache_misses = self.populated = 0
