"""FSM intermediate representation produced by the scheduler.

One :class:`State` is one clock cycle's worth of work: register updates,
memory writes, and a transition.  Transitions reference *state objects*;
indices are assigned only when the FSM is sealed, so the builder can
patch branch targets freely.
"""

from repro.errors import ScheduleError


class Transition:
    """Base class for state transitions."""


class Goto(Transition):
    """Unconditional transfer."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target


class Branch(Transition):
    """Two-way conditional transfer on a 1-bit expression."""

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond, if_true, if_false):
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false


class State:
    """One clock cycle of the schedule.

    *pinned* states represent explicit ``pause()`` cycles (or the entry
    cycle) and are never elided, even when empty — a pause is a real
    clock cycle the programmer asked for.
    """

    def __init__(self, label="", pinned=False):
        self.label = label
        self.pinned = pinned
        self.updates = {}       # var name -> Expr (next value)
        self.writes = []        # (MemSpec-name, addr Expr, data Expr, enable)
        self.transition = None
        self.index = None

    def __repr__(self):
        return "State(%s%s)" % (
            self.label, "" if self.index is None else "#%d" % self.index)


class Fsm:
    """A finite-state machine: the scheduler's output."""

    def __init__(self):
        self.states = []
        self.idle = self.new_state("idle")

    def new_state(self, label="", pinned=False):
        state = State(label, pinned=pinned)
        self.states.append(state)
        return state

    def seal(self):
        """Elide empty pass-through states and assign indices."""
        forward = {}

        def resolve(state):
            seen = set()
            while state in forward:
                if state in seen:
                    break               # cycle of empty states: keep one
                seen.add(state)
                state = forward[state]
            return state

        for state in self.states:
            if (state is not self.idle and not state.pinned
                    and not state.updates and not state.writes
                    and isinstance(state.transition, Goto)
                    and state.transition.target is not state):
                forward[state] = state.transition.target

        kept = []
        for state in self.states:
            if state in forward and resolve(state) is not state:
                continue
            kept.append(state)
        self.states = kept

        for state in self.states:
            transition = state.transition
            if transition is None:
                raise ScheduleError(
                    "state %r has no transition" % state.label)
            if isinstance(transition, Goto):
                transition.target = resolve(transition.target)
            else:
                transition.if_true = resolve(transition.if_true)
                transition.if_false = resolve(transition.if_false)

        for index, state in enumerate(self.states):
            state.index = index
        if self.idle.index != 0:
            raise ScheduleError("idle state must be state 0")
        return self

    @property
    def state_count(self):
        return len(self.states)

    def dump(self):
        """Pretty-print the machine, one block per state.

        This is the debugging view for pass pipelines: updates, memory
        writes, and the transition of every state, with pinned (pause /
        entry) states marked.
        """

        def ref(state):
            if state.index is not None:
                return "#%d" % state.index
            return state.label or "?"

        lines = []
        for state in self.states:
            head = "state %s" % ref(state)
            if state.label:
                head += " [%s]" % state.label
            if state.pinned:
                head += " (pinned)"
            lines.append(head)
            for name in sorted(state.updates):
                lines.append("  %s <= %r" % (name, state.updates[name]))
            for mem, addr, data, enable in state.writes:
                lines.append("  %s[%r] <= %r when %r"
                             % (mem, addr, data, enable))
            transition = state.transition
            if isinstance(transition, Goto):
                lines.append("  -> %s" % ref(transition.target))
            elif isinstance(transition, Branch):
                lines.append("  -> %s if %r else %s"
                             % (ref(transition.if_true), transition.cond,
                                ref(transition.if_false)))
            else:
                lines.append("  -> (unset)")
        return "\n".join(lines)

    def successors(self, state):
        transition = state.transition
        if isinstance(transition, Goto):
            return [transition.target]
        return [transition.if_true, transition.if_false]
