"""Public compiler API (workflow step B1 of Fig. 1).

``compile_function`` runs the full pipeline — parse, schedule,
optimize, emit — and returns a :class:`CompiledDesign` bundling the
netlist, the FSM, the timing report, and helpers to simulate the design
and to emit Verilog.

The *optimize* step is the middle-end of :mod:`repro.kiwi.opt`,
selected by ``opt_level``:

* ``0`` — no passes; byte-identical to a compiler without a middle-end,
* ``1`` (default) — resource passes only (folding, CSE, dead-register
  and unreachable-state elimination); cycle counts are untouched,
* ``2`` — adds state fusion/retiming under the timing-level budget,
  which reduces cycles-per-request,
* ``3`` — adds initiation-interval pipelining analysis
  (:mod:`repro.kiwi.opt.pipeline`): per-request latency cycles stay
  at the ``-O2`` figure, but the machine may overlap independent
  requests every ``achieved_ii`` cycles, which the cycle models use
  as the sustained service interval.

``verify=True`` additionally runs differential co-simulation of the
optimized design against ``-O0`` on seeded random inputs and raises if
they ever diverge (a debug mode; the test suite runs the same check as
a property test).
"""

from repro.errors import CompileError
from repro.kiwi.builder import FsmBuilder
from repro.kiwi.codegen import generate
from repro.kiwi.frontend import parse_function
from repro.kiwi.opt import optimize
from repro.rtl.expr import expr_depth as _expr_depth
from repro.rtl.resources import estimate_resources
from repro.rtl.simulator import Simulator
from repro.rtl.verilog import emit_verilog

DEFAULT_OPT_LEVEL = 1
DEFAULT_LEVEL_BUDGET = 48


class TimingReport:
    """Schedule statistics (paper §3.4: too much work per cycle and the
    design fails timing; too little and it is inefficient).

    At ``-O3`` the report also carries the latency-vs-throughput split
    of the pipelining analysis: :attr:`latency_cycles` (critical-path
    states per request) is what one request experiences, while
    :attr:`throughput_cycles` (== :attr:`achieved_ii` when the kernel
    pipelines) is the steady-state interval between request issues.
    """

    def __init__(self, state_count, max_logic_levels, levels_per_state,
                 pipeline=None):
        self.state_count = state_count
        self.max_logic_levels = max_logic_levels
        self.levels_per_state = levels_per_state
        #: The -O3 :class:`~repro.kiwi.opt.pipeline.PipelineSchedule`
        #: (None below -O3).
        self.pipeline = pipeline

    @property
    def achieved_ii(self):
        """Steady-state initiation interval in cycles, or None when
        the machine is not pipelined (below -O3, or the analysis
        refused — loops, stale-register observables, budget)."""
        if self.pipeline is not None and self.pipeline.feasible:
            return self.pipeline.initiation_interval
        return None

    @property
    def latency_cycles(self):
        """Critical-path core states per request (None without the
        -O3 analysis, whose DAG walk computes it)."""
        if self.pipeline is not None:
            return self.pipeline.latency_cycles
        return None

    @property
    def throughput_cycles(self):
        """Sustained cycles between request completions: the II when
        pipelined, the full critical path when not."""
        ii = self.achieved_ii
        return ii if ii is not None else self.latency_cycles

    def stage_occupancy(self):
        """Pipelined states per issue-slot residue (empty when not
        pipelined); see ``PipelineSchedule.stage_occupancy``."""
        if self.pipeline is None:
            return {}
        return self.pipeline.stage_occupancy()

    def meets_timing(self, max_levels=48):
        """Would this schedule close timing at the target clock?

        48 logic levels is a generous budget for 200 MHz on a Virtex-7;
        the ablation benchmark sweeps pause density against this.
        """
        return self.max_logic_levels <= max_levels

    def __repr__(self):
        text = "TimingReport(states=%d, max_levels=%d" % (
            self.state_count, self.max_logic_levels)
        if self.achieved_ii is not None:
            text += ", ii=%d/latency=%d" % (self.achieved_ii,
                                            self.latency_cycles)
        return text + ")"


def compute_timing(fsm):
    """Schedule statistics of an FSM (run after optimization so the
    report describes the machine actually emitted)."""
    max_levels = 0
    per_state = {}
    for state in fsm.states:
        levels = 0
        memo = {}
        for expr in state.updates.values():
            levels = max(levels, _expr_depth(expr, memo))
        transition = state.transition
        if hasattr(transition, "cond"):
            levels = max(levels, _expr_depth(transition.cond, memo))
        for _, addr, data, enable in state.writes:
            levels = max(levels, _expr_depth(addr, memo),
                         _expr_depth(data, memo),
                         _expr_depth(enable, memo))
        per_state[state.index] = levels
        max_levels = max(max_levels, levels)
    return TimingReport(fsm.state_count, max_levels, per_state,
                        pipeline=getattr(fsm, "pipeline_schedule", None))


class CompiledDesign:
    """The output of the Kiwi compiler for one kernel."""

    def __init__(self, spec, fsm, module, timing, opt_level=0,
                 pass_stats=None):
        self.spec = spec
        self.fsm = fsm
        self.module = module
        self.timing = timing
        self.opt_level = opt_level
        self.pass_stats = list(pass_stats or [])
        #: Differential-verification report, set when compiled with
        #: ``verify=True`` (stays None at -O0: nothing to compare).
        self.verification = None

    @property
    def name(self):
        return self.spec.name

    @property
    def state_count(self):
        return self.fsm.state_count

    def dump(self):
        """Human-readable view of the optimized machine (debugging a
        pass pipeline reads much better than a netlist diff)."""
        lines = ["design %s: -O%d, %d states, max %d logic levels"
                 % (self.name, self.opt_level, self.state_count,
                    self.timing.max_logic_levels)]
        for stats in self.pass_stats:
            if stats.changed():
                lines.append("  %r" % stats)
        lines.append(self.fsm.dump())
        return "\n".join(lines)

    def resources(self):
        """Resource estimate of the generated netlist."""
        return estimate_resources(self.module)

    def verilog(self):
        """Emit the design as Verilog text.

        Optimized designs emit CSE'd subexpressions as shared wires
        (text linear in the netlist); ``-O0`` keeps the historical
        fully-inlined emission, byte-identical to the seed compiler.
        """
        return emit_verilog(self.module, share_wires=self.opt_level > 0)

    def simulator(self):
        """A fresh cycle simulator over the generated netlist."""
        return Simulator(self.module)

    def run(self, max_cycles=100000, memories=None, **scalars):
        """Execute one invocation on the netlist simulator.

        Returns ``(results, latency_cycles, sim)``: the tuple of result
        values, the number of cycles ``busy`` was high, and the simulator
        (so callers can inspect memory side effects).
        """
        sim = self.simulator()
        return self.run_on(sim, max_cycles=max_cycles, memories=memories,
                           **scalars)

    def run_on(self, sim, max_cycles=100000, memories=None, **scalars):
        """Execute one invocation on an existing simulator (warm state)."""
        if memories:
            for mem_name, contents in memories.items():
                for addr, value in enumerate(contents):
                    sim.poke_memory(mem_name, addr, value)
        for name, value in scalars.items():
            sim.poke(name, value)
        sim.poke("start", 1)
        sim.step()              # idle: latch parameters, enter entry state
        sim.poke("start", 0)
        latency = 1
        while sim.peek("busy"):
            if latency >= max_cycles:
                raise CompileError(
                    "design %r did not finish in %d cycles"
                    % (self.name, max_cycles))
            sim.step()
            latency += 1
        results = tuple(
            sim.peek("result%d" % index)
            for index in range(len(self.spec.results)))
        return results, latency, sim


def compile_function(fn, name=None, opt_level=DEFAULT_OPT_LEVEL,
                     verify=False, level_budget=DEFAULT_LEVEL_BUDGET,
                     verify_inputs=None):
    """Compile a kernel function into a :class:`CompiledDesign`.

    *opt_level* selects the middle-end pipeline (see the module
    docstring); *level_budget* is the timing budget (logic levels per
    cycle) that bounds -O2 state fusion; *verify* enables the
    differential-co-simulation debug mode.  *verify_inputs* (rng →
    (scalars, memories)) supplies crafted request inputs for the
    verification runs — recommended for protocol kernels, whose deep
    paths random noise rarely reaches.
    """
    spec = parse_function(fn)
    builder = FsmBuilder(spec)
    fsm = builder.build()
    pass_stats = optimize(fsm, builder.var_widths, spec, opt_level,
                          level_budget=level_budget)
    module = generate(spec, fsm, builder.var_widths, name=name)
    timing = compute_timing(fsm)
    design = CompiledDesign(spec, fsm, module, timing,
                            opt_level=opt_level, pass_stats=pass_stats)
    if verify and opt_level > 0:
        from repro.kiwi.opt.verify import assert_equivalent
        design.verification = assert_equivalent(
            fn, opt_level=opt_level, optimized=design,
            input_factory=verify_inputs)
    return design


def compile_threads(functions, name="parallel",
                    opt_level=DEFAULT_OPT_LEVEL):
    """Compile several kernels as parallel circuits (§3.4 hardware
    semantics: "parallel threads may be wired into parallel logical
    sub-circuits").

    Returns a list of :class:`CompiledDesign` plus an aggregate resource
    report; the multi-threaded resource ablation uses this.
    """
    designs = [compile_function(fn, opt_level=opt_level)
               for fn in functions]
    total = None
    for design in designs:
        report = design.resources()
        if total is None:
            total = report
            total.name = name
        else:
            total.merge(report)
    return designs, total
