"""Public compiler API (workflow step B1 of Fig. 1).

``compile_function`` runs the full pipeline — parse, schedule, emit —
and returns a :class:`CompiledDesign` bundling the netlist, the FSM, the
timing report, and helpers to simulate the design and to emit Verilog.
"""

from repro.errors import CompileError
from repro.kiwi.builder import FsmBuilder
from repro.kiwi.codegen import generate
from repro.kiwi.frontend import parse_function
from repro.rtl.expr import BinOp, Mux, UnOp
from repro.rtl.resources import estimate_resources
from repro.rtl.simulator import Simulator
from repro.rtl.verilog import emit_verilog


def _expr_depth(expr, memo=None):
    """Logic levels of an expression DAG (timing proxy)."""
    if isinstance(expr, str):
        return 0
    if memo is None:
        memo = {}
    cached = memo.get(id(expr))
    if cached is not None:
        return cached
    cost = 1 if isinstance(expr, (BinOp, Mux, UnOp)) else 0
    children = expr.children() if hasattr(expr, "children") else ()
    depth = cost + max((_expr_depth(c, memo) for c in children), default=0)
    memo[id(expr)] = depth
    return depth


class TimingReport:
    """Schedule statistics (paper §3.4: too much work per cycle and the
    design fails timing; too little and it is inefficient)."""

    def __init__(self, state_count, max_logic_levels, levels_per_state):
        self.state_count = state_count
        self.max_logic_levels = max_logic_levels
        self.levels_per_state = levels_per_state

    def meets_timing(self, max_levels=48):
        """Would this schedule close timing at the target clock?

        48 logic levels is a generous budget for 200 MHz on a Virtex-7;
        the ablation benchmark sweeps pause density against this.
        """
        return self.max_logic_levels <= max_levels

    def __repr__(self):
        return "TimingReport(states=%d, max_levels=%d)" % (
            self.state_count, self.max_logic_levels)


class CompiledDesign:
    """The output of the Kiwi compiler for one kernel."""

    def __init__(self, spec, fsm, module, timing):
        self.spec = spec
        self.fsm = fsm
        self.module = module
        self.timing = timing

    @property
    def name(self):
        return self.spec.name

    @property
    def state_count(self):
        return self.fsm.state_count

    def resources(self):
        """Resource estimate of the generated netlist."""
        return estimate_resources(self.module)

    def verilog(self):
        """Emit the design as Verilog text."""
        return emit_verilog(self.module)

    def simulator(self):
        """A fresh cycle simulator over the generated netlist."""
        return Simulator(self.module)

    def run(self, max_cycles=100000, memories=None, **scalars):
        """Execute one invocation on the netlist simulator.

        Returns ``(results, latency_cycles, sim)``: the tuple of result
        values, the number of cycles ``busy`` was high, and the simulator
        (so callers can inspect memory side effects).
        """
        sim = self.simulator()
        return self.run_on(sim, max_cycles=max_cycles, memories=memories,
                           **scalars)

    def run_on(self, sim, max_cycles=100000, memories=None, **scalars):
        """Execute one invocation on an existing simulator (warm state)."""
        if memories:
            for mem_name, contents in memories.items():
                for addr, value in enumerate(contents):
                    sim.poke_memory(mem_name, addr, value)
        for name, value in scalars.items():
            sim.poke(name, value)
        sim.poke("start", 1)
        sim.step()              # idle: latch parameters, enter entry state
        sim.poke("start", 0)
        latency = 1
        while sim.peek("busy"):
            if latency >= max_cycles:
                raise CompileError(
                    "design %r did not finish in %d cycles"
                    % (self.name, max_cycles))
            sim.step()
            latency += 1
        results = tuple(
            sim.peek("result%d" % index)
            for index in range(len(self.spec.results)))
        return results, latency, sim


def compile_function(fn, name=None):
    """Compile a kernel function into a :class:`CompiledDesign`."""
    spec = parse_function(fn)
    builder = FsmBuilder(spec)
    fsm = builder.build()
    module = generate(spec, fsm, builder.var_widths, name=name)

    max_levels = 0
    per_state = {}
    for state in fsm.states:
        levels = 0
        for expr in state.updates.values():
            levels = max(levels, _expr_depth(expr))
        transition = state.transition
        if hasattr(transition, "cond"):
            levels = max(levels, _expr_depth(transition.cond))
        for _, addr, data, enable in state.writes:
            levels = max(levels, _expr_depth(addr), _expr_depth(data),
                         _expr_depth(enable))
        per_state[state.index] = levels
        max_levels = max(max_levels, levels)
    timing = TimingReport(fsm.state_count, max_levels, per_state)
    return CompiledDesign(spec, fsm, module, timing)


def compile_threads(functions, name="parallel"):
    """Compile several kernels as parallel circuits (§3.4 hardware
    semantics: "parallel threads may be wired into parallel logical
    sub-circuits").

    Returns a list of :class:`CompiledDesign` plus an aggregate resource
    report; the multi-threaded resource ablation uses this.
    """
    designs = [compile_function(fn) for fn in functions]
    total = None
    for design in designs:
        report = design.resources()
        if total is None:
            total = report
            total.name = name
        else:
            total.merge(report)
    return designs, total
