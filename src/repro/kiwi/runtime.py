"""Kiwi runtime: pause barriers and dual-semantics threads (§3.4).

Kiwi "reinterprets concurrency primitives": the same program runs with

* **software semantics** — threads are ordinary .NET threads and
  ``Kiwi.Pause()`` is a cooperative no-op; here, generators drained to
  completion (:func:`run_software`);
* **hardware semantics** — parallel threads become parallel circuits
  clocked together; here, each thread is a generator stepped one
  pause-segment per clock by :class:`KiwiScheduler`.

Emu services are written as generator functions that ``yield pause()``
wherever the C# original called ``Kiwi.Pause()``.
"""

from repro.errors import TargetError


class Pause:
    """The scheduling barrier (``Kiwi.Pause()``): ends the clock cycle."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "Pause()"


def pause():
    """Return the pause marker; services ``yield pause()``."""
    return Pause()


def run_software(gen):
    """Software semantics: run a pause-annotated generator to completion.

    Returns the generator's return value (``StopIteration.value``).
    """
    if gen is None:
        return None
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


class HardwareThread:
    """One logical circuit: a generator stepped one segment per cycle."""

    def __init__(self, gen, name="thread"):
        self.gen = gen
        self.name = name
        self.done = False
        self.result = None
        self.cycles = 0

    def clock(self):
        """Advance one clock cycle (one pause-to-pause segment)."""
        if self.done:
            return False
        self.cycles += 1
        try:
            next(self.gen)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
        return True


class KiwiScheduler:
    """Clock a set of hardware threads in lock-step (parallel circuits).

    All threads see the same clock; one call to :meth:`clock` advances
    every live thread by one cycle, exactly like parallel always-blocks.
    ``tick_hooks`` lets IP-block models (hash cores, CAM handshakes)
    share the clock.
    """

    def __init__(self):
        self.threads = []
        self.tick_hooks = []
        self.cycle = 0

    def spawn(self, gen, name=None):
        thread = HardwareThread(gen, name or "thread%d" % len(self.threads))
        self.threads.append(thread)
        return thread

    def add_tick_hook(self, hook):
        """Register a callable invoked once per clock (IP block models)."""
        if not callable(hook):
            raise TargetError("tick hook must be callable")
        self.tick_hooks.append(hook)

    @property
    def idle(self):
        return all(t.done for t in self.threads)

    def clock(self, cycles=1):
        """Advance the shared clock."""
        for _ in range(cycles):
            self.cycle += 1
            for thread in self.threads:
                thread.clock()
            for hook in self.tick_hooks:
                hook()

    def run_to_completion(self, max_cycles=1000000):
        """Clock until every thread finishes; returns cycles consumed."""
        start = self.cycle
        while not self.idle:
            if self.cycle - start >= max_cycles:
                raise TargetError(
                    "threads did not finish within %d cycles" % max_cycles)
            self.clock()
        return self.cycle - start
