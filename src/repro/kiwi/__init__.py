"""The Kiwi HLS compiler and runtime (paper §3.1–§3.2), rebuilt.

Kiwi turns .NET CIL into Verilog; our Kiwi turns a restricted Python
subset ("Emu-Python") into the netlist IR of :mod:`repro.rtl`.  The Emu
extensions the paper lists (§3.2) map as follows:

(i)   IP-block instantiation — compiled designs and hand netlists share
      :class:`repro.rtl.Module`, so IP blocks are instantiated directly.
(ii)  hard/soft timing — ``kiwi.pause()`` is a hard clock-cycle barrier;
      code between pauses is scheduled combinationally into one cycle.
(iii) byte-array ↔ struct casting — protocol wrappers over byte memories
      (:mod:`repro.core.protocols`) give fields names and types.
(iv)  >64-bit words — :mod:`repro.utils.words`.

Public surface:

* :func:`~repro.kiwi.runtime.pause` and the thread runtimes with
  *software* and *hardware* semantics (§3.4 "Multi-threading").
* :func:`~repro.kiwi.compiler.compile_function` — Emu-Python → FSM →
  netlist, with timing and resource reports.
"""

from repro.kiwi.runtime import (
    Pause, pause, run_software, HardwareThread, KiwiScheduler,
)
from repro.kiwi.compiler import (
    CompiledDesign, compile_function, compile_threads,
)
from repro.kiwi.opt import PassStats, differential_check, optimize

__all__ = [
    "Pause", "pause", "run_software", "HardwareThread", "KiwiScheduler",
    "CompiledDesign", "compile_function", "compile_threads",
    "PassStats", "differential_check", "optimize",
]
