"""The scheduler: walks the kernel AST and builds the FSM.

Scheduling policy (paper §3.4): all computation between two
``pause()`` barriers is chained combinationally into a single cycle;
control flow that cannot be if-converted (loops, pauses inside branches,
returns) introduces states.  This is Kiwi's model — ``Kiwi.Pause()``
"breaks up computation and allows Kiwi to schedule a suitable amount of
computation in a single clock cycle".
"""

import ast

from repro.errors import CompileError, ScheduleError
from repro.kiwi.frontend import (
    DEFAULT_WIDTH, MemSpec, ScalarSpec, body_contains_barrier,
)
from repro.kiwi.fsm import Branch, Fsm, Goto


from repro.rtl.expr import BinOp, Concat, Const, Expr, MemRead, Mux, Slice, \
    UnOp

_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.BitAnd: "&",
    ast.BitOr: "|", ast.BitXor: "^", ast.LShift: "<<", ast.RShift: ">>",
    ast.FloorDiv: "/", ast.Mod: "%",
}

_COMPARES = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}


def zext(expr, width):
    """Zero-extend or truncate *expr* to *width*."""
    if expr.width == width:
        return expr
    if expr.width > width:
        return Slice(expr, width - 1, 0)
    if isinstance(expr, Const):
        return Const(expr.value, width)
    return Concat([Const(0, width - expr.width), expr])


def match_widths(lhs, rhs):
    """Make two expressions the same width (constants first, then zext)."""
    if isinstance(lhs, Const) and not isinstance(rhs, Const):
        return Const(lhs.value, rhs.width), rhs
    if isinstance(rhs, Const) and not isinstance(lhs, Const):
        return lhs, Const(rhs.value, lhs.width)
    width = max(lhs.width, rhs.width)
    return zext(lhs, width), zext(rhs, width)


def as_bool(expr):
    """Coerce an expression to 1 bit (non-zero test)."""
    if expr.width == 1:
        return expr
    return UnOp("|r", expr)


class LoopContext:
    """Targets for ``continue`` (header) and ``break`` (exit)."""

    __slots__ = ("header", "exit")

    def __init__(self, header, exit_state):
        self.header = header
        self.exit = exit_state


class FsmBuilder:
    """Builds an :class:`~repro.kiwi.fsm.Fsm` from a kernel body."""

    def __init__(self, spec):
        self.spec = spec
        self.fsm = Fsm()
        self.var_widths = {}        # name -> bit width (registers)
        self.memories = {}          # name -> MemSpec
        self.const_env = {}         # unrolled loop variables
        for name, param in spec.params:
            if isinstance(param, MemSpec):
                self.memories[name] = param
            else:
                self.var_widths[name] = param.width
        self.result_names = []
        for index, result in enumerate(spec.results):
            name = "__result%d" % index
            self.var_widths[name] = result.width
            self.result_names.append(name)
        self._loops = []
        self._current = None
        self._env = {}
        self._guard = None

    # -- public -----------------------------------------------------------

    def build(self):
        entry = self.fsm.new_state("entry", pinned=True)
        self._open(entry)
        terminated = self._walk_body(self.spec.body)
        if not terminated:
            self._close(Goto(self.fsm.idle))
        # Idle latches nothing here; parameter latching is added by
        # codegen (it needs the input signals).
        self.fsm.idle.transition = Branch("__start__", entry, self.fsm.idle)
        return self.fsm.seal()

    # -- state plumbing -----------------------------------------------------

    def _open(self, state):
        self._current = state
        self._env = {}
        self._guard = None

    def _close(self, transition):
        """Commit the env into the current state and set its transition."""
        state = self._current
        for name, expr in self._env.items():
            state.updates[name] = expr
        state.transition = transition
        self._current = None
        self._env = {}

    def _var_read(self, name, node=None):
        if name in self.const_env:
            return self.const_env[name]
        if name in self._env:
            return self._env[name]
        if name in self.var_widths:
            return VarRef(name, self.var_widths[name])
        raise CompileError("read of undefined variable %r" % name, node)

    def _var_width(self, name):
        if name not in self.var_widths:
            self.var_widths[name] = DEFAULT_WIDTH
        return self.var_widths[name]

    def _assign(self, name, expr, node=None):
        if name in self.const_env:
            raise CompileError(
                "cannot assign to unrolled loop variable %r" % name, node)
        width = self.var_widths.get(name)
        if width is None:
            # Un-annotated locals default to the C# word width (the
            # paper's largest primitive), like Kiwi's ulong locals.
            width = max(DEFAULT_WIDTH, expr.width)
            self.var_widths[name] = width
        expr = zext(expr, width)
        if self._guard is not None:
            expr = Mux(self._guard, expr, self._var_read(name))
        self._env[name] = expr

    # -- statement walking ---------------------------------------------------

    def _walk_body(self, stmts):
        """Walk statements; returns True if control definitely left."""
        for index, stmt in enumerate(stmts):
            if self._walk_stmt(stmt):
                return True
        return False

    def _walk_stmt(self, stmt):
        if isinstance(stmt, ast.Pass):
            return False
        if isinstance(stmt, ast.Expr):
            return self._walk_expr_stmt(stmt)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._walk_assign(stmt)
            return False
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt)
        if isinstance(stmt, ast.While):
            return self._walk_while(stmt)
        if isinstance(stmt, ast.For):
            return self._walk_for(stmt)
        if isinstance(stmt, ast.Return):
            self._walk_return(stmt)
            return True
        if isinstance(stmt, ast.Break):
            if not self._loops:
                raise CompileError("break outside loop", stmt)
            self._close(Goto(self._loops[-1].exit))
            return True
        if isinstance(stmt, ast.Continue):
            if not self._loops:
                raise CompileError("continue outside loop", stmt)
            self._close(Goto(self._loops[-1].header))
            return True
        raise CompileError(
            "unsupported statement %s" % type(stmt).__name__, stmt)

    def _walk_expr_stmt(self, stmt):
        value = stmt.value
        if isinstance(value, ast.Call) and \
                isinstance(value.func, ast.Name) and \
                value.func.id == "pause":
            if self._guard is not None:
                raise CompileError(
                    "pause() inside a combinational branch; restructure "
                    "so the branch is barrier-free or fully stateful",
                    stmt)
            nxt = self.fsm.new_state("pause", pinned=True)
            self._close(Goto(nxt))
            self._open(nxt)
            return False
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return False                  # docstring
        raise CompileError("unsupported expression statement", stmt)

    def _walk_assign(self, stmt):
        if isinstance(stmt, ast.AugAssign):
            target = stmt.target
            if not isinstance(target, ast.Name):
                raise CompileError("augmented assign needs a name", stmt)
            op = _BINOPS.get(type(stmt.op))
            if op is None:
                raise CompileError("unsupported augmented op", stmt)
            current = self._var_read(target.id, stmt)
            rhs = self._eval(stmt.value)
            lhs, rhs = match_widths(current, rhs)
            self._assign(target.id, BinOp(op, lhs, rhs), stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if not isinstance(stmt.target, ast.Name):
                raise CompileError("annotated assign needs a name", stmt)
            from repro.kiwi.frontend import parse_spec, _annotation_text
            spec = parse_spec(_annotation_text(stmt.annotation))
            if not isinstance(spec, ScalarSpec):
                raise CompileError("locals must be scalars", stmt)
            name = stmt.target.id
            if name in self.var_widths and \
                    self.var_widths[name] != spec.width:
                raise CompileError(
                    "conflicting width for %r" % name, stmt)
            self.var_widths[name] = spec.width
            if stmt.value is not None:
                self._assign(name, self._eval(stmt.value), stmt)
            return
        if len(stmt.targets) != 1:
            raise CompileError("chained assignment unsupported", stmt)
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            self._assign(target.id, self._eval(stmt.value), stmt)
            return
        if isinstance(target, ast.Subscript):
            self._walk_mem_write(target, stmt.value, stmt)
            return
        raise CompileError("unsupported assignment target", stmt)

    def _walk_mem_write(self, target, value_node, stmt):
        if not isinstance(target.value, ast.Name) or \
                target.value.id not in self.memories:
            raise CompileError("subscript target must be a memory", stmt)
        mem_name = target.value.id
        mem = self.memories[mem_name]
        addr = zext(self._eval(_subscript_index(target)), mem.addr_bits)
        data = zext(self._eval(value_node), mem.width)
        enable = self._guard if self._guard is not None else Const(1, 1)
        self._current.writes.append((mem_name, addr, data, enable))

    def _walk_if(self, stmt):
        cond = as_bool(self._eval(stmt.test))
        if not body_contains_barrier(stmt.body) and \
                not body_contains_barrier(stmt.orelse):
            self._walk_comb_if(cond, stmt)
            return False
        return self._walk_stateful_if(cond, stmt)

    def _walk_comb_if(self, cond, stmt):
        """If-conversion: both arms merge through muxes, same cycle."""
        saved_env = dict(self._env)
        saved_guard = self._guard

        self._guard = cond if saved_guard is None else \
            BinOp("&", saved_guard, cond)
        self._walk_body(stmt.body)
        then_env = self._env

        self._env = dict(saved_env)
        not_cond = UnOp("!", cond)
        self._guard = not_cond if saved_guard is None else \
            BinOp("&", saved_guard, not_cond)
        self._walk_body(stmt.orelse)
        else_env = self._env

        merged = dict(saved_env)
        for name in set(then_env) | set(else_env):
            then_val = then_env.get(name)
            else_val = else_env.get(name)
            if then_val is None:
                then_val = saved_env.get(name)
            if else_val is None:
                else_val = saved_env.get(name)
            if then_val is None:
                then_val = self._var_read_safe(name, stmt)
            if else_val is None:
                else_val = self._var_read_safe(name, stmt)
            if then_val is else_val:
                merged[name] = then_val
            else:
                then_val, else_val = match_widths(then_val, else_val)
                merged[name] = Mux(cond, then_val, else_val)
        self._env = merged
        self._guard = saved_guard

    def _var_read_safe(self, name, node):
        """Variable's pre-branch value; may be first defined in a branch."""
        if name in self.var_widths:
            return VarRef(name, self.var_widths[name])
        raise CompileError(
            "variable %r only defined on one branch; give it a value "
            "before the if" % name, node)

    def _walk_stateful_if(self, cond, stmt):
        then_entry = self.fsm.new_state("then")
        else_entry = self.fsm.new_state("else") if stmt.orelse else None
        join = self.fsm.new_state("join")
        self._close(Branch(cond, then_entry,
                           else_entry if else_entry is not None else join))

        self._open(then_entry)
        if not self._walk_body(stmt.body):
            self._close(Goto(join))

        if else_entry is not None:
            self._open(else_entry)
            if not self._walk_body(stmt.orelse):
                self._close(Goto(join))

        self._open(join)
        return False

    def _walk_while(self, stmt):
        if stmt.orelse:
            raise CompileError("while/else unsupported", stmt)
        if not body_contains_barrier(stmt.body) and \
                not _is_const_true(stmt.test):
            raise ScheduleError(
                "pause-free while loop cannot be scheduled; add pause() "
                "or use a bounded for-range loop", stmt)
        header = self.fsm.new_state("while")
        exit_state = self.fsm.new_state("endwhile")
        self._close(Goto(header))

        self._open(header)
        cond = as_bool(self._eval(stmt.test))
        body_entry = self.fsm.new_state("loopbody")
        self._close(Branch(cond, body_entry, exit_state))

        self._loops.append(LoopContext(header, exit_state))
        self._open(body_entry)
        if not self._walk_body(stmt.body):
            self._close(Goto(header))
        self._loops.pop()

        self._open(exit_state)
        return False

    def _walk_for(self, stmt):
        """Static unroll of ``for i in range(...)`` (hardware idiom)."""
        if stmt.orelse:
            raise CompileError("for/else unsupported", stmt)
        if not isinstance(stmt.target, ast.Name):
            raise CompileError("for target must be a name", stmt)
        call = stmt.iter
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "range"):
            raise CompileError("for loops must iterate over range()", stmt)
        bounds = []
        for arg in call.args:
            if not (isinstance(arg, ast.Constant)
                    and isinstance(arg.value, int)):
                raise CompileError(
                    "range() bounds must be integer literals "
                    "(loops are statically unrolled)", stmt)
            bounds.append(arg.value)
        iterations = range(*bounds)
        if len(iterations) > 4096:
            raise ScheduleError("unrolling %d iterations is unreasonable"
                                % len(iterations), stmt)
        name = stmt.target.id
        saved = self.const_env.get(name)
        for value in iterations:
            self.const_env[name] = Const(value, DEFAULT_WIDTH)
            if self._walk_body(stmt.body):
                raise CompileError(
                    "return/break out of an unrolled for loop is "
                    "unsupported", stmt)
        if saved is None:
            self.const_env.pop(name, None)
        else:
            self.const_env[name] = saved
        return False

    def _walk_return(self, stmt):
        values = []
        if stmt.value is not None:
            if isinstance(stmt.value, ast.Tuple):
                values = [self._eval(e) for e in stmt.value.elts]
            else:
                values = [self._eval(stmt.value)]
        if len(values) != len(self.result_names):
            raise CompileError(
                "return arity %d does not match declared results (%d)"
                % (len(values), len(self.result_names)), stmt)
        if self._guard is not None:
            raise CompileError(
                "return inside a combinational branch; this should have "
                "been scheduled as a stateful if", stmt)
        for name, value in zip(self.result_names, values):
            self._assign(name, value, stmt)
        self._close(Goto(self.fsm.idle))

    # -- expression evaluation -----------------------------------------------

    def _eval(self, node):
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Const(int(node.value), 1)
            if isinstance(node.value, int):
                width = max(1, node.value.bit_length()) \
                    if node.value >= 0 else DEFAULT_WIDTH
                return Const(node.value, max(width, 1))
            raise CompileError("unsupported constant %r" % (node.value,),
                               node)
        if isinstance(node, ast.Name):
            return self._var_read(node.id, node)
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise CompileError("unsupported operator", node)
            lhs = self._eval(node.left)
            rhs = self._eval(node.right)
            if op in ("<<", ">>"):
                if isinstance(rhs, Const):
                    rhs = Const(rhs.value, max(1, rhs.width))
                if op == "<<":
                    # C# semantics: operands promote to the word width
                    # before shifting, so shifted-out bits are not lost.
                    lhs = zext(lhs, max(lhs.width, DEFAULT_WIDTH))
                return BinOp(op, lhs, rhs)
            lhs, rhs = match_widths(lhs, rhs)
            return BinOp(op, lhs, rhs)
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise CompileError("chained comparison unsupported", node)
            op = _COMPARES.get(type(node.ops[0]))
            if op is None:
                raise CompileError("unsupported comparison", node)
            lhs = self._eval(node.left)
            rhs = self._eval(node.comparators[0])
            lhs, rhs = match_widths(lhs, rhs)
            return BinOp(op, lhs, rhs, result_width=1)
        if isinstance(node, ast.BoolOp):
            op = "&" if isinstance(node.op, ast.And) else "|"
            result = as_bool(self._eval(node.values[0]))
            for value in node.values[1:]:
                result = BinOp(op, result, as_bool(self._eval(value)))
            return result
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return UnOp("!", as_bool(self._eval(node.operand)))
            if isinstance(node.op, ast.Invert):
                return UnOp("~", self._eval(node.operand))
            if isinstance(node.op, ast.USub):
                operand = self._eval(node.operand)
                return BinOp("-", Const(0, operand.width), operand)
            raise CompileError("unsupported unary operator", node)
        if isinstance(node, ast.IfExp):
            cond = as_bool(self._eval(node.test))
            then_val, else_val = match_widths(
                self._eval(node.body), self._eval(node.orelse))
            return Mux(cond, then_val, else_val)
        if isinstance(node, ast.Subscript):
            if not isinstance(node.value, ast.Name) or \
                    node.value.id not in self.memories:
                raise CompileError("subscript base must be a memory", node)
            mem_name = node.value.id
            mem = self.memories[mem_name]
            addr = zext(self._eval(_subscript_index(node)), mem.addr_bits)
            result = MemReadRef(mem_name, addr, mem.width)
            # Store-forwarding: a read must observe writes issued earlier
            # in the same cycle (Python sequential semantics), even
            # though the memory itself commits at the clock edge.
            for wmem, waddr, wdata, wenable in self._current.writes:
                if wmem != mem_name:
                    continue
                hit = BinOp("&", as_bool(wenable),
                            BinOp("==", addr, waddr, result_width=1))
                result = Mux(hit, wdata, result)
            return result
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        raise CompileError(
            "unsupported expression %s" % type(node).__name__, node)

    def _eval_call(self, node):
        if not isinstance(node.func, ast.Name):
            raise CompileError("only direct calls supported", node)
        name = node.func.id
        if name == "bits":
            if len(node.args) != 2 or not (
                    isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, int)):
                raise CompileError("bits(expr, width) needs a literal "
                                   "width", node)
            return zext(self._eval(node.args[0]), node.args[1].value)
        raise CompileError("unknown function %r (kernels are flat; only "
                           "pause() and bits() are intrinsic)" % name, node)


class VarRef(Expr):
    """A read of a variable's register (resolved to a Signal in codegen)."""

    __slots__ = ("name", "width")

    def __init__(self, name, width):
        self.name = name
        self.width = width

    def children(self):
        return ()

    def _key(self):
        return ("var", self.name, self.width)

    def __repr__(self):
        return "var:%s<%d>" % (self.name, self.width)


class MemReadRef(Expr):
    """A read of a memory (resolved to a MemRead in codegen)."""

    __slots__ = ("mem_name", "addr", "width")

    def __init__(self, mem_name, addr, width):
        self.mem_name = mem_name
        self.addr = addr
        self.width = width

    def children(self):
        return (self.addr,)

    def _key(self):
        return ("memref", self.mem_name, self.width, self.addr.key())

    def _clone_with(self, children):
        return MemReadRef(self.mem_name, children[0], self.width)

    def __repr__(self):
        return "mem:%s[%r]" % (self.mem_name, self.addr)


def _subscript_index(node):
    index = node.slice
    if isinstance(index, ast.Index):       # pragma: no cover (py<3.9)
        index = index.value
    if isinstance(index, ast.Slice):
        raise CompileError("memory slices unsupported; index one word",
                           node)
    return index


def _is_const_true(node):
    return isinstance(node, ast.Constant) and node.value is True
