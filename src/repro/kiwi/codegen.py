"""Code generation: FSM → netlist module.

The generated module follows one calling convention, shared by the
NetFPGA pipeline model and the tests:

* input ``start`` — pulse to begin; scalar parameters are latched then,
* one input signal per scalar parameter,
* one internal memory per memory parameter (loaded via simulator
  backdoor, standing in for the shared frame buffer),
* outputs ``busy``, ``state`` and one ``resultN`` per declared result.

Module latency = cycles from the start pulse until ``busy`` falls —
exactly the "module latency" column of Table 3.
"""

from repro.errors import CompileError
from repro.kiwi.builder import MemReadRef, VarRef
from repro.kiwi.fsm import Branch, Goto
from repro.rtl.expr import (
    BinOp, Concat, Const, MemRead, Mux, Slice, UnOp,
)
from repro.rtl.module import Module
from repro.rtl.signal import Signal


def generate(spec, fsm, var_widths, name=None):
    """Emit a netlist :class:`Module` implementing *fsm*."""
    m = Module(name or spec.name)
    start = m.input("start", 1)
    param_inputs = {}
    for pname, pspec in spec.scalar_params:
        param_inputs[pname] = m.input(pname, pspec.width)

    memories = {}
    for mname, mspec in spec.memory_params:
        memories[mname] = m.memory(mname, mspec.width, mspec.depth)

    state_bits = max(1, (fsm.state_count - 1).bit_length())
    state_reg = m.reg("fsm_state", state_bits)

    var_regs = {}
    for vname, width in var_widths.items():
        var_regs[vname] = m.reg("v_" + vname, width)

    rewrite_cache = {}

    def rewrite(expr):
        """Resolve VarRef/MemReadRef placeholders to netlist nodes.

        Memoised by node identity so shared sub-DAGs stay shared (the
        builder reuses expressions heavily; copying per reference would
        blow the netlist up exponentially).
        """
        if expr == "__start__":
            return start
        cached = rewrite_cache.get(id(expr))
        if cached is not None:
            return cached
        result = _rewrite_uncached(expr)
        rewrite_cache[id(expr)] = result
        return result

    def _rewrite_uncached(expr):
        if isinstance(expr, VarRef):
            return var_regs[expr.name]
        if isinstance(expr, MemReadRef):
            return MemRead(memories[expr.mem_name], rewrite(expr.addr))
        if isinstance(expr, (Const, Signal)):
            return expr
        if isinstance(expr, BinOp):
            node = BinOp.__new__(BinOp)
            node.op = expr.op
            node.lhs = rewrite(expr.lhs)
            node.rhs = rewrite(expr.rhs)
            node.width = expr.width
            return node
        if isinstance(expr, UnOp):
            return UnOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, Mux):
            return Mux(rewrite(expr.sel), rewrite(expr.if_true),
                       rewrite(expr.if_false))
        if isinstance(expr, Slice):
            return Slice(rewrite(expr.operand), expr.msb, expr.lsb)
        if isinstance(expr, Concat):
            return Concat([rewrite(p) for p in expr.parts])
        raise CompileError("cannot emit expression %r" % (expr,))

    def state_is(state):
        return state_reg.eq(Const(state.index, state_bits))

    # Register next-value networks.
    for vname, reg in var_regs.items():
        next_expr = reg
        for state in fsm.states:
            if vname in state.updates:
                next_expr = Mux(state_is(state),
                                rewrite(state.updates[vname]), next_expr)
        # Parameter latching in idle.
        if vname in param_inputs:
            next_expr = Mux(state_is(fsm.idle) & start,
                            param_inputs[vname], next_expr)
        m.sync(reg, next_expr)

    # State transition network.
    next_state = state_reg
    for state in fsm.states:
        transition = state.transition
        if isinstance(transition, Goto):
            target_expr = Const(transition.target.index, state_bits)
        elif isinstance(transition, Branch):
            target_expr = Mux(
                rewrite(transition.cond),
                Const(transition.if_true.index, state_bits),
                Const(transition.if_false.index, state_bits))
        else:
            raise CompileError("state %r lacks a transition" % state.label)
        next_state = Mux(state_is(state), target_expr, next_state)
    m.sync(state_reg, next_state)

    # Memory write ports.
    for state in fsm.states:
        for mem_name, addr, data, enable in state.writes:
            m.write_port(memories[mem_name], rewrite(addr), rewrite(data),
                         state_is(state) & rewrite(enable))

    # Outputs.
    busy = m.output("busy", 1)
    m.comb(busy, state_reg.ne(Const(0, state_bits)))
    state_out = m.output("state", state_bits)
    m.comb(state_out, state_reg)
    for index in range(len(spec.results)):
        reg = var_regs["__result%d" % index]
        out = m.output("result%d" % index, reg.width)
        m.comb(out, reg)
    return m
