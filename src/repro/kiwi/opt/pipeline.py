"""Initiation-interval pipelining analysis (the ``-O3`` middle-end).

State fusion (-O2) shortens one request's path through the FSM; this
pass overlaps *different* requests across that path.  A pipelined
kernel issues a new request every II cycles (the *initiation
interval*) while earlier requests are still in flight, so the
sustained service interval drops from the full request latency to II
— per-request latency is untouched.

The analysis is a schedule-feasibility proof, not a rewrite: the FSM
the engine and the Verilog backend see is unchanged, and the schedule
it emits (:class:`PipelineSchedule`) is what the cycle models and the
dynamic in-flight executor (:mod:`repro.engine.pipelined`) consume.
II is the maximum of two classic bounds over the cross-state
dependence graph:

* **recurrence bound** — a request's write to a shared (warm) memory
  must land before the *next* request's read of it (RAW), after the
  previous request's read (WAR), and writes must stay ordered (WAW).
  With writes possible as late as stage ``w_max`` and reads as early
  as stage ``r_min``, RAW alone forces ``II >= w_max - r_min + 1``.
* **resource bound** — one memory port per cycle: two in-flight
  requests may not touch the same memory in the same cycle, so the
  accessing states' cycle offsets must stay distinct modulo II.

Stage numbers come from longest/shortest entry paths over the state
DAG, so branchy kernels get a sound interval of possible offsets per
state.  Three structural gates make the schedule honest rather than
optimistic:

* data-dependent loops have no static stage numbers — no pipelining;
* a kernel whose observable outputs can depend on *stale* registers
  (values left by the previous request) serialises on the register
  file — the lockstep cleanliness analysis from the batched engine
  answers this exactly, and a dirty kernel is not pipelined;
* pipeline issue/hazard control costs logic depth
  (:data:`PIPELINE_CONTROL_LEVELS`); if the machine no longer fits
  the timing budget with that margin, pipelining is refused instead
  of silently mis-reporting timing.

Per-request stream buffers (the ``frame`` memory convention shared by
every service kernel and :class:`~repro.targets.kernel_model.
KernelCycleModel`) are freshly loaded for each request, so they are
excluded from both bounds — each in-flight request owns a private
copy.
"""

from repro.kiwi.builder import MemReadRef
from repro.kiwi.fsm import Branch
from repro.rtl.expr import expr_depth

#: Depth margin charged for the pipeline's issue counter and hazard
#: interlock muxes on every register/memory-port path.
PIPELINE_CONTROL_LEVELS = 2

#: Memories treated as per-request stream buffers when the kernel has
#: them (every service kernel calls its packet buffer ``frame``).
DEFAULT_STREAM_MEMORIES = ("frame",)


def _state_roots(state):
    """Every expression one state evaluates."""
    for name in sorted(state.updates):
        yield state.updates[name]
    for _, addr, data, enable in state.writes:
        yield addr
        yield data
        yield enable
    transition = state.transition
    if isinstance(transition, Branch):
        yield transition.cond


def _mems_read(state):
    names = set()
    seen = set()
    stack = list(_state_roots(state))
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, MemReadRef):
            names.add(node.mem_name)
        stack.extend(node.children())
    return names


class PipelineSchedule:
    """The result of the II analysis for one sealed FSM.

    ``feasible`` means requests genuinely overlap: the FSM is a DAG,
    observables are clean of stale registers, the control margin fits
    the timing budget, and the computed II is strictly less than the
    request latency.  When it is False, ``reason`` says which gate
    refused, and the cycle models fall back to sequential service.
    """

    def __init__(self, feasible, initiation_interval, latency_cycles,
                 recurrence_ii=1, resource_ii=1, stages=None,
                 memory_bounds=None, stream_memories=(), reason=None):
        self.feasible = feasible
        #: Steady-state issue interval in cycles (None when not
        #: pipelined — service interval is then the full latency).
        self.initiation_interval = initiation_interval
        #: States on the longest entry→idle path (per-request core
        #: cycles of the critical path; the measured latency of the
        #: engine adds its one latch cycle on top).
        self.latency_cycles = latency_cycles
        self.recurrence_ii = recurrence_ii
        self.resource_ii = resource_ii
        #: state index -> (earliest, latest) stage (entry = 0).
        self.stages = dict(stages or {})
        #: shared memory -> {"raw": n, "war": n, "waw": n} bounds.
        self.memory_bounds = dict(memory_bounds or {})
        self.stream_memories = tuple(stream_memories)
        self.reason = reason

    def stage_occupancy(self):
        """states resident per pipeline slot: ``residue -> count`` of
        states whose (latest) stage lands on that issue residue — the
        steady-state occupancy picture of the II-cycle loop."""
        if not self.feasible:
            return {}
        occupancy = {r: 0 for r in range(self.initiation_interval)}
        for _, (_, latest) in sorted(self.stages.items()):
            occupancy[latest % self.initiation_interval] += 1
        return occupancy

    def speedup(self):
        """Steady-state throughput multiplier over sequential issue."""
        if not self.feasible:
            return 1.0
        return self.latency_cycles / float(self.initiation_interval)

    def __repr__(self):
        if self.feasible:
            return ("PipelineSchedule(II=%d, latency=%d, rec=%d, res=%d)"
                    % (self.initiation_interval, self.latency_cycles,
                       self.recurrence_ii, self.resource_ii))
        return "PipelineSchedule(not pipelined: %s)" % (self.reason,)


def _stage_intervals(fsm):
    """(earliest, latest) stage per reachable state, or None on a loop.

    Stages are path lengths from the entry state over the FSM with the
    return-to-idle edges removed; a cycle among the remaining states is
    a data-dependent loop and has no static schedule.
    """
    entry = fsm.idle.transition.if_true
    if entry is fsm.idle:
        return entry, {}
    succs = {}
    stack, seen = [entry], {entry}
    while stack:
        state = stack.pop()
        succs[state] = [s for s in fsm.successors(state)
                        if s is not fsm.idle]
        for succ in succs[state]:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    indegree = {state: 0 for state in succs}
    for state in succs:
        for succ in succs[state]:
            indegree[succ] += 1
    order = [s for s in succs if indegree[s] == 0]
    for state in order:                       # Kahn: grows while walked
        for succ in succs[state]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                order.append(succ)
    if len(order) != len(succs):
        return entry, None                    # residual cycle: a loop
    earliest = {entry: 0}
    latest = {entry: 0}
    for state in order:                       # topological: preds first
        for succ in succs[state]:
            shortest = earliest[state] + 1
            longest = latest[state] + 1
            if shortest < earliest.get(succ, shortest + 1):
                earliest[succ] = shortest
            if longest > latest.get(succ, -1):
                latest[succ] = longest
    return entry, {state: (earliest[state], latest[state])
                   for state in order}


def _multiple_in_range(lo, hi, ii):
    """Is any positive multiple of *ii* inside [lo, hi]?"""
    if hi < ii:
        return False
    first = max(1, -(-lo // ii))              # ceil(lo / ii), min 1
    return first * ii <= hi


def _port_conflict(accessors, ii):
    """Can two in-flight requests hit one memory in the same cycle?

    Requests are issued II cycles apart, so states *a* (at offset in
    [e_a, l_a]) and *b* collide exactly when some non-zero multiple of
    II fits in the difference range of their offset intervals.
    """
    for i, (e_a, l_a) in enumerate(accessors):
        for e_b, l_b in accessors[i:]:
            if _multiple_in_range(e_a - l_b, l_a - e_b, ii) or \
                    _multiple_in_range(e_b - l_a, l_b - e_a, ii):
                return True
    return False


def analyze_pipeline(fsm, var_widths, spec, level_budget=48,
                     stream_memories=DEFAULT_STREAM_MEMORIES):
    """Compute the pipelining schedule of a sealed, optimized FSM."""
    entry, stages = _stage_intervals(fsm)
    if entry is fsm.idle:
        return PipelineSchedule(False, None, 0,
                                reason="empty kernel")
    if stages is None:
        return PipelineSchedule(False, None, None,
                                reason="data-dependent loop")
    latency = max(latest for _, latest in stages.values()) + 1

    # Gate 1: observables must not depend on registers left over from
    # the previous request — per-request register files would change
    # behaviour otherwise.  This is exactly the batched engine's
    # lockstep cleanliness question, so reuse its proven analysis
    # (imported lazily: the engine package imports kiwi at load time).
    from repro.engine.batch import _lockstep_safe
    written = set()
    for state in fsm.states:
        if state is not fsm.idle:
            written |= set(state.updates)
    latched = frozenset(name for name, _ in spec.scalar_params)
    never_written = frozenset(var_widths) - written - latched
    results = ["__result%d" % index
               for index in range(len(spec.results))]
    if not _lockstep_safe(fsm, latched, results, never_written):
        return PipelineSchedule(
            False, None, latency,
            reason="observables depend on cross-request register state")

    # Gate 2: the hazard/issue control logic must still close timing.
    max_levels = 0
    for state in fsm.states:
        if state is fsm.idle:
            continue
        memo = {}
        for root in _state_roots(state):
            max_levels = max(max_levels, expr_depth(root, memo))
    if max_levels + PIPELINE_CONTROL_LEVELS > level_budget:
        return PipelineSchedule(
            False, None, latency,
            reason="pipeline control exceeds the %d-level budget"
            % level_budget)

    mem_names = [name for name, _ in spec.memory_params]
    streams = tuple(name for name in stream_memories
                    if name in mem_names)
    shared = [name for name in mem_names if name not in streams]

    shared_set = set(shared)
    reads = {name: [] for name in shared}     # (earliest, latest)
    writes = {name: [] for name in shared}
    accessors = {name: [] for name in shared}
    for state, interval in stages.items():
        read_here = _mems_read(state) & shared_set
        written_here = {mem for mem, _, _, _ in state.writes
                        if mem in shared_set}
        for name in read_here:
            reads[name].append(interval)
        for name in written_here:
            writes[name].append(interval)
        for name in read_here | written_here:
            accessors[name].append(interval)

    memory_bounds = {}
    recurrence_ii = 1
    resource_ii = 1
    for name in shared:
        if not accessors[name]:
            continue
        bounds = {"raw": 1, "war": 1, "waw": 1}
        if writes[name]:
            w_min = min(e for e, _ in writes[name])
            w_max = max(l for _, l in writes[name])
            bounds["waw"] = max(1, w_max - w_min + 1)
            if reads[name]:
                r_min = min(e for e, _ in reads[name])
                r_max = max(l for _, l in reads[name])
                bounds["raw"] = max(1, w_max - r_min + 1)
                bounds["war"] = max(1, r_max - w_min + 1)
        memory_bounds[name] = bounds
        recurrence_ii = max(recurrence_ii, *bounds.values())
        resource_ii = max(resource_ii, len(accessors[name]))

    stage_map = {state.index: tuple(interval)
                 for state, interval in stages.items()}
    ii = max(recurrence_ii, resource_ii)
    while ii < latency and any(
            _port_conflict(accessors[name], ii) for name in shared):
        ii += 1
    if ii >= latency:
        return PipelineSchedule(
            False, None, latency, recurrence_ii=recurrence_ii,
            resource_ii=resource_ii, stages=stage_map,
            memory_bounds=memory_bounds, stream_memories=streams,
            reason="no feasible II below the %d-cycle latency" % latency)
    return PipelineSchedule(
        True, ii, latency, recurrence_ii=recurrence_ii,
        resource_ii=resource_ii, stages=stage_map,
        memory_bounds=memory_bounds, stream_memories=streams)
