"""Expression rewriting for the optimizing middle-end.

Two pieces live here:

* :func:`transform` — a generic bottom-up rewriter over the builder-level
  expression IR (``Const``/``BinOp``/``UnOp``/``Mux``/``Slice``/``Concat``
  plus the :class:`~repro.kiwi.builder.VarRef` and
  :class:`~repro.kiwi.builder.MemReadRef` placeholders).  It is memoised
  by node identity so shared sub-DAGs stay shared and are rewritten once.
* :func:`fold_node` — the local simplification rules: constant folding
  (mirroring the cycle simulator's arithmetic exactly, including width
  masking), algebraic identities, and strength reduction (multiply /
  divide / modulo by powers of two become shifts and masks).

Every rule preserves the width of the node it replaces; that invariant is
what lets folded expressions drop into an existing netlist unchanged.
"""

from repro.errors import CompileError
from repro.rtl.expr import (
    BinOp, Concat, Const, Mux, Slice, UnOp, clone_with_children,
    eval_binop, eval_unop,
)

_FULL_FOLD_OPS = {"+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%",
                  "==", "!=", "<", "<=", ">", ">="}


def _mask(width):
    return (1 << width) - 1


def transform(expr, fn, memo=None):
    """Rewrite *expr* bottom-up: children first, then ``fn`` on the
    rebuilt node.  ``fn`` returns a replacement (or the node itself);
    replacements must keep the node's width.  *memo* (id → result) makes
    shared DAGs rewrite once — pass one memo per rewriting context, never
    reuse it across different substitution environments.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(expr))
    if cached is not None:
        return cached
    children = expr.children()
    new_children = tuple(transform(c, fn, memo) for c in children)
    node = expr
    if any(a is not b for a, b in zip(children, new_children)):
        node = clone_with_children(expr, new_children)
    result = fn(node)
    if result.width != expr.width:
        raise CompileError(
            "rewrite changed width of %r: %d -> %d"
            % (expr, expr.width, result.width))
    memo[id(expr)] = result
    return result


# Constant evaluation is repro.rtl.expr.eval_binop/eval_unop — the
# same functions the cycle simulator executes, so a folded constant is
# the simulated value by construction.

def _is_const(expr, value=None):
    if not isinstance(expr, Const):
        return False
    return value is None or expr.value == value


def _same(a, b):
    """Structural equality (same function of the same leaves)."""
    return a.key() == b.key()


def _power_of_two(value):
    """log2(value) if value is a power of two >= 2, else None."""
    if value >= 2 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


def _shift_amount(k):
    return Const(k, max(1, k.bit_length()))


def fold_node(node):
    """One local simplification step; children are already folded."""
    if isinstance(node, BinOp):
        return _fold_binop(node)
    if isinstance(node, UnOp):
        return _fold_unop(node)
    if isinstance(node, Mux):
        return _fold_mux(node)
    if isinstance(node, Slice):
        return _fold_slice(node)
    if isinstance(node, Concat):
        return _fold_concat(node)
    return node


def _fold_binop(node):
    op, lhs, rhs, width = node.op, node.lhs, node.rhs, node.width
    if _is_const(lhs) and _is_const(rhs) and op in _FULL_FOLD_OPS:
        return Const(eval_binop(op, lhs.value, rhs.value, width), width)

    if op == "+":
        if _is_const(rhs, 0):
            return lhs
        if _is_const(lhs, 0):
            return rhs
    elif op == "-":
        if _is_const(rhs, 0):
            return lhs
        if _same(lhs, rhs):
            return Const(0, width)
    elif op == "*":
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if _is_const(a):
                if a.value == 0:
                    return Const(0, width)
                if a.value == 1:
                    return b
                shift = _power_of_two(a.value)
                if shift is not None:
                    # Strength reduction: constant shift is free fabric.
                    return BinOp("<<", b, _shift_amount(shift))
    elif op == "&":
        if _is_const(rhs, 0) or _is_const(lhs, 0):
            return Const(0, width)
        if _is_const(rhs, _mask(width)):
            return lhs
        if _is_const(lhs, _mask(width)):
            return rhs
        if _same(lhs, rhs):
            return lhs
    elif op == "|":
        if _is_const(rhs, 0):
            return lhs
        if _is_const(lhs, 0):
            return rhs
        if _is_const(rhs, _mask(width)) or _is_const(lhs, _mask(width)):
            return Const(_mask(width), width)
        if _same(lhs, rhs):
            return lhs
    elif op == "^":
        if _is_const(rhs, 0):
            return lhs
        if _is_const(lhs, 0):
            return rhs
        if _same(lhs, rhs):
            return Const(0, width)
    elif op in ("<<", ">>"):
        if _is_const(rhs, 0):
            return lhs
        if _is_const(lhs, 0):
            return Const(0, width)
        if op == ">>" and _is_const(rhs) and rhs.value >= lhs.width:
            return Const(0, width)
    elif op == "/":
        if _is_const(rhs):
            if rhs.value == 0:
                return Const(0, width)          # simulator semantics
            if rhs.value == 1:
                return lhs
            shift = _power_of_two(rhs.value)
            if shift is not None:
                return BinOp(">>", lhs, _shift_amount(shift))
    elif op == "%":
        if _is_const(rhs):
            if rhs.value == 0:
                return Const(0, width)          # simulator semantics
            if rhs.value == 1:
                return Const(0, width)
            shift = _power_of_two(rhs.value)
            if shift is not None:
                return BinOp("&", lhs, Const(rhs.value - 1, lhs.width))
    elif op in ("==", "<=", ">="):
        if _same(lhs, rhs):
            return Const(1, width)
    elif op in ("!=", "<", ">"):
        if _same(lhs, rhs):
            return Const(0, width)
    return node


def _fold_unop(node):
    op, operand = node.op, node.operand
    if _is_const(operand):
        return Const(eval_unop(op, operand.value, operand.width,
                               node.width), node.width)
    if op == "~" and isinstance(operand, UnOp) and operand.op == "~":
        return operand.operand
    if op == "!" and isinstance(operand, UnOp) and operand.op == "!" \
            and operand.operand.width == 1:
        return operand.operand
    if op in ("|r", "&r", "^r") and operand.width == 1:
        return operand
    return node


def _fold_mux(node):
    sel, if_true, if_false = node.sel, node.if_true, node.if_false
    if _is_const(sel):
        return if_true if sel.value else if_false
    if _same(if_true, if_false):
        return if_true
    if node.width == 1 and sel.width == 1:
        if _is_const(if_true, 1) and _is_const(if_false, 0):
            return sel
        if _is_const(if_true, 0) and _is_const(if_false, 1):
            return UnOp("!", sel)
    # Mux(c, Mux(c, a, b), d) -> Mux(c, a, d); same on the false arm.
    if isinstance(if_true, Mux) and _same(if_true.sel, sel):
        return Mux(sel, if_true.if_true, if_false)
    if isinstance(if_false, Mux) and _same(if_false.sel, sel):
        return Mux(sel, if_true, if_false.if_false)
    return node


def _fold_slice(node):
    operand = node.operand
    if _is_const(operand):
        return Const((operand.value >> node.lsb) & _mask(node.width),
                     node.width)
    if node.lsb == 0 and node.msb == operand.width - 1:
        return operand
    if isinstance(operand, Slice):
        return Slice(operand.operand, operand.lsb + node.msb,
                     operand.lsb + node.lsb)
    return node


def _fold_concat(node):
    if len(node.parts) == 1:
        return node.parts[0]
    if all(_is_const(p) for p in node.parts):
        value = 0
        for part in node.parts:
            value = (value << part.width) | part.value
        return Const(value, node.width)
    return node


def fold_expr(expr, memo=None):
    """Fully fold one expression tree (used by passes and by fusion)."""
    return transform(expr, fold_node, memo)
