"""The optimization passes over the scheduled FSM.

Every pass is semantics-preserving with respect to the kernel's
observable behaviour: result values and final memory contents for any
input.  What a pass *may* change is the shape of the machine — fewer
expressions (folding, CSE), fewer registers (dead-register elimination),
fewer states (unreachable pruning, state fusion).  Cycle counts only
change through :class:`StateFusionPass`, which the -O2 pipeline enables.

Passes mutate the FSM in place and report what they did through
:class:`PassStats`; the manager (:mod:`repro.kiwi.opt.manager`) runs
them to a fixpoint and renumbers the states afterwards.
"""

from repro.kiwi.builder import MemReadRef, VarRef
from repro.kiwi.fsm import Branch, Goto
from repro.kiwi.opt.rewrite import fold_expr, fold_node, transform
from repro.rtl.expr import BinOp, Const, Expr, Mux, UnOp, expr_depth


class PassStats:
    """What one pass changed (all counters default to zero)."""

    FIELDS = ("exprs_folded", "exprs_shared", "branches_resolved",
              "states_removed", "states_fused", "registers_removed",
              "updates_removed")

    def __init__(self, name):
        self.name = name
        for field in self.FIELDS:
            setattr(self, field, 0)

    def changed(self):
        return any(getattr(self, field) for field in self.FIELDS)

    def merge(self, other):
        for field in self.FIELDS:
            setattr(self, field,
                    getattr(self, field) + getattr(other, field))

    def as_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self):
        parts = ["%s=%d" % (f, getattr(self, f))
                 for f in self.FIELDS if getattr(self, f)]
        return "PassStats(%s: %s)" % (self.name,
                                      ", ".join(parts) or "no changes")


class OptContext:
    """Everything a pass needs: the FSM, the register table, the spec."""

    def __init__(self, fsm, var_widths, spec, level_budget=48):
        self.fsm = fsm
        self.var_widths = var_widths
        self.spec = spec
        self.level_budget = level_budget
        self.result_names = {"__result%d" % index
                             for index in range(len(spec.results))}


def _rewrite_state(state, fn, memo):
    """Apply a transform to every expression a state owns."""
    for name in list(state.updates):
        state.updates[name] = transform(state.updates[name], fn, memo)
    state.writes = [
        (mem, transform(addr, fn, memo), transform(data, fn, memo),
         transform(enable, fn, memo))
        for mem, addr, data, enable in state.writes]
    transition = state.transition
    if isinstance(transition, Branch) and isinstance(transition.cond, Expr):
        transition.cond = transform(transition.cond, fn, memo)


def _each_state(ctx):
    """Every state except idle (idle's cond is the ``__start__`` string
    patched by the builder; it owns no expressions)."""
    for state in ctx.fsm.states:
        if state is not ctx.fsm.idle:
            yield state


class Pass:
    """Base class: subclasses set ``name`` and implement ``run``."""

    name = "pass"

    def run(self, ctx):
        raise NotImplementedError


class ConstantFoldPass(Pass):
    """Constant folding + algebraic simplification + strength reduction
    (see :mod:`repro.kiwi.opt.rewrite` for the rule set)."""

    name = "const-fold"

    def run(self, ctx):
        stats = PassStats(self.name)
        memo = {}

        def counting_fold(node):
            result = fold_node(node)
            if result is not node:
                stats.exprs_folded += 1
            return result

        for state in _each_state(ctx):
            _rewrite_state(state, counting_fold, memo)
        return stats


class CsePass(Pass):
    """Common-subexpression elimination by structural interning.

    Structurally-equal subtrees (same :meth:`~repro.rtl.expr.Expr.key`)
    collapse onto one node; downstream, everything that consumes
    expressions — the simulator, the resource estimator, the Verilog
    emitter — treats shared nodes as one wire, so this is sharing into
    wires, across all states of the machine at once."""

    name = "cse"

    def run(self, ctx):
        # The same canonicalisation as rtl.expr.intern_expr, routed
        # through the shared `transform` machinery so sharing spans
        # every expression of every state (one memo, one table).
        stats = PassStats(self.name)
        table = {}
        memo = {}

        def intern(node):
            canonical = table.setdefault(node.key(), node)
            if canonical is not node:
                stats.exprs_shared += 1
            return canonical

        for state in _each_state(ctx):
            _rewrite_state(state, intern, memo)
        return stats


class BranchResolvePass(Pass):
    """Turn branches whose condition folded to a constant into gotos,
    then drop states no longer reachable from idle."""

    name = "branch-resolve"

    def run(self, ctx):
        stats = PassStats(self.name)
        fsm = ctx.fsm
        for state in _each_state(ctx):
            transition = state.transition
            if isinstance(transition, Branch) and \
                    isinstance(transition.cond, Const):
                target = transition.if_true if transition.cond.value \
                    else transition.if_false
                state.transition = Goto(target)
                stats.branches_resolved += 1

        reachable = {fsm.idle}
        frontier = [fsm.idle]
        while frontier:
            state = frontier.pop()
            for successor in fsm.successors(state):
                if successor not in reachable:
                    reachable.add(successor)
                    frontier.append(successor)
        kept = [s for s in fsm.states if s in reachable]
        stats.states_removed += len(fsm.states) - len(kept)
        fsm.states = kept
        return stats


def _vars_read(expr, into, seen=None):
    """Collect the names of all VarRefs in *expr* into the set *into*.

    Visits each DAG node once (expressions share subtrees heavily; an
    unmemoised walk is exponential in the sharing depth)."""
    if seen is None:
        seen = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, VarRef):
            into.add(node.name)
        stack.extend(node.children())


class DeadRegisterPass(Pass):
    """Remove updates to registers whose value is never observed.

    A register is live if it is a result, or if it is read by a state
    transition, a memory write, or the update of another live register
    (computed to a fixpoint).  Dead registers are deleted from the
    register table, so codegen never materialises them."""

    name = "dead-reg"

    def run(self, ctx):
        stats = PassStats(self.name)
        always_live = set(ctx.result_names)
        always_seen = set()
        update_reads = {}        # var -> set of vars its updates read
        for state in _each_state(ctx):
            transition = state.transition
            if isinstance(transition, Branch) and \
                    isinstance(transition.cond, Expr):
                _vars_read(transition.cond, always_live, always_seen)
            for _, addr, data, enable in state.writes:
                _vars_read(addr, always_live, always_seen)
                _vars_read(data, always_live, always_seen)
                _vars_read(enable, always_live, always_seen)
            for name, expr in state.updates.items():
                reads = update_reads.setdefault(name, set())
                _vars_read(expr, reads)

        live = set(always_live)
        frontier = list(live)
        while frontier:
            name = frontier.pop()
            for read in update_reads.get(name, ()):
                if read not in live:
                    live.add(read)
                    frontier.append(read)

        for state in _each_state(ctx):
            for name in list(state.updates):
                if name not in live:
                    del state.updates[name]
                    stats.updates_removed += 1
        for name in list(ctx.var_widths):
            if name not in live and name not in ctx.result_names:
                del ctx.var_widths[name]
                stats.registers_removed += 1
        return stats


class StateFusionPass(Pass):
    """Merge a state into its unique Goto-predecessor (retiming).

    If state A ends in ``Goto(B)`` and A is B's only predecessor, B's
    work can execute in A's cycle: B's expressions are rewritten so that
    reads of registers A updates become A's update expressions, and
    reads of memories A writes grow store-forwarding muxes (the same
    construction the scheduler uses within one cycle).  The merge is
    taken only when the fused state's logic depth stays within the
    timing budget — this is §3.4's "schedule a suitable amount of
    computation in a single clock cycle", applied after the fact.

    At -O2 pinned ``pause()`` states may be absorbed too: the barrier
    becomes a scheduling hint that retiming may remove when timing
    allows.  Observable results and memory contents are unchanged; only
    the cycle count drops.
    """

    name = "state-fusion"

    def __init__(self, fuse_pinned=True):
        self.fuse_pinned = fuse_pinned

    def run(self, ctx):
        stats = PassStats(self.name)
        while self._fuse_one(ctx, stats):
            pass
        return stats

    def _predecessors(self, fsm):
        preds = {state: [] for state in fsm.states}
        for state in fsm.states:
            for successor in fsm.successors(state):
                preds[successor].append(state)
        return preds

    def _fuse_one(self, ctx, stats):
        fsm = ctx.fsm
        preds = self._predecessors(fsm)
        for a in fsm.states:
            if a is fsm.idle:
                continue
            transition = a.transition
            if not isinstance(transition, Goto):
                continue
            b = transition.target
            if b is a or b is fsm.idle or b not in preds:
                continue
            if b.pinned and not self.fuse_pinned:
                continue
            if preds[b] != [a]:
                continue
            if self._merge(ctx, a, b):
                fsm.states.remove(b)
                stats.states_fused += 1
                return True
        return False

    def _merge(self, ctx, a, b):
        """Fuse *b* into *a*; returns False if the depth budget vetoes."""
        env = a.updates
        memo = {}
        fold_memo = {}

        def substitute(node):
            if isinstance(node, VarRef):
                return env.get(node.name, node)
            if isinstance(node, MemReadRef):
                return self._forward(node, a.writes)
            return node

        def rewrite(expr):
            # Substitute, then fold: the forwarding muxes this builds
            # compare (mostly constant) addresses, and folding them away
            # immediately keeps the depth check honest.
            return fold_expr(transform(expr, substitute, memo), fold_memo)

        merged_updates = dict(a.updates)
        for name, expr in b.updates.items():
            merged_updates[name] = rewrite(expr)
        merged_writes = list(a.writes) + [
            (mem, rewrite(addr), rewrite(data), rewrite(enable))
            for mem, addr, data, enable in b.writes]
        transition = b.transition
        if isinstance(transition, Branch):
            merged_transition = Branch(rewrite(transition.cond),
                                       transition.if_true,
                                       transition.if_false)
        else:
            merged_transition = Goto(transition.target)

        depth_memo = {}
        depth = 0
        for expr in merged_updates.values():
            depth = max(depth, expr_depth(expr, depth_memo))
        for _, addr, data, enable in merged_writes:
            depth = max(depth, expr_depth(addr, depth_memo),
                        expr_depth(data, depth_memo),
                        expr_depth(enable, depth_memo))
        if isinstance(merged_transition, Branch):
            depth = max(depth, expr_depth(merged_transition.cond,
                                          depth_memo))
        if depth > ctx.level_budget:
            return False

        a.updates = merged_updates
        a.writes = merged_writes
        a.transition = merged_transition
        if b.label and b.label not in ("join", "pause"):
            a.label = "%s+%s" % (a.label, b.label) if a.label else b.label
        return True

    @staticmethod
    def _forward(read, writes):
        """Wrap a memory read with forwarding from same-cycle writes
        (later writes take priority, mirroring the scheduler)."""
        result = read
        for mem, addr, data, enable in writes:
            if mem != read.mem_name:
                continue
            hit = enable if enable.width == 1 else UnOp("|r", enable)
            hit = BinOp("&", hit,
                        BinOp("==", read.addr, addr, result_width=1))
            result = Mux(hit, data, result)
        return result
