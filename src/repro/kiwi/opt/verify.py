"""Differential co-simulation: ``-O0`` vs ``-On`` on random inputs.

The optimizer's contract is observational equivalence: for any latched
scalar parameters and any initial memory contents, the optimized design
produces the same result values and the same final memory contents as
the unoptimized one (cycle counts may differ — that is the point).
This module checks the contract by running both netlists on seeded
random inputs; the property-test layer and ``compile_function(...,
verify=True)`` both drive it.
"""

import random

from repro.errors import CompileError


class Mismatch:
    """One diverging run: the inputs and both observations."""

    def __init__(self, scalars, memories, base, optimized):
        self.scalars = scalars
        self.memories = memories
        self.base = base
        self.optimized = optimized

    def __repr__(self):
        return ("Mismatch(scalars=%r, base=%r, optimized=%r)"
                % (self.scalars, self.base, self.optimized))


class DifferentialReport:
    """Outcome of one differential-verification session."""

    def __init__(self, name, opt_level):
        self.name = name
        self.opt_level = opt_level
        self.runs = 0
        self.skipped = 0             # inputs the -O0 design timed out on
        self.mismatches = []
        self.base_cycles = 0
        self.opt_cycles = 0

    @property
    def ok(self):
        return not self.mismatches and self.runs > 0

    @property
    def cycle_reduction(self):
        """Fraction of simulated cycles removed by the optimizer."""
        if not self.base_cycles:
            return 0.0
        return 1.0 - self.opt_cycles / self.base_cycles

    def __repr__(self):
        return ("DifferentialReport(%s -O%d: %d runs, %d mismatches, "
                "%.1f%% fewer cycles)"
                % (self.name, self.opt_level, self.runs,
                   len(self.mismatches), 100.0 * self.cycle_reduction))


# Byte values that protocol parsers compare against (EtherType 0x08/
# 0x00, IP protocols 6/17, ports 53 and 11211 = 0x2B 0x67, the binary
# memcached magic 0x80, bitmask edges).  Drawing words from this
# dictionary makes shallow header checks pass far more often than
# uniform noise would, so generic verification exercises more than the
# first early-exit.  Deep multi-byte request paths still need crafted
# inputs — pass an ``input_factory`` (services do; see the property
# tests and ``compile_function(verify_inputs=...)``).
_DICTIONARY = (0x00, 0x01, 0x06, 0x08, 0x11, 0x35, 0x2B, 0x67, 0x80,
               0xFF)


def _random_word(rng, width):
    if rng.random() < 0.5:
        return rng.getrandbits(width)
    value = 0
    for _ in range((width + 7) // 8):
        value = (value << 8) | rng.choice(_DICTIONARY)
    return value & ((1 << width) - 1)


def random_inputs(spec, rng):
    """Random scalars and memory images for one kernel invocation
    (a mix of uniform noise and dictionary-byte patterns)."""
    scalars = {name: _random_word(rng, param.width)
               for name, param in spec.scalar_params}
    memories = {name: [_random_word(rng, mem.width)
                       for _ in range(mem.depth)]
                for name, mem in spec.memory_params}
    return scalars, memories


def _observe(design, scalars, memories, max_cycles):
    """(results, memory images, cycles) of one fresh run."""
    results, cycles, sim = design.run(
        max_cycles=max_cycles,
        memories={name: list(image) for name, image in memories.items()},
        **scalars)
    images = {
        name: [sim.peek_memory(name, addr) for addr in range(mem.depth)]
        for name, mem in design.spec.memory_params}
    return results, images, cycles


def differential_check(fn, opt_level=2, runs=16, seed="kiwi-opt",
                       max_cycles=200000, base=None, optimized=None,
                       input_factory=None):
    """Co-simulate *fn* at ``-O0`` and ``-Oopt_level`` on random inputs.

    *input_factory* (rng → (scalars, memories)) overrides the default
    uniform-random input generator — services use it to mix crafted
    request frames in with the noise.  Returns a
    :class:`DifferentialReport`; ``report.ok`` means every run matched.
    """
    from repro.kiwi.compiler import compile_function
    if base is None:
        base = compile_function(fn, opt_level=0)
    if optimized is None:
        optimized = compile_function(fn, opt_level=opt_level)
    report = DifferentialReport(base.name, opt_level)
    rng = random.Random("%s/%s" % (seed, base.name))
    make_inputs = input_factory or \
        (lambda r: random_inputs(base.spec, r))
    for _ in range(runs):
        scalars, memories = make_inputs(rng)
        try:
            base_obs = _observe(base, scalars, memories, max_cycles)
        except CompileError:
            # The input makes the *reference* run too long (e.g. a data-
            # dependent loop): nothing to compare against.
            report.skipped += 1
            continue
        try:
            opt_obs = _observe(optimized, scalars, memories, max_cycles)
        except CompileError:
            report.mismatches.append(
                Mismatch(scalars, memories, base_obs[:2], "timeout"))
            continue
        report.runs += 1
        report.base_cycles += base_obs[2]
        report.opt_cycles += opt_obs[2]
        if base_obs[0] != opt_obs[0] or base_obs[1] != opt_obs[1]:
            report.mismatches.append(
                Mismatch(scalars, memories, base_obs[:2], opt_obs[:2]))
    return report


def assert_equivalent(fn, opt_level=2, **kwargs):
    """Raise :class:`~repro.errors.CompileError` unless differential
    verification passes; returns the report otherwise."""
    report = differential_check(fn, opt_level=opt_level, **kwargs)
    if not report.ok:
        detail = report.mismatches[0] if report.mismatches else \
            "no comparable runs"
        raise CompileError(
            "optimizer verification failed for %r at -O%d: %r"
            % (report.name, opt_level, detail))
    return report
