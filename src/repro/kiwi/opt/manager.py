"""The pass manager: pipelines per optimization level.

``-O0`` is the identity — the FSM the scheduler built is emitted
verbatim (byte-identical Verilog to a compiler without a middle-end).
``-O1`` runs the resource passes: constant folding, branch resolution +
unreachable-state pruning, dead-register elimination, and CSE.  None of
them changes the cycle count of any execution.  ``-O2`` adds state
fusion (retiming under the timing budget), which is the pass that cuts
cycles-per-packet, then lets the sealer elide any state the other
passes emptied.  ``-O3`` runs the same rewrites and then the
initiation-interval pipelining analysis
(:mod:`repro.kiwi.opt.pipeline`) over the sealed machine, attaching
the resulting :class:`~repro.kiwi.opt.pipeline.PipelineSchedule` to
the FSM for the cycle models and the in-flight executor.

The pipeline iterates to a fixpoint (each pass can expose work for the
others: folding a branch condition exposes unreachable states, fusion
exposes new constants) with a small iteration cap as a backstop.
"""

from repro.errors import CompileError
from repro.kiwi.opt.passes import (
    BranchResolvePass, ConstantFoldPass, CsePass, DeadRegisterPass,
    OptContext, PassStats, StateFusionPass,
)

MAX_ITERATIONS = 8

PIPELINES = {
    0: (),
    1: (ConstantFoldPass, BranchResolvePass, DeadRegisterPass, CsePass),
    2: (ConstantFoldPass, BranchResolvePass, DeadRegisterPass,
        StateFusionPass, CsePass),
    3: (ConstantFoldPass, BranchResolvePass, DeadRegisterPass,
        StateFusionPass, CsePass),
}


class PassManager:
    """Runs a pass pipeline over one FSM to a fixpoint."""

    def __init__(self, passes, level_budget=48):
        self.passes = list(passes)
        self.level_budget = level_budget

    def run(self, fsm, var_widths, spec):
        """Optimize in place; returns one merged PassStats per pass."""
        ctx = OptContext(fsm, var_widths, spec,
                         level_budget=self.level_budget)
        totals = [PassStats(p.name) for p in self.passes]
        for _ in range(MAX_ITERATIONS):
            changed = False
            for opt_pass, total in zip(self.passes, totals):
                stats = opt_pass.run(ctx)
                total.merge(stats)
                changed = changed or stats.changed()
            if not changed:
                break
        return totals


def optimize(fsm, var_widths, spec, opt_level, level_budget=48):
    """Run the pipeline for *opt_level* over a sealed FSM, in place.

    Returns the list of per-pass :class:`PassStats`.  The FSM comes back
    renumbered (and, at -O2, re-sealed so emptied states are elided).
    """
    if opt_level not in PIPELINES:
        raise CompileError(
            "unknown optimization level %r (have -O0/-O1/-O2/-O3)"
            % (opt_level,))
    pipeline = PIPELINES[opt_level]
    if not pipeline:
        return []
    manager = PassManager([cls() for cls in pipeline],
                          level_budget=level_budget)
    stats = manager.run(fsm, var_widths, spec)
    if opt_level >= 2:
        # Fusion and DCE may have emptied states; the sealer elides
        # them and reassigns indices.
        fsm.seal()
    else:
        # -O1 never changes cycle counts: keep every state, only
        # refresh the indices after unreachable-state pruning.
        for index, state in enumerate(fsm.states):
            state.index = index
    if opt_level >= 3:
        # Pipelining is an analysis over the final sealed machine, so
        # it runs once after the rewrite fixpoint, not inside it.
        from repro.kiwi.opt.pipeline import analyze_pipeline
        fsm.pipeline_schedule = analyze_pipeline(
            fsm, var_widths, spec, level_budget=level_budget)
    return stats
