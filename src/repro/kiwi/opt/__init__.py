"""``repro.kiwi.opt`` — the optimizing middle-end of the Kiwi compiler.

The scheduler (:mod:`repro.kiwi.builder`) emits a correct but naive
FSM: every statement's expression is kept verbatim and every barrier is
a cycle.  This package rewrites that FSM before code generation:

* :mod:`repro.kiwi.opt.rewrite` — expression rewriting: constant
  folding, algebraic simplification, strength reduction.
* :mod:`repro.kiwi.opt.passes` — the FSM passes: folding, CSE (via
  structural interning), branch resolution + unreachable-state pruning,
  dead-register elimination, and state fusion/retiming under the
  timing-level budget.
* :mod:`repro.kiwi.opt.pipeline` — the ``-O3`` initiation-interval
  pipelining analysis: recurrence + resource bounds over the
  cross-state dependence graph, emitted as a
  :class:`~repro.kiwi.opt.pipeline.PipelineSchedule`.
* :mod:`repro.kiwi.opt.manager` — pipelines per ``opt_level``
  (0/1/2/3) and the fixpoint driver.
* :mod:`repro.kiwi.opt.verify` — differential co-simulation proving
  ``-On`` observationally equivalent to ``-O0`` on seeded random
  inputs.

Entry point: :func:`repro.kiwi.opt.manager.optimize`, called by
:func:`repro.kiwi.compiler.compile_function` with its ``opt_level``.
"""

from repro.kiwi.opt.manager import PIPELINES, PassManager, optimize
from repro.kiwi.opt.passes import (
    BranchResolvePass, ConstantFoldPass, CsePass, DeadRegisterPass,
    OptContext, PassStats, StateFusionPass,
)
from repro.kiwi.opt.pipeline import (
    DEFAULT_STREAM_MEMORIES, PIPELINE_CONTROL_LEVELS, PipelineSchedule,
    analyze_pipeline,
)
from repro.kiwi.opt.verify import (
    DifferentialReport, assert_equivalent, differential_check,
)

__all__ = [
    "PIPELINES", "PassManager", "optimize",
    "BranchResolvePass", "ConstantFoldPass", "CsePass",
    "DeadRegisterPass", "OptContext", "PassStats", "StateFusionPass",
    "DEFAULT_STREAM_MEMORIES", "PIPELINE_CONTROL_LEVELS",
    "PipelineSchedule", "analyze_pipeline",
    "DifferentialReport", "assert_equivalent", "differential_check",
]
