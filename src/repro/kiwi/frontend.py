"""Compiler frontend: source extraction, parameter specs, subset checks.

Kernel functions declare their hardware interface with annotations:

    def switch_kernel(frame: "mem[2048]x8", frame_len: "u16",
                      src_port: "u8") -> "u8":
        ...

* ``"uN"``         — an N-bit unsigned scalar (input latched at start).
* ``"mem[D]xW"``   — a memory of D words of W bits (shared buffer).
* the return annotation gives the result register width(s); a tuple
  annotation (``("u8", "u16")``) declares multiple results.
"""

import ast
import inspect
import re
import textwrap

from repro.errors import CompileError

DEFAULT_WIDTH = 64

_SCALAR_RE = re.compile(r"^u(\d+)$")
_MEM_RE = re.compile(r"^mem\[(\d+)\]x(\d+)$")


class ScalarSpec:
    """An N-bit scalar parameter or result."""

    __slots__ = ("width",)

    def __init__(self, width):
        if width <= 0:
            raise CompileError("scalar width must be positive")
        self.width = width

    def __repr__(self):
        return "u%d" % self.width


class MemSpec:
    """A memory parameter: D words of W bits."""

    __slots__ = ("depth", "width")

    def __init__(self, depth, width):
        if depth <= 0 or width <= 0:
            raise CompileError("memory depth/width must be positive")
        self.depth = depth
        self.width = width

    @property
    def addr_bits(self):
        return max(1, (self.depth - 1).bit_length())

    def __repr__(self):
        return "mem[%d]x%d" % (self.depth, self.width)


def parse_spec(text):
    """Parse one annotation string into a spec object."""
    match = _SCALAR_RE.match(text)
    if match:
        return ScalarSpec(int(match.group(1)))
    match = _MEM_RE.match(text)
    if match:
        return MemSpec(int(match.group(1)), int(match.group(2)))
    raise CompileError("unrecognised type annotation %r" % text)


def _annotation_text(node):
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Str):          # pragma: no cover (py<3.8)
        return node.s
    raise CompileError("annotations must be string literals", node)


class FunctionSpec:
    """Parsed interface + body of one kernel function."""

    def __init__(self, name, params, results, body, tree):
        self.name = name
        self.params = params       # list of (name, spec)
        self.results = results     # list of ScalarSpec
        self.body = body           # list of ast statements
        self.tree = tree

    @property
    def scalar_params(self):
        return [(n, s) for n, s in self.params if isinstance(s, ScalarSpec)]

    @property
    def memory_params(self):
        return [(n, s) for n, s in self.params if isinstance(s, MemSpec)]


def parse_function(fn):
    """Extract and validate the AST of a kernel function."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        raise CompileError("cannot read source of %r" % (fn,))
    tree = ast.parse(source)
    funcs = [node for node in tree.body
             if isinstance(node, ast.FunctionDef)]
    if len(funcs) != 1:
        raise CompileError("expected exactly one function definition")
    func = funcs[0]

    args = func.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.defaults:
        raise CompileError(
            "kernel functions take plain positional parameters only", func)

    params = []
    for arg in args.args:
        if arg.annotation is None:
            raise CompileError(
                "parameter %r needs a type annotation" % arg.arg, arg)
        params.append((arg.arg, parse_spec(_annotation_text(arg.annotation))))

    results = []
    if func.returns is not None:
        if isinstance(func.returns, ast.Tuple):
            for element in func.returns.elts:
                spec = parse_spec(_annotation_text(element))
                if not isinstance(spec, ScalarSpec):
                    raise CompileError("results must be scalars",
                                       element)
                results.append(spec)
        else:
            spec = parse_spec(_annotation_text(func.returns))
            if not isinstance(spec, ScalarSpec):
                raise CompileError("results must be scalars", func.returns)
            results.append(spec)

    return FunctionSpec(func.name, params, results, func.body, func)


# -- barrier analysis --------------------------------------------------------

def _is_pause_call(node):
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "pause")


def stmt_contains_barrier(stmt):
    """Does *stmt* force a state boundary (pause / loop / return / ...)?"""
    if isinstance(stmt, (ast.While, ast.Return, ast.Break, ast.Continue)):
        return True
    if isinstance(stmt, ast.Expr) and _is_pause_call(stmt.value):
        return True
    if isinstance(stmt, ast.If):
        return (body_contains_barrier(stmt.body)
                or body_contains_barrier(stmt.orelse))
    if isinstance(stmt, ast.For):
        return body_contains_barrier(stmt.body)
    return False


def body_contains_barrier(stmts):
    return any(stmt_contains_barrier(s) for s in stmts)
