"""Baseline designs the paper compares against (Table 3, Table 4).

* :mod:`repro.baselines.reference_switch` — the NetFPGA SUME reference
  learning switch, hand-written at netlist level (the "native Verilog"
  baseline).
* :mod:`repro.baselines.p4fpga` — a P4FPGA-style parse-match-action
  pipeline switch: per-port parsers and a deep stage pipeline, which is
  where its 85-cycle latency and ~7x resource cost come from.
"""

from repro.baselines.reference_switch import ReferenceSwitch, \
    build_reference_switch
from repro.baselines.p4fpga import P4FpgaSwitch, build_p4fpga_switch

__all__ = ["ReferenceSwitch", "build_reference_switch", "P4FpgaSwitch",
           "build_p4fpga_switch"]
