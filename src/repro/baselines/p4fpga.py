"""P4FPGA-style switch: parse–match–action pipeline (Table 3 baseline).

P4FPGA compiles P4 to a deep streaming pipeline: a parser *per port*, a
packet-header-vector (PHV) carried through every stage, match-action
stages with their own tables, then a deparser.  That architecture — not
bad engineering — is why Table 3 shows ~85 cycles of latency and ~7x
the resources of the reference switch: every stage registers the whole
PHV, and each port pays for its own parser.

The paper: "Emu provides much lower latency than the compared design,
mostly because Emu is not bounded by the match/action paradigm."
"""

from repro.ip.cam import BinaryCAM
from repro.rtl import Module, Simulator, cat, const, mux

PARSER_STAGES = 24          # per-port header parser depth
MATCH_ACTION_STAGES = 4     # table stages (L2 switching needs 2; P4FPGA
                            # allocates the programme's full pipeline)
CYCLES_PER_MA_STAGE = 14    # match + action + crossbar latency
DEPARSER_STAGES = 5
PHV_BITS = 256              # packet header vector width


def pipeline_latency_cycles():
    """Architectural latency of the pipeline (matches Table 3's ~85)."""
    return (PARSER_STAGES + MATCH_ACTION_STAGES * CYCLES_PER_MA_STAGE +
            DEPARSER_STAGES)


def build_p4fpga_switch(table_size=256, num_ports=4, phv_bits=PHV_BITS):
    """Build the pipeline netlist (PHV registers + parsers + tables)."""
    m = Module("p4fpga_switch")
    in_valid = m.input("in_valid", 1)
    dst_mac = m.input("dst_mac", 48)
    src_mac = m.input("src_mac", 48)
    src_port = m.input("src_port", 8)
    out_valid = m.output("out_valid", 1)
    out_ports = m.output("out_ports", num_ports)

    # Per-port parsers: each is a chain of PHV extraction stages.  Only
    # parser 0 is fed by this single-stimulus model, but all four are
    # built (and paid for), as in P4FPGA.
    # PHV layout: dst MAC [103:56], src MAC [55:8], source port [7:0].
    parser_tails = []
    for port in range(num_ports):
        valid = in_valid if port == 0 else const(0, 1)
        phv = cat(dst_mac, src_mac, src_port)
        pad = phv_bits - phv.width
        phv = cat(const(0, pad), phv) if pad > 0 else phv
        for stage in range(PARSER_STAGES):
            v_reg = m.reg("p%d_v%d" % (port, stage), 1)
            phv_reg = m.reg("p%d_phv%d" % (port, stage), phv_bits)
            ext_reg = m.reg("p%d_ext%d" % (port, stage), 8)
            m.sync(v_reg, valid)
            m.sync(phv_reg, phv)
            # Each parser stage extracts one field (charged logic).
            m.sync(ext_reg, phv[8 * (stage % 13) + 7:8 * (stage % 13)])
            valid = v_reg
            phv = phv_reg
        parser_tails.append((valid, phv))

    valid, phv = parser_tails[0]

    # Match-action stages.  Stage 0 matches dst MAC (forwarding), stage 1
    # matches src MAC (learning filter); remaining stages are allocated
    # but empty, each still carrying the PHV and the action result.
    cam = BinaryCAM(key_width=48, value_width=8, depth=table_size)
    result_carry = None
    for stage in range(MATCH_ACTION_STAGES):
        key = phv[103:56] if stage == 0 else phv[55:8]
        cam_netlist = cam.build_netlist("ma%d_cam" % stage)
        match = m.wire("ma%d_match" % stage, 1)
        value = m.wire("ma%d_value" % stage, 8)
        # Learning writes target the forwarding table (stage 0), the
        # mirroring a P4 control plane would do.
        m.instantiate(
            "ma%d_cam_i" % stage, cam_netlist,
            search_key=key, write_en=valid if stage == 0 else const(0, 1),
            write_key=phv[55:8], write_value=phv[7:0],
            match=match, value_out=value)
        if stage == 0:
            carry_in = mux(
                match, const(1, num_ports) << value[1:0],
                const((1 << num_ports) - 1, num_ports) ^
                (const(1, num_ports) << phv[1:0]))
        else:
            carry_in = result_carry
        # The stage's latency: a chain of CYCLES_PER_MA_STAGE registers.
        for cycle in range(CYCLES_PER_MA_STAGE):
            v_reg = m.reg("ma%d_v%d" % (stage, cycle), 1)
            phv_reg = m.reg("ma%d_phv%d" % (stage, cycle), phv_bits)
            r_reg = m.reg("ma%d_r%d" % (stage, cycle), num_ports)
            m.sync(v_reg, valid)
            m.sync(phv_reg, phv)
            m.sync(r_reg, carry_in)
            valid = v_reg
            phv = phv_reg
            carry_in = r_reg
        result_carry = carry_in

    # Deparser: reassembly delay.
    result = result_carry
    for stage in range(DEPARSER_STAGES):
        v_reg = m.reg("dp_v%d" % stage, 1)
        r_reg = m.reg("dp_r%d" % stage, num_ports)
        m.sync(v_reg, valid)
        m.sync(r_reg, result)
        valid = v_reg
        result = r_reg

    m.comb(out_valid, valid)
    m.comb(out_ports, result)
    return m


class P4FpgaSwitch:
    """Simulation wrapper mirroring :class:`ReferenceSwitch`."""

    def __init__(self, table_size=256, num_ports=4):
        self.num_ports = num_ports
        self.module = build_p4fpga_switch(table_size, num_ports)
        self.sim = Simulator(self.module)
        self.latency = pipeline_latency_cycles()

    def decide(self, dst_mac, src_mac, src_port):
        """One lookup through the pipeline; returns (ports, cycles)."""
        sim = self.sim
        sim.poke("in_valid", 1)
        sim.poke("dst_mac", dst_mac)
        sim.poke("src_mac", src_mac)
        sim.poke("src_port", src_port)
        sim.step()
        sim.poke("in_valid", 0)
        cycles = 1
        while not sim.peek("out_valid"):
            sim.step()
            cycles += 1
        ports = sim.peek("out_ports")
        sim.step()
        return ports, cycles
