"""The NetFPGA SUME reference learning switch, at netlist level.

This is the "native Verilog" baseline of Table 3: a hand-pipelined
design with a fixed 6-cycle module latency and an initiation interval of
one lookup per cycle, sharing the same CAM IP block as the Emu switch.

Pipeline (one packet decision per stage per cycle):

1. parse     — latch dst/src MAC and source port,
2. search    — present the destination MAC to the CAM,
3. capture   — register the CAM match and port,
4. decide    — one-hot output port or broadcast mask,
5. learn     — issue the source-MAC learn write,
6. output    — registered result.
"""

from repro.ip.cam import BinaryCAM
from repro.rtl import Module, Simulator, const, mux

MODULE_LATENCY_CYCLES = 6


def build_reference_switch(table_size=256, num_ports=4):
    """Build the reference switch netlist around a CAM IP block."""
    cam = BinaryCAM(key_width=48, value_width=8, depth=table_size)
    cam_netlist = cam.build_netlist("mac_cam")

    m = Module("reference_switch")
    in_valid = m.input("in_valid", 1)
    dst_mac = m.input("dst_mac", 48)
    src_mac = m.input("src_mac", 48)
    src_port = m.input("src_port", 8)

    out_valid = m.output("out_valid", 1)
    out_ports = m.output("out_ports", num_ports)

    # Stage 1: parse registers.
    s1_valid = m.reg("s1_valid", 1)
    s1_dst = m.reg("s1_dst", 48)
    s1_src = m.reg("s1_src", 48)
    s1_port = m.reg("s1_port", 8)
    m.sync(s1_valid, in_valid)
    m.sync(s1_dst, dst_mac)
    m.sync(s1_src, src_mac)
    m.sync(s1_port, src_port)

    # Stage 2: CAM search (combinational through the IP block).
    cam_match = m.wire("cam_match", 1)
    cam_value = m.wire("cam_value", 8)
    m.instantiate(
        "cam", cam_netlist,
        search_key=s1_dst, write_en=s1_valid, write_key=s1_src,
        write_value=s1_port, match=cam_match, value_out=cam_value)

    s2_valid = m.reg("s2_valid", 1)
    s2_match = m.reg("s2_match", 1)
    s2_value = m.reg("s2_value", 8)
    s2_port = m.reg("s2_port", 8)
    m.sync(s2_valid, s1_valid)
    m.sync(s2_match, cam_match)
    m.sync(s2_value, cam_value)
    m.sync(s2_port, s1_port)

    # Stage 3: capture/normalise.
    s3_valid = m.reg("s3_valid", 1)
    s3_match = m.reg("s3_match", 1)
    s3_value = m.reg("s3_value", 8)
    s3_port = m.reg("s3_port", 8)
    m.sync(s3_valid, s2_valid)
    m.sync(s3_match, s2_match)
    m.sync(s3_value, s2_value)
    m.sync(s3_port, s2_port)

    # Stage 4: decision.
    all_ports = (1 << num_ports) - 1
    one_hot = const(1, num_ports) << _low_bits(s3_value, num_ports)
    bcast = const(all_ports, num_ports) ^ \
        (const(1, num_ports) << _low_bits(s3_port, num_ports))
    s4_valid = m.reg("s4_valid", 1)
    s4_ports = m.reg("s4_ports", num_ports)
    m.sync(s4_valid, s3_valid)
    m.sync(s4_ports, mux(s3_match, one_hot, bcast))

    # Stage 5: learn slot (the CAM write was issued in stage 2; this
    # stage models the reference design's metadata queue).
    s5_valid = m.reg("s5_valid", 1)
    s5_ports = m.reg("s5_ports", num_ports)
    m.sync(s5_valid, s4_valid)
    m.sync(s5_ports, s4_ports)

    # Stage 6: registered output.
    s6_valid = m.reg("s6_valid", 1)
    s6_ports = m.reg("s6_ports", num_ports)
    m.sync(s6_valid, s5_valid)
    m.sync(s6_ports, s5_ports)
    m.comb(out_valid, s6_valid)
    m.comb(out_ports, s6_ports)
    return m


def _low_bits(signal, num_ports):
    bits_needed = max(1, (num_ports - 1).bit_length())
    return signal[bits_needed - 1:0]


class ReferenceSwitch:
    """Simulation wrapper: feed MAC pairs, observe port decisions."""

    def __init__(self, table_size=256, num_ports=4):
        self.num_ports = num_ports
        self.module = build_reference_switch(table_size, num_ports)
        self.sim = Simulator(self.module)
        self.latency = MODULE_LATENCY_CYCLES

    def decide(self, dst_mac, src_mac, src_port):
        """Run one lookup through the pipeline; returns (ports, cycles)."""
        sim = self.sim
        sim.poke("in_valid", 1)
        sim.poke("dst_mac", dst_mac)
        sim.poke("src_mac", src_mac)
        sim.poke("src_port", src_port)
        sim.step()
        sim.poke("in_valid", 0)
        cycles = 1
        while not sim.peek("out_valid"):
            sim.step()
            cycles += 1
        ports = sim.peek("out_ports")
        sim.step()                     # drain the valid bit
        return ports, cycles
