"""Structural Verilog emission (workflow step B1 of Fig. 1).

The paper's pipeline ends in Verilog consumed by Xilinx Vivado.  We emit
equivalent structural Verilog-2001 from the netlist IR so the workflow is
complete end-to-end; the text is also used by tests to check that
compiled designs have the expected shape (module ports, always blocks).
"""

from repro.rtl.expr import BinOp, Concat, Const, MemRead, Mux, Slice, UnOp
from repro.rtl.module import flatten
from repro.rtl.signal import Signal

_BIN_VERILOG = {
    "+": "+", "-": "-", "*": "*", "&": "&", "|": "|", "^": "^",
    "<<": "<<", ">>": ">>", "/": "/", "%": "%",
    "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}


def _vname(name):
    return name.replace(".", "__")


def _emit_expr(expr, names=None):
    if names is not None:
        name = names.get(id(expr))
        if name is not None:
            return name
    return _emit_node(expr, names)


def _emit_node(expr, names=None):
    """Render one node (children may resolve to shared-wire names)."""
    if isinstance(expr, Const):
        return "%d'd%d" % (expr.width, expr.value)
    if isinstance(expr, Signal):
        return _vname(expr.name)
    if isinstance(expr, BinOp):
        return "(%s %s %s)" % (
            _emit_expr(expr.lhs, names), _BIN_VERILOG[expr.op],
            _emit_expr(expr.rhs, names))
    if isinstance(expr, UnOp):
        inner = _emit_expr(expr.operand, names)
        if expr.op == "~":
            return "(~%s)" % inner
        if expr.op == "|r":
            return "(|%s)" % inner
        if expr.op == "&r":
            return "(&%s)" % inner
        if expr.op == "^r":
            return "(^%s)" % inner
        if expr.op == "!":
            return "(!%s)" % inner
    if isinstance(expr, Mux):
        return "(%s ? %s : %s)" % (
            _emit_expr(expr.sel, names), _emit_expr(expr.if_true, names),
            _emit_expr(expr.if_false, names))
    if isinstance(expr, Slice):
        if expr.msb == expr.lsb:
            return "%s[%d]" % (_emit_expr(expr.operand, names), expr.lsb)
        return "%s[%d:%d]" % (_emit_expr(expr.operand, names), expr.msb,
                              expr.lsb)
    if isinstance(expr, Concat):
        return "{%s}" % ", ".join(_emit_expr(p, names)
                                  for p in expr.parts)
    if isinstance(expr, MemRead):
        return "%s[%s]" % (_vname(expr.memory.name),
                           _emit_expr(expr.addr, names))
    raise TypeError("cannot emit %r" % (expr,))


def _expr_roots(module):
    """Every expression the module emits, in a stable order."""
    roots = list(module.comb_assigns.values())
    roots += list(module.sync_assigns.values())
    for mw in module.mem_writes:
        roots += [mw.enable, mw.addr, mw.data]
    return roots


def _shared_wires(module):
    """(names, defs): a wire name per multiply-referenced subexpression.

    Expressions are DAGs (the optimizer's CSE pass makes the sharing
    heavy); inlining a shared node at every reference expands the DAG
    into its tree form, which is exponential in the worst case.  Nodes
    with more than one incoming reference are hoisted into named wires
    instead, so the emitted text is linear in the netlist size — this is
    CSE made visible: one shared wire per common subexpression.

    *defs* is ``[(name, width, node)]`` in children-first order.
    """
    counts = {}
    order = []          # post-order, children before parents

    def walk(node):
        key = id(node)
        if key in counts:
            counts[key] += 1
            return
        counts[key] = 1
        for child in node.children():
            walk(child)
        order.append(node)

    for root in _expr_roots(module):
        walk(root)

    names = {}
    defs = []
    for node in order:
        if counts[id(node)] < 2 or isinstance(node, (Const, Signal)):
            continue
        name = "_x%d" % len(defs)
        names[id(node)] = name
        defs.append((name, node.width, node))
    return names, defs


def _range(width):
    return "" if width == 1 else "[%d:0] " % (width - 1)


def emit_verilog(module, share_wires=False):
    """Render *module* (flattened) as a structural Verilog string.

    With *share_wires* every multiply-referenced subexpression is
    emitted once as a named wire (``_xN``) instead of being inlined at
    each reference — required for optimized designs, whose CSE'd
    expression DAGs would otherwise expand exponentially into text.
    The default (off) keeps the historical inline emission, so ``-O0``
    output stays byte-identical.
    """
    flat = flatten(module) if module.instances else module
    names = None
    shared_defs = []
    if share_wires:
        names, shared_defs = _shared_wires(flat)
    lines = []
    ports = ["clk"]
    ports += [_vname(s.name) for s in flat.inputs]
    ports += [_vname(s.name) for s in flat.outputs]
    lines.append("module %s (" % _vname(flat.name))
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    lines.append("  input clk;")

    output_names = {s.name for s in flat.outputs}
    for sig in flat.inputs:
        lines.append("  input %s%s;" % (_range(sig.width), _vname(sig.name)))
    for sig in flat.signals.values():
        if sig.kind == "input":
            continue
        direction = "output " if sig.name in output_names else ""
        storage = "reg" if sig.kind == "reg" else "wire"
        lines.append("  %s%s %s%s;" % (
            direction, storage, _range(sig.width), _vname(sig.name)))

    for mem in flat.memories.values():
        addr_bits = max(1, (mem.depth - 1).bit_length())
        lines.append("  reg %s%s [0:%d]; // %d-bit addr" % (
            _range(mem.width), _vname(mem.name), mem.depth - 1, addr_bits))

    if shared_defs:
        lines.append("")
        lines.append("  // shared subexpressions (CSE)")
        for name, width, node in shared_defs:
            lines.append("  wire %s%s;" % (_range(width), name))
            lines.append("  assign %s = %s;" % (
                name, _emit_node(node, names)))

    lines.append("")
    for target, expr in flat.comb_assigns.items():
        lines.append("  assign %s = %s;" % (
            _vname(target.name), _emit_expr(expr, names)))

    if flat.sync_assigns or flat.mem_writes:
        lines.append("")
        lines.append("  always @(posedge clk) begin")
        for target, expr in flat.sync_assigns.items():
            lines.append("    %s <= %s;" % (
                _vname(target.name), _emit_expr(expr, names)))
        for mw in flat.mem_writes:
            lines.append("    if (%s) %s[%s] <= %s;" % (
                _emit_expr(mw.enable, names), _vname(mw.memory.name),
                _emit_expr(mw.addr, names), _emit_expr(mw.data, names)))
        lines.append("  end")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"
