"""Structural Verilog emission (workflow step B1 of Fig. 1).

The paper's pipeline ends in Verilog consumed by Xilinx Vivado.  We emit
equivalent structural Verilog-2001 from the netlist IR so the workflow is
complete end-to-end; the text is also used by tests to check that
compiled designs have the expected shape (module ports, always blocks).
"""

from repro.rtl.expr import BinOp, Concat, Const, MemRead, Mux, Slice, UnOp
from repro.rtl.module import flatten
from repro.rtl.signal import Signal

_BIN_VERILOG = {
    "+": "+", "-": "-", "*": "*", "&": "&", "|": "|", "^": "^",
    "<<": "<<", ">>": ">>", "/": "/", "%": "%",
    "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}


def _vname(name):
    return name.replace(".", "__")


def _emit_expr(expr):
    if isinstance(expr, Const):
        return "%d'd%d" % (expr.width, expr.value)
    if isinstance(expr, Signal):
        return _vname(expr.name)
    if isinstance(expr, BinOp):
        return "(%s %s %s)" % (
            _emit_expr(expr.lhs), _BIN_VERILOG[expr.op], _emit_expr(expr.rhs))
    if isinstance(expr, UnOp):
        inner = _emit_expr(expr.operand)
        if expr.op == "~":
            return "(~%s)" % inner
        if expr.op == "|r":
            return "(|%s)" % inner
        if expr.op == "&r":
            return "(&%s)" % inner
        if expr.op == "^r":
            return "(^%s)" % inner
        if expr.op == "!":
            return "(!%s)" % inner
    if isinstance(expr, Mux):
        return "(%s ? %s : %s)" % (
            _emit_expr(expr.sel), _emit_expr(expr.if_true),
            _emit_expr(expr.if_false))
    if isinstance(expr, Slice):
        if expr.msb == expr.lsb:
            return "%s[%d]" % (_emit_expr(expr.operand), expr.lsb)
        return "%s[%d:%d]" % (_emit_expr(expr.operand), expr.msb, expr.lsb)
    if isinstance(expr, Concat):
        return "{%s}" % ", ".join(_emit_expr(p) for p in expr.parts)
    if isinstance(expr, MemRead):
        return "%s[%s]" % (_vname(expr.memory.name), _emit_expr(expr.addr))
    raise TypeError("cannot emit %r" % (expr,))


def _range(width):
    return "" if width == 1 else "[%d:0] " % (width - 1)


def emit_verilog(module):
    """Render *module* (flattened) as a structural Verilog string."""
    flat = flatten(module) if module.instances else module
    lines = []
    ports = ["clk"]
    ports += [_vname(s.name) for s in flat.inputs]
    ports += [_vname(s.name) for s in flat.outputs]
    lines.append("module %s (" % _vname(flat.name))
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    lines.append("  input clk;")

    output_names = {s.name for s in flat.outputs}
    for sig in flat.inputs:
        lines.append("  input %s%s;" % (_range(sig.width), _vname(sig.name)))
    for sig in flat.signals.values():
        if sig.kind == "input":
            continue
        direction = "output " if sig.name in output_names else ""
        storage = "reg" if sig.kind == "reg" else "wire"
        lines.append("  %s%s %s%s;" % (
            direction, storage, _range(sig.width), _vname(sig.name)))

    for mem in flat.memories.values():
        addr_bits = max(1, (mem.depth - 1).bit_length())
        lines.append("  reg %s%s [0:%d]; // %d-bit addr" % (
            _range(mem.width), _vname(mem.name), mem.depth - 1, addr_bits))

    lines.append("")
    for target, expr in flat.comb_assigns.items():
        lines.append("  assign %s = %s;" % (
            _vname(target.name), _emit_expr(expr)))

    if flat.sync_assigns or flat.mem_writes:
        lines.append("")
        lines.append("  always @(posedge clk) begin")
        for target, expr in flat.sync_assigns.items():
            lines.append("    %s <= %s;" % (
                _vname(target.name), _emit_expr(expr)))
        for mw in flat.mem_writes:
            lines.append("    if (%s) %s[%s] <= %s;" % (
                _emit_expr(mw.enable), _vname(mw.memory.name),
                _emit_expr(mw.addr), _emit_expr(mw.data)))
        lines.append("  end")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"
