"""FPGA resource estimation.

The paper reports "logic resources" and "memory resources" for the main
logical core of each design (Table 3) and relative utilisation for the
debug controller (Table 5).  We estimate the same quantities from the
netlist using a conventional LUT/FF cost model:

* adders/subtractors/comparators: ~1 LUT per bit (carry chains),
* multipliers: ``w*w/4`` LUTs (no DSP blocks in the model),
* muxes: 1 LUT per 2:1 mux bit,
* bitwise ops: 1 LUT per bit (usually absorbed, we charge half),
* registers: 1 FF per bit; logic resources count LUTs, memory resources
  count BRAM-equivalent blocks (18 kbit each); small memories map to
  LUTRAM and are charged to logic.

Black-box IP (e.g. the CAM) advertises its own cost through module
``attributes`` — mirroring how the paper attributes 85% of the Emu
switch's resources to the CAM IP block.

Absolute numbers are *estimates*; the experiments compare ratios between
designs built with the same model, which is what Table 3/5 show.
"""

from repro.rtl.expr import BinOp, Concat, Const, MemRead, Mux, Slice, UnOp

from repro.rtl.signal import Signal

BRAM_BITS = 18 * 1024
LUTRAM_THRESHOLD_BITS = 1024
CAM_LUTS_PER_CELL_BIT = 0.22  # match-line + storage per searchable bit


class ResourceReport:
    """Resource totals for one design."""

    def __init__(self, name):
        self.name = name
        self.luts = 0.0
        self.ffs = 0
        self.brams = 0
        self.lutram_bits = 0
        self.ip_mem_units = 0
        self.breakdown = {}

    @property
    def logic(self):
        """Paper's "logic resources": LUT-equivalents (incl. LUTRAM)."""
        return int(round(self.luts + self.lutram_bits / 32.0))

    @property
    def memory(self):
        """Paper's "memory resources" (its unit is unspecified): BRAM18
        quarter-blocks + 512-bit distributed-RAM units + IP-block RAM
        units, so small designs still get a non-zero, comparable count.
        """
        return int(self.brams * 4 + self.lutram_bits // 512 +
                   self.ip_mem_units)

    def add(self, category, luts=0.0, ffs=0, brams=0, lutram_bits=0,
            ip_mem_units=0):
        self.luts += luts
        self.ffs += ffs
        self.brams += brams
        self.lutram_bits += lutram_bits
        self.ip_mem_units += ip_mem_units
        entry = self.breakdown.setdefault(
            category, {"luts": 0.0, "ffs": 0, "brams": 0,
                       "lutram_bits": 0, "ip_mem_units": 0})
        entry["luts"] += luts
        entry["ffs"] += ffs
        entry["brams"] += brams
        entry["lutram_bits"] += lutram_bits
        entry["ip_mem_units"] += ip_mem_units

    def merge(self, other):
        for category, entry in other.breakdown.items():
            self.add(category, entry["luts"], entry["ffs"],
                     entry["brams"], entry["lutram_bits"],
                     entry["ip_mem_units"])

    def __repr__(self):
        return ("ResourceReport(%s: logic=%d, ffs=%d, memory=%d)"
                % (self.name, self.logic, self.ffs, self.memory))


def _expr_luts(expr, seen=None):
    """LUT cost of one expression DAG.

    Expressions are shared liberally (store-forwarding, if-conversion),
    and a synthesiser emits shared logic once — so nodes are counted by
    identity, not per reference.
    """
    if seen is None:
        seen = set()
    if id(expr) in seen:
        return 0.0
    seen.add(id(expr))
    if isinstance(expr, (Const, Signal)):
        return 0.0
    if isinstance(expr, BinOp):
        cost = _expr_luts(expr.lhs, seen) + _expr_luts(expr.rhs, seen)
        w = expr.lhs.width
        op = expr.op
        if op in ("+", "-"):
            cost += w
        elif op == "*":
            cost += max(1.0, (w * w) / 4.0)
        elif op in ("==", "!="):
            cost += max(1.0, w / 2.0)
        elif op in ("<", "<=", ">", ">="):
            cost += w
        elif op in ("&", "|", "^"):
            cost += w / 2.0
        elif op in ("<<", ">>"):
            # Barrel shifter if the amount is dynamic; free if constant.
            if isinstance(expr.rhs, Const):
                cost += 0.0
            else:
                stages = max(1, expr.rhs.width)
                cost += expr.width * stages / 2.0
        elif op in ("/", "%"):
            cost += w * w / 2.0
        return cost
    if isinstance(expr, UnOp):
        cost = _expr_luts(expr.operand, seen)
        if expr.op == "~":
            cost += expr.width / 4.0
        else:  # reductions
            cost += max(1.0, expr.operand.width / 6.0)
        return cost
    if isinstance(expr, Mux):
        return (_expr_luts(expr.sel, seen) + _expr_luts(expr.if_true, seen) +
                _expr_luts(expr.if_false, seen) + expr.width / 2.0)
    if isinstance(expr, Slice):
        return _expr_luts(expr.operand, seen)
    if isinstance(expr, Concat):
        return sum(_expr_luts(p, seen) for p in expr.parts)
    if isinstance(expr, MemRead):
        # Async read implies LUTRAM; the array itself is charged once in
        # the memory pass, the read mux is roughly free.
        return _expr_luts(expr.addr, seen)
    return 0.0


def estimate_resources(module, name=None):
    """Estimate resources of *module*, hierarchically.

    IP blocks (modules with ``is_ip_block`` and an ``ip_logic_luts``
    advertisement) are priced by their dedicated-cell cost rather than
    by synthesising their behavioural netlist to fabric — a CAM's
    match lines are hard cells, not LUT comparators.  Everything else
    is costed from its netlist.
    """
    report = ResourceReport(name or module.name)
    if module.attributes.get("is_ip_block") and \
            "ip_logic_luts" in module.attributes:
        report.add("ip_block:%s" % module.name,
                   luts=module.attributes["ip_logic_luts"],
                   ffs=module.attributes.get("ip_ffs", 0),
                   brams=module.attributes.get("ip_brams", 0),
                   ip_mem_units=module.attributes.get("ip_mem_units", 0))
        return report
    _estimate_shallow(module, report)
    for inst in module.instances:
        child = inst.module
        if child.attributes.get("is_ip_block") and \
                "ip_logic_luts" in child.attributes:
            report.add("ip_block:%s" % child.name,
                       luts=child.attributes["ip_logic_luts"],
                       ffs=child.attributes.get("ip_ffs", 0),
                       brams=child.attributes.get("ip_brams", 0),
                       ip_mem_units=child.attributes.get(
                           "ip_mem_units", 0))
        else:
            report.merge(estimate_resources(child))
    return report


def _estimate_shallow(module, report):
    """Cost of one module's own logic (instances excluded)."""
    flat = module

    # One identity set for the whole module: logic shared between
    # assignments (common subexpressions) is synthesised once.
    seen = set()
    for expr in flat.comb_assigns.values():
        report.add("comb_logic", luts=_expr_luts(expr, seen))
    for reg, expr in flat.sync_assigns.items():
        report.add("seq_logic", luts=_expr_luts(expr, seen), ffs=reg.width)
    for reg in flat.signals.values():
        if reg.kind == "reg" and reg not in flat.sync_assigns:
            report.add("state", ffs=reg.width)
    for mw in flat.mem_writes:
        report.add("mem_ports",
                   luts=_expr_luts(mw.addr, seen) +
                   _expr_luts(mw.data, seen) +
                   _expr_luts(mw.enable, seen) + 2.0)

    for mem in flat.memories.values():
        bits = mem.width * mem.depth
        if bits <= LUTRAM_THRESHOLD_BITS:
            report.add("lutram", lutram_bits=bits)
        else:
            report.add("bram", brams=-(-bits // BRAM_BITS))  # ceil

    cam_cells = flat.attributes.get("cam_cell_bits", 0)
    if cam_cells:
        report.add("cam_ip", luts=cam_cells * CAM_LUTS_PER_CELL_BIT)
    extra_luts = flat.attributes.get("blackbox_luts", 0)
    if extra_luts:
        report.add("blackbox", luts=extra_luts)
    extra_brams = flat.attributes.get("blackbox_brams", 0)
    if extra_brams:
        report.add("blackbox", brams=extra_brams)
