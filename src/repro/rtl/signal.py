"""Signals: the leaves of the expression IR.

A :class:`Signal` is a named, fixed-width net.  Its *kind* determines how
the simulator treats it:

* ``input``  — driven from outside the module each cycle,
* ``wire``   — driven by exactly one combinational assignment,
* ``reg``    — state element, updated at the clock edge.

Outputs are just wires (or regs) marked as ports on the module.
"""

from repro.errors import WidthError
from repro.rtl.expr import Expr


class Signal(Expr):
    """A named net with a fixed width."""

    __slots__ = ("name", "width", "kind", "init")

    KINDS = ("input", "wire", "reg")

    def __init__(self, name, width, kind="wire", init=0):
        if width <= 0:
            raise WidthError("signal %r width must be positive" % name)
        if kind not in self.KINDS:
            raise WidthError("signal %r has unknown kind %r" % (name, kind))
        self.name = name
        self.width = width
        self.kind = kind
        self.init = init & ((1 << width) - 1)

    def children(self):
        return ()

    def _key(self):
        # A signal is a physical net: identity, not structure.  Two
        # same-named signals in different modules are different wires.
        return ("sig", self)

    def __repr__(self):
        return "%s<%d>" % (self.name, self.width)
