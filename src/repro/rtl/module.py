"""Netlist modules.

A :class:`Module` owns signals, memories, combinational assignments,
sequential (clocked) assignments, memory write ports and submodule
instances.  There is one implicit clock; reset is modelled by signal
``init`` values, as in the NetFPGA reference designs.

The builder API is deliberately small; both hand-written baselines
(:mod:`repro.baselines`) and the Kiwi code generator
(:mod:`repro.kiwi.codegen`) target it.
"""

from repro.errors import SimulationError, WidthError
from repro.rtl.expr import Expr, MemRead, to_expr
from repro.rtl.signal import Signal


class Memory:
    """A word-addressed memory array (BRAM/LUTRAM in the resource model)."""

    __slots__ = ("name", "width", "depth", "init")

    def __init__(self, name, width, depth, init=None):
        if width <= 0 or depth <= 0:
            raise WidthError("memory %r needs positive width/depth" % name)
        self.name = name
        self.width = width
        self.depth = depth
        self.init = list(init) if init is not None else [0] * depth
        if len(self.init) != depth:
            raise WidthError("memory %r init length mismatch" % name)

    def read(self, addr):
        """Build an asynchronous read expression (LUTRAM-style)."""
        return MemRead(self, addr)

    def __repr__(self):
        return "Memory(%s, %dx%d)" % (self.name, self.depth, self.width)


class MemWrite:
    """A clocked memory write port: ``if (en) mem[addr] <= data``."""

    __slots__ = ("memory", "addr", "data", "enable")

    def __init__(self, memory, addr, data, enable):
        if data.width != memory.width:
            raise WidthError(
                "write data width %d != memory width %d"
                % (data.width, memory.width)
            )
        self.memory = memory
        self.addr = addr
        self.data = data
        self.enable = enable


class Instance:
    """A submodule instantiation with port bindings.

    *connections* maps the child's port names to parent expressions
    (for child inputs) or parent wire signals (for child outputs).
    """

    __slots__ = ("name", "module", "connections")

    def __init__(self, name, module, connections):
        self.name = name
        self.module = module
        self.connections = dict(connections)


class Module:
    """A synthesisable netlist: the unit of compilation and simulation."""

    def __init__(self, name):
        self.name = name
        self.signals = {}
        self.inputs = []
        self.outputs = []
        self.memories = {}
        self.comb_assigns = {}   # Signal -> Expr
        self.sync_assigns = {}   # Signal -> Expr (next-state)
        self.mem_writes = []     # [MemWrite]
        self.instances = []      # [Instance]
        # Free-form attributes the resource estimator understands
        # (e.g. {"cam_cells": 256}) for black-box IP accounting.
        self.attributes = {}

    # -- declaration ------------------------------------------------------

    def _add_signal(self, name, width, kind, init=0):
        if name in self.signals:
            raise WidthError("duplicate signal %r in %s" % (name, self.name))
        sig = Signal(name, width, kind, init)
        self.signals[name] = sig
        return sig

    def input(self, name, width):
        sig = self._add_signal(name, width, "input")
        self.inputs.append(sig)
        return sig

    def output(self, name, width):
        """Declare an output port backed by a wire."""
        sig = self._add_signal(name, width, "wire")
        self.outputs.append(sig)
        return sig

    def output_reg(self, name, width, init=0):
        """Declare an output port backed by a register."""
        sig = self._add_signal(name, width, "reg", init)
        self.outputs.append(sig)
        return sig

    def wire(self, name, width):
        return self._add_signal(name, width, "wire")

    def reg(self, name, width, init=0):
        return self._add_signal(name, width, "reg", init)

    def memory(self, name, width, depth, init=None):
        if name in self.memories:
            raise WidthError("duplicate memory %r in %s" % (name, self.name))
        mem = Memory("%s.%s" % (self.name, name), width, depth, init)
        self.memories[name] = mem
        return mem

    # -- behaviour --------------------------------------------------------

    def comb(self, target, expr):
        """Continuous assignment ``assign target = expr``."""
        expr = to_expr(expr, target.width)
        if target.kind != "wire":
            raise SimulationError(
                "comb target %r must be a wire, is %s" % (target, target.kind)
            )
        if target in self.comb_assigns:
            raise SimulationError("wire %r has multiple drivers" % target)
        if expr.width != target.width:
            raise WidthError(
                "comb width mismatch on %r: %d vs %d"
                % (target, target.width, expr.width)
            )
        self.comb_assigns[target] = expr

    def sync(self, target, expr):
        """Clocked assignment ``target <= expr`` at every posedge."""
        expr = to_expr(expr, target.width)
        if target.kind != "reg":
            raise SimulationError(
                "sync target %r must be a reg, is %s" % (target, target.kind)
            )
        if target in self.sync_assigns:
            raise SimulationError("reg %r has multiple drivers" % target)
        if expr.width != target.width:
            raise WidthError(
                "sync width mismatch on %r: %d vs %d"
                % (target, target.width, expr.width)
            )
        self.sync_assigns[target] = expr

    def write_port(self, memory, addr, data, enable):
        """Add a clocked write port to *memory*."""
        addr = to_expr(addr, max(1, (memory.depth - 1).bit_length()))
        data = to_expr(data, memory.width)
        enable = to_expr(enable, 1)
        self.mem_writes.append(MemWrite(memory, addr, data, enable))

    def instantiate(self, name, module, **connections):
        """Instantiate *module* as a child named *name*."""
        for port_name in connections:
            if port_name not in module.signals:
                raise WidthError(
                    "module %s has no port %r" % (module.name, port_name)
                )
        inst = Instance(name, module, connections)
        self.instances.append(inst)
        return inst

    # -- introspection ----------------------------------------------------

    def all_regs(self):
        return [s for s in self.signals.values() if s.kind == "reg"]

    def all_wires(self):
        return [s for s in self.signals.values() if s.kind == "wire"]

    def __repr__(self):
        return "Module(%s: %d signals, %d instances)" % (
            self.name, len(self.signals), len(self.instances))


def flatten(module, prefix=""):
    """Flatten a module hierarchy into a single :class:`Module`.

    Child signals are renamed ``<instname>.<signame>``; port bindings
    become combinational aliases.  The result has no instances and is what
    the simulator and resource estimator actually consume.
    """
    flat = Module(module.name if not prefix else prefix.rstrip("."))
    _flatten_into(flat, module, prefix)
    return flat


def _flatten_into(flat, module, prefix):
    rename = {}
    for sig in module.signals.values():
        new = Signal(prefix + sig.name, sig.width, sig.kind, sig.init)
        flat.signals[new.name] = new
        rename[sig] = new
        if not prefix:
            if sig in module.inputs:
                flat.inputs.append(new)
            if sig in module.outputs:
                flat.outputs.append(new)

    mem_rename = {}
    for key, mem in module.memories.items():
        new_mem = Memory(prefix + mem.name, mem.width, mem.depth, mem.init)
        flat.memories[prefix + key] = new_mem
        mem_rename[mem] = new_mem

    rewrite_cache = {}

    def rewrite(expr):
        # Memoised by identity: shared sub-DAGs must stay shared.
        cached = rewrite_cache.get(id(expr))
        if cached is None:
            cached = _rewrite(expr)
            rewrite_cache[id(expr)] = cached
        return cached

    def _rewrite(expr):
        from repro.rtl.expr import (
            BinOp, Concat, Const, MemRead, Mux, Slice, UnOp,
        )
        if isinstance(expr, Signal):
            return rename.get(expr, expr)
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, BinOp):
            node = BinOp.__new__(BinOp)
            node.op = expr.op
            node.lhs = rewrite(expr.lhs)
            node.rhs = rewrite(expr.rhs)
            node.width = expr.width
            return node
        if isinstance(expr, UnOp):
            return UnOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, Mux):
            return Mux(rewrite(expr.sel), rewrite(expr.if_true),
                       rewrite(expr.if_false))
        if isinstance(expr, Slice):
            return Slice(rewrite(expr.operand), expr.msb, expr.lsb)
        if isinstance(expr, Concat):
            return Concat([rewrite(p) for p in expr.parts])
        if isinstance(expr, MemRead):
            return MemRead(mem_rename.get(expr.memory, expr.memory),
                           rewrite(expr.addr))
        raise SimulationError("unknown expression node %r" % (expr,))

    for target, expr in module.comb_assigns.items():
        flat.comb_assigns[rename[target]] = rewrite(expr)
    for target, expr in module.sync_assigns.items():
        flat.sync_assigns[rename[target]] = rewrite(expr)
    for mw in module.mem_writes:
        flat.mem_writes.append(MemWrite(
            mem_rename[mw.memory], rewrite(mw.addr), rewrite(mw.data),
            rewrite(mw.enable)))
    for key, value in module.attributes.items():
        flat.attributes[key] = flat.attributes.get(key, 0) + value \
            if isinstance(value, (int, float)) else value

    for inst in module.instances:
        child_prefix = prefix + inst.name + "."
        _flatten_into(flat, inst.module, child_prefix)
        for port_name, parent_expr in inst.connections.items():
            child_sig = flat.signals[child_prefix + port_name]
            port = inst.module.signals[port_name]
            if port.kind == "input":
                # Parent drives the child's input.
                expr = rewrite(parent_expr) if isinstance(parent_expr, Expr) \
                    else to_expr(parent_expr, child_sig.width)
                # Child input becomes a wire driven by the parent expr.
                alias = Signal(child_sig.name, child_sig.width, "wire")
                flat.signals[alias.name] = alias
                flat.comb_assigns[alias] = expr
                _rebind(flat, child_sig, alias)
            else:
                # Child drives the parent's wire.
                parent_sig = rewrite(parent_expr)
                if not isinstance(parent_sig, Signal):
                    raise SimulationError(
                        "output port %r must bind to a signal" % port_name)
                child_ref = flat.signals[child_prefix + port_name]
                if parent_sig.kind != "wire":
                    raise SimulationError(
                        "output binding %r must be a wire" % parent_sig)
                flat.comb_assigns[parent_sig] = child_ref
    return flat


def _rebind(flat, old_sig, new_sig):
    """Replace references to *old_sig* with *new_sig* in all expressions."""
    swap_cache = {}

    def swap(expr):
        cached = swap_cache.get(id(expr))
        if cached is None:
            cached = _swap(expr)
            swap_cache[id(expr)] = cached
        return cached

    def _swap(expr):
        from repro.rtl.expr import (
            BinOp, Concat, Const, MemRead, Mux, Slice, UnOp,
        )
        if expr is old_sig:
            return new_sig
        if isinstance(expr, (Signal, Const)):
            return expr
        if isinstance(expr, BinOp):
            node = BinOp.__new__(BinOp)
            node.op = expr.op
            node.lhs = swap(expr.lhs)
            node.rhs = swap(expr.rhs)
            node.width = expr.width
            return node
        if isinstance(expr, UnOp):
            return UnOp(expr.op, swap(expr.operand))
        if isinstance(expr, Mux):
            return Mux(swap(expr.sel), swap(expr.if_true),
                       swap(expr.if_false))
        if isinstance(expr, Slice):
            return Slice(swap(expr.operand), expr.msb, expr.lsb)
        if isinstance(expr, Concat):
            return Concat([swap(p) for p in expr.parts])
        if isinstance(expr, MemRead):
            return MemRead(expr.memory, swap(expr.addr))
        return expr

    for target in list(flat.comb_assigns):
        flat.comb_assigns[target] = swap(flat.comb_assigns[target])
    for target in list(flat.sync_assigns):
        flat.sync_assigns[target] = swap(flat.sync_assigns[target])
    for mw in flat.mem_writes:
        mw.addr = swap(mw.addr)
        mw.data = swap(mw.data)
        mw.enable = swap(mw.enable)
