"""Register-transfer-level substrate.

The paper's toolchain ends in Verilog simulated/synthesised by Xilinx
tools; we have neither, so this package *is* the hardware substrate:

* :mod:`repro.rtl.expr` — combinational expression IR with operator
  overloading (add/mux/slice/concat/…).
* :mod:`repro.rtl.signal` — wires and registers.
* :mod:`repro.rtl.module` — netlist container: combinational and
  sequential assignments, memories, submodule instances.
* :mod:`repro.rtl.simulator` — two-phase cycle-accurate simulator.
* :mod:`repro.rtl.resources` — LUT/FF/BRAM-equivalent estimator used for
  the paper's "logic resources / memory resources" comparisons (Table 3,
  Table 5).
* :mod:`repro.rtl.verilog` — structural Verilog text emission (workflow
  step B1 in Fig. 1).
"""

from repro.rtl.expr import (
    Expr, Const, BinOp, UnOp, Mux, Slice, Concat, MemRead, const, mux,
    cat, reduce_or, reduce_and, eq_any,
)
from repro.rtl.signal import Signal
from repro.rtl.module import Module, Memory, Instance
from repro.rtl.simulator import Simulator
from repro.rtl.resources import ResourceReport, estimate_resources
from repro.rtl.verilog import emit_verilog

__all__ = [
    "Expr", "Const", "BinOp", "UnOp", "Mux", "Slice", "Concat", "MemRead",
    "const", "mux", "cat", "reduce_or", "reduce_and", "eq_any",
    "Signal", "Module", "Memory", "Instance", "Simulator",
    "ResourceReport", "estimate_resources", "emit_verilog",
]
