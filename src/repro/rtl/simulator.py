"""Two-phase cycle-accurate netlist simulator.

Semantics match a synchronous Verilog simulation with a single clock:

1. *Settle* phase — evaluate every combinational assignment in
   topological order (a combinational loop is an error, as it would be
   for synthesis).
2. *Clock edge* — compute all register next-states and memory writes from
   the settled values, then commit them atomically.

Inputs are poked between cycles with :meth:`Simulator.poke`; outputs and
internal nets are read with :meth:`Simulator.peek`.
"""

from repro.errors import SimulationError, SimulationTimeout, WidthError
from repro.rtl.expr import (
    BinOp, Concat, Const, MemRead, Mux, Slice, UnOp, eval_binop,
    eval_unop,
)
from repro.rtl.module import flatten
from repro.rtl.signal import Signal


def _mask(width):
    return (1 << width) - 1


class Simulator:
    """Cycle simulator for a (possibly hierarchical) :class:`Module`."""

    def __init__(self, module):
        self.module = flatten(module) if module.instances else module
        self._values = {}
        self._mems = {}
        for sig in self.module.signals.values():
            self._values[sig] = sig.init if sig.kind == "reg" else 0
        for mem in self.module.memories.values():
            self._mems[mem] = list(mem.init)
        self._order = self._schedule()
        self.cycle = 0
        self._settled = False
        # Per-settle-pass memo of expression values, keyed by node
        # identity.  Expressions are shared DAGs; without the memo one
        # settle pass can re-evaluate a node exponentially often.
        self._memo = {}

    # -- combinational scheduling ----------------------------------------

    def _schedule(self):
        """Topologically sort comb assignments by wire→wire dependency."""
        assigns = self.module.comb_assigns
        deps = {}
        for target, expr in assigns.items():
            deps[target] = {
                s for s in expr.signals()
                if s.kind == "wire" and s in assigns
            }
        order = []
        ready = [t for t, d in deps.items() if not d]
        remaining = {t: set(d) for t, d in deps.items() if d}
        dependants = {}
        for target, d in remaining.items():
            for dep in d:
                dependants.setdefault(dep, []).append(target)
        while ready:
            target = ready.pop()
            order.append(target)
            for user in dependants.get(target, ()):  # wires waiting on us
                pending = remaining.get(user)
                if pending is None:
                    continue
                pending.discard(target)
                if not pending:
                    del remaining[user]
                    ready.append(user)
        if remaining:
            names = ", ".join(sorted(t.name for t in remaining))
            raise SimulationError("combinational loop through: %s" % names)
        return order

    # -- expression evaluation -------------------------------------------

    def _eval(self, expr):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Signal):
            return self._values[expr]
        memo = self._memo
        key = id(expr)
        cached = memo.get(key)
        if cached is not None:
            return cached
        value = self._eval_inner(expr)
        memo[key] = value
        return value

    def _eval_inner(self, expr):
        # Operator arithmetic is shared with the optimizer's constant
        # folder (repro.rtl.expr.eval_binop/eval_unop): one source of
        # truth, so folding can never diverge from simulation.
        if isinstance(expr, BinOp):
            lhs = self._eval(expr.lhs)
            rhs = self._eval(expr.rhs)
            try:
                return eval_binop(expr.op, lhs, rhs, expr.width)
            except WidthError:
                raise SimulationError("unknown operator %r" % expr.op)
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand)
            try:
                return eval_unop(expr.op, value, expr.operand.width,
                                 expr.width)
            except WidthError:
                raise SimulationError("unknown unary %r" % expr.op)
        if isinstance(expr, Mux):
            return self._eval(expr.if_true) if self._eval(expr.sel) \
                else self._eval(expr.if_false)
        if isinstance(expr, Slice):
            value = self._eval(expr.operand)
            return (value >> expr.lsb) & _mask(expr.width)
        if isinstance(expr, Concat):
            value = 0
            for part in expr.parts:
                value = (value << part.width) | self._eval(part)
            return value
        if isinstance(expr, MemRead):
            addr = self._eval(expr.addr)
            array = self._mems[expr.memory]
            return array[addr] if addr < len(array) else 0
        raise SimulationError("cannot evaluate %r" % (expr,))

    # -- public API --------------------------------------------------------

    def poke(self, signal, value):
        """Drive an input signal for the current cycle."""
        if isinstance(signal, str):
            signal = self.module.signals[signal]
        if signal.kind != "input":
            raise SimulationError("can only poke inputs, not %r" % signal)
        self._values[signal] = value & _mask(signal.width)
        self._settled = False

    def peek(self, signal):
        """Read any signal's settled value."""
        if isinstance(signal, str):
            signal = self.module.signals[signal]
        if not self._settled:
            self.settle()
        return self._values[signal]

    def peek_memory(self, memory, addr):
        """Read a memory word directly (test/debug backdoor)."""
        if isinstance(memory, str):
            memory = self.module.memories[memory]
        return self._mems[memory][addr]

    def poke_memory(self, memory, addr, value):
        """Write a memory word directly (test/debug backdoor)."""
        if isinstance(memory, str):
            memory = self.module.memories[memory]
        self._mems[memory][addr] = value & _mask(memory.width)

    def settle(self):
        """Propagate combinational logic for the current inputs."""
        self._memo.clear()
        for target in self._order:
            self._values[target] = self._eval(
                self.module.comb_assigns[target])
        self._settled = True

    def step(self, cycles=1):
        """Advance *cycles* clock edges."""
        for _ in range(cycles):
            if not self._settled:
                self.settle()
            next_regs = {
                reg: self._eval(expr)
                for reg, expr in self.module.sync_assigns.items()
            }
            mem_updates = []
            for mw in self.module.mem_writes:
                if self._eval(mw.enable):
                    addr = self._eval(mw.addr)
                    if addr < mw.memory.depth:
                        mem_updates.append(
                            (mw.memory, addr, self._eval(mw.data)))
            for reg, value in next_regs.items():
                self._values[reg] = value
            for memory, addr, value in mem_updates:
                self._mems[memory][addr] = value
            self.cycle += 1
            self._settled = False
        self.settle()

    def run_until(self, signal, value=1, max_cycles=10000):
        """Step until *signal* equals *value*; return cycles taken.

        Raises :class:`~repro.errors.SimulationTimeout` — naming the
        signal, the cycles spent, and the value it was stuck at — if
        *max_cycles* clock edges pass without a match.
        """
        if isinstance(signal, str):
            try:
                signal = self.module.signals[signal]
            except KeyError:
                raise SimulationError(
                    "module %s has no signal %r"
                    % (self.module.name, signal))
        start = self.cycle
        while self.peek(signal) != value:
            if self.cycle - start >= max_cycles:
                raise SimulationTimeout(
                    signal.name, value, self.cycle - start,
                    self.peek(signal))
            self.step()
        return self.cycle - start
