"""Combinational expression IR.

Expressions are immutable trees over signals and constants.  Widths are
explicit everywhere (hardware has no implicit promotion); arithmetic
results keep the operand width and wrap, exactly like a Verilog wire of
that width.  Comparison and reduction operators are 1-bit.
"""

from repro.errors import WidthError


def _mask(width):
    return (1 << width) - 1


class Key:
    """A structural-identity token returned by :meth:`Expr.key`.

    Expressions are DAGs with heavy sharing; a naive nested-tuple key
    would hash in time proportional to the *expanded tree* (exponential
    in the DAG depth) because tuples re-hash their elements every time.
    ``Key`` caches its hash at construction — children are ``Key``
    objects whose hashes are already cached, so hashing is O(arity) —
    and equality short-circuits on identity, so comparing keys built
    over shared subtrees never re-walks them.
    """

    __slots__ = ("parts", "_hash")

    def __init__(self, parts):
        self.parts = parts
        self._hash = hash(parts)

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        return (isinstance(other, Key) and self._hash == other._hash
                and self.parts == other.parts)

    def __ne__(self, other):
        return not self.__eq__(other)

    def __repr__(self):
        return "Key%r" % (self.parts,)


class Expr:
    """Base class for all combinational expressions."""

    width = None  # set by subclasses

    # -- operator sugar --------------------------------------------------

    def _bin(self, op, other, result_width=None):
        other = to_expr(other, self.width)
        return BinOp(op, self, other, result_width)

    def __add__(self, other):
        return self._bin("+", other)

    def __sub__(self, other):
        return self._bin("-", other)

    def __mul__(self, other):
        return self._bin("*", other)

    def __and__(self, other):
        return self._bin("&", other)

    def __or__(self, other):
        return self._bin("|", other)

    def __xor__(self, other):
        return self._bin("^", other)

    def __lshift__(self, other):
        return self._bin("<<", other)

    def __rshift__(self, other):
        return self._bin(">>", other)

    def __invert__(self):
        return UnOp("~", self)

    def eq(self, other):
        return self._bin("==", other, result_width=1)

    def ne(self, other):
        return self._bin("!=", other, result_width=1)

    def lt(self, other):
        return self._bin("<", other, result_width=1)

    def le(self, other):
        return self._bin("<=", other, result_width=1)

    def gt(self, other):
        return self._bin(">", other, result_width=1)

    def ge(self, other):
        return self._bin(">=", other, result_width=1)

    def __getitem__(self, key):
        if isinstance(key, int):
            return Slice(self, key, key)
        if isinstance(key, slice):
            if key.start is None or key.stop is None or key.step is not None:
                raise WidthError("expression slice must be expr[msb:lsb]")
            return Slice(self, key.start, key.stop)
        raise TypeError("index must be int or slice")

    # -- structural identity ----------------------------------------------

    def key(self):
        """A hashable structural key: two expressions have equal keys iff
        they compute the same function of the same leaves at the same
        width.  Widths are part of the key (an 8-bit and a 16-bit add of
        the same operands are different hardware).  The optimizer's CSE
        pass uses keys to share structurally-equal subtrees; see
        :func:`intern_expr`.
        """
        cached = getattr(self, "_key_cache", None)
        if cached is None:
            cached = Key(self._key())
            self._key_cache = cached
        return cached

    def _key(self):
        raise NotImplementedError("no structural key for %r" % (self,))

    # -- traversal --------------------------------------------------------

    def children(self):
        return ()

    def signals(self):
        """Yield every Signal referenced in this DAG (each node once)."""
        from repro.rtl.signal import Signal
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, Signal):
                yield node
            stack.extend(node.children())

    def mem_reads(self):
        """Yield every MemRead node in this DAG (each node once)."""
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, MemRead):
                yield node
            stack.extend(node.children())


class Const(Expr):
    """A literal with an explicit width."""

    __slots__ = ("value", "width")

    def __init__(self, value, width):
        if width <= 0:
            raise WidthError("constant width must be positive")
        self.width = width
        self.value = value & _mask(width)

    def _key(self):
        return ("const", self.width, self.value)

    def __repr__(self):
        return "%d'd%d" % (self.width, self.value)


class BinOp(Expr):
    """Binary operator; comparisons produce 1-bit results."""

    __slots__ = ("op", "lhs", "rhs", "width")

    _COMPARES = {"==", "!=", "<", "<=", ">", ">="}
    _SHIFTS = {"<<", ">>"}

    def __init__(self, op, lhs, rhs, result_width=None):
        if op not in self._COMPARES and op not in self._SHIFTS and \
                op not in {"+", "-", "*", "&", "|", "^", "/", "%"}:
            raise WidthError("unknown operator %r" % op)
        if op not in self._SHIFTS and lhs.width != rhs.width:
            raise WidthError(
                "operator %s width mismatch: %d vs %d"
                % (op, lhs.width, rhs.width)
            )
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        if result_width is not None:
            self.width = result_width
        elif op in self._COMPARES:
            self.width = 1
        else:
            self.width = lhs.width

    def children(self):
        return (self.lhs, self.rhs)

    def _key(self):
        return ("bin", self.op, self.width, self.lhs.key(), self.rhs.key())

    def __repr__(self):
        return "(%r %s %r)" % (self.lhs, self.op, self.rhs)


class UnOp(Expr):
    """Unary operator: bitwise not, reductions."""

    __slots__ = ("op", "operand", "width")

    def __init__(self, op, operand):
        if op not in {"~", "|r", "&r", "^r", "!"}:
            raise WidthError("unknown unary operator %r" % op)
        self.op = op
        self.operand = operand
        self.width = operand.width if op == "~" else 1

    def children(self):
        return (self.operand,)

    def _key(self):
        return ("un", self.op, self.width, self.operand.key())

    def __repr__(self):
        return "(%s %r)" % (self.op, self.operand)


class Mux(Expr):
    """2:1 multiplexer: ``sel ? if_true : if_false``."""

    __slots__ = ("sel", "if_true", "if_false", "width")

    def __init__(self, sel, if_true, if_false):
        if if_true.width != if_false.width:
            raise WidthError(
                "mux arm width mismatch: %d vs %d"
                % (if_true.width, if_false.width)
            )
        self.sel = sel
        self.if_true = if_true
        self.if_false = if_false
        self.width = if_true.width

    def children(self):
        return (self.sel, self.if_true, self.if_false)

    def _key(self):
        return ("mux", self.width, self.sel.key(), self.if_true.key(),
                self.if_false.key())

    def __repr__(self):
        return "(%r ? %r : %r)" % (self.sel, self.if_true, self.if_false)


class Slice(Expr):
    """Bit extraction ``expr[msb:lsb]`` (inclusive, Verilog style)."""

    __slots__ = ("operand", "msb", "lsb", "width")

    def __init__(self, operand, msb, lsb):
        if not 0 <= lsb <= msb < operand.width:
            raise WidthError(
                "slice [%d:%d] out of %d-bit value"
                % (msb, lsb, operand.width)
            )
        self.operand = operand
        self.msb = msb
        self.lsb = lsb
        self.width = msb - lsb + 1

    def children(self):
        return (self.operand,)

    def _key(self):
        return ("slice", self.msb, self.lsb, self.operand.key())

    def __repr__(self):
        return "%r[%d:%d]" % (self.operand, self.msb, self.lsb)


class Concat(Expr):
    """Bit concatenation ``{a, b, ...}``; first part is most significant."""

    __slots__ = ("parts", "width")

    def __init__(self, parts):
        parts = tuple(parts)
        if not parts:
            raise WidthError("cannot concatenate zero parts")
        self.parts = parts
        self.width = sum(p.width for p in parts)

    def children(self):
        return self.parts

    def _key(self):
        return ("cat",) + tuple(p.key() for p in self.parts)

    def __repr__(self):
        return "{%s}" % ", ".join(repr(p) for p in self.parts)


class MemRead(Expr):
    """Asynchronous (combinational) memory read port."""

    __slots__ = ("memory", "addr", "width")

    def __init__(self, memory, addr):
        self.memory = memory
        self.addr = addr
        self.width = memory.width

    def children(self):
        return (self.addr,)

    def _key(self):
        # Memories are unique objects (never structurally merged), so
        # identity is the right notion of "same memory".
        return ("memread", self.memory, self.addr.key())

    def __repr__(self):
        return "%s[%r]" % (self.memory.name, self.addr)


# -- convenience constructors ---------------------------------------------

def to_expr(value, width=None):
    """Coerce ints (given a width hint) into :class:`Const`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value), 1)
    if isinstance(value, int):
        if width is None:
            raise WidthError("cannot infer width for bare int %d" % value)
        return Const(value, width)
    raise WidthError("cannot convert %r to an expression" % (value,))


def const(value, width):
    return Const(value, width)


def mux(sel, if_true, if_false):
    sel = to_expr(sel, 1)
    if isinstance(if_true, int) and isinstance(if_false, Expr):
        if_true = to_expr(if_true, if_false.width)
    if isinstance(if_false, int) and isinstance(if_true, Expr):
        if_false = to_expr(if_false, if_true.width)
    return Mux(sel, if_true, if_false)


def cat(*parts):
    return Concat(parts)


def reduce_or(expr):
    return UnOp("|r", expr)


def reduce_and(expr):
    return UnOp("&r", expr)


def eval_binop(op, lhs, rhs, width):
    """Value of ``lhs op rhs`` at *width* — THE operator semantics.

    Both the cycle simulator and the optimizer's constant folder call
    this, so a folded constant is the value the simulator would have
    computed, by construction (including division by zero yielding 0
    and results wrapping at *width*).
    """
    if op == "+":
        return (lhs + rhs) & _mask(width)
    if op == "-":
        return (lhs - rhs) & _mask(width)
    if op == "*":
        return (lhs * rhs) & _mask(width)
    if op == "&":
        return lhs & rhs
    if op == "|":
        return lhs | rhs
    if op == "^":
        return lhs ^ rhs
    if op == "<<":
        return (lhs << rhs) & _mask(width)
    if op == ">>":
        return lhs >> rhs
    if op == "/":
        return (lhs // rhs) & _mask(width) if rhs else 0
    if op == "%":
        return (lhs % rhs) & _mask(width) if rhs else 0
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    raise WidthError("unknown operator %r" % op)


def eval_unop(op, value, operand_width, width):
    """Value of the unary ``op`` — shared like :func:`eval_binop`."""
    if op == "~":
        return ~value & _mask(width)
    if op == "|r":
        return int(value != 0)
    if op == "&r":
        return int(value == _mask(operand_width))
    if op == "^r":
        return bin(value).count("1") & 1
    if op == "!":
        return int(value == 0)
    raise WidthError("unknown unary operator %r" % op)


def intern_expr(expr, table, memo=None):
    """Canonicalise *expr* through *table* (a dict keyed by ``key()``).

    Rebuilds the tree bottom-up; every subtree structurally equal to one
    seen before is replaced by the first instance, so the result is a
    maximally-shared DAG.  Sharing matters because the simulator, the
    resource estimator and the Verilog emitter all treat expressions by
    identity — a shared node is one wire, not two copies.

    *memo* (id → canonical node) carries identity-sharing across several
    calls so repeated subtrees are only walked once.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(expr))
    if cached is not None:
        return cached
    children = expr.children()
    new_children = tuple(intern_expr(c, table, memo) for c in children)
    node = expr
    if any(a is not b for a, b in zip(children, new_children)):
        node = clone_with_children(expr, new_children)
    canonical = table.setdefault(node.key(), node)
    memo[id(expr)] = canonical
    return canonical


def clone_with_children(expr, children):
    """Copy *expr* with new children, preserving widths exactly."""
    from repro.rtl.signal import Signal
    if isinstance(expr, (Const, Signal)):
        return expr
    if isinstance(expr, BinOp):
        node = BinOp.__new__(BinOp)
        node.op = expr.op
        node.lhs, node.rhs = children
        node.width = expr.width
        return node
    if isinstance(expr, UnOp):
        return UnOp(expr.op, children[0])
    if isinstance(expr, Mux):
        return Mux(*children)
    if isinstance(expr, Slice):
        return Slice(children[0], expr.msb, expr.lsb)
    if isinstance(expr, Concat):
        return Concat(children)
    if isinstance(expr, MemRead):
        return MemRead(expr.memory, children[0])
    clone = getattr(expr, "_clone_with", None)   # builder-level nodes
    if clone is not None:
        return clone(children)
    raise WidthError("cannot clone expression %r" % (expr,))


def expr_depth(expr, memo=None):
    """Logic levels of an expression DAG (the timing proxy used by the
    :class:`~repro.kiwi.compiler.TimingReport` and by the optimizer's
    state-fusion budget).  Operators and muxes cost one level each."""
    if isinstance(expr, str):       # "__start__" placeholder
        return 0
    if memo is None:
        memo = {}
    cached = memo.get(id(expr))
    if cached is not None:
        return cached
    cost = 1 if isinstance(expr, (BinOp, Mux, UnOp)) else 0
    depth = cost + max((expr_depth(c, memo) for c in expr.children()),
                       default=0)
    memo[id(expr)] = depth
    return depth


def eq_any(expr, values):
    """1-bit expression: does *expr* equal any of the constant *values*?"""
    result = None
    for value in values:
        term = expr.eq(Const(value, expr.width))
        result = term if result is None else BinOp("|", result, term)
    if result is None:
        return Const(0, 1)
    return result
