"""Combinational expression IR.

Expressions are immutable trees over signals and constants.  Widths are
explicit everywhere (hardware has no implicit promotion); arithmetic
results keep the operand width and wrap, exactly like a Verilog wire of
that width.  Comparison and reduction operators are 1-bit.
"""

from repro.errors import WidthError


def _mask(width):
    return (1 << width) - 1


class Expr:
    """Base class for all combinational expressions."""

    width = None  # set by subclasses

    # -- operator sugar --------------------------------------------------

    def _bin(self, op, other, result_width=None):
        other = to_expr(other, self.width)
        return BinOp(op, self, other, result_width)

    def __add__(self, other):
        return self._bin("+", other)

    def __sub__(self, other):
        return self._bin("-", other)

    def __mul__(self, other):
        return self._bin("*", other)

    def __and__(self, other):
        return self._bin("&", other)

    def __or__(self, other):
        return self._bin("|", other)

    def __xor__(self, other):
        return self._bin("^", other)

    def __lshift__(self, other):
        return self._bin("<<", other)

    def __rshift__(self, other):
        return self._bin(">>", other)

    def __invert__(self):
        return UnOp("~", self)

    def eq(self, other):
        return self._bin("==", other, result_width=1)

    def ne(self, other):
        return self._bin("!=", other, result_width=1)

    def lt(self, other):
        return self._bin("<", other, result_width=1)

    def le(self, other):
        return self._bin("<=", other, result_width=1)

    def gt(self, other):
        return self._bin(">", other, result_width=1)

    def ge(self, other):
        return self._bin(">=", other, result_width=1)

    def __getitem__(self, key):
        if isinstance(key, int):
            return Slice(self, key, key)
        if isinstance(key, slice):
            if key.start is None or key.stop is None or key.step is not None:
                raise WidthError("expression slice must be expr[msb:lsb]")
            return Slice(self, key.start, key.stop)
        raise TypeError("index must be int or slice")

    # -- traversal --------------------------------------------------------

    def children(self):
        return ()

    def signals(self):
        """Yield every Signal referenced in this tree."""
        from repro.rtl.signal import Signal
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Signal):
                yield node
            stack.extend(node.children())

    def mem_reads(self):
        """Yield every MemRead node in this tree."""
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, MemRead):
                yield node
            stack.extend(node.children())


class Const(Expr):
    """A literal with an explicit width."""

    __slots__ = ("value", "width")

    def __init__(self, value, width):
        if width <= 0:
            raise WidthError("constant width must be positive")
        self.width = width
        self.value = value & _mask(width)

    def __repr__(self):
        return "%d'd%d" % (self.width, self.value)


class BinOp(Expr):
    """Binary operator; comparisons produce 1-bit results."""

    __slots__ = ("op", "lhs", "rhs", "width")

    _COMPARES = {"==", "!=", "<", "<=", ">", ">="}
    _SHIFTS = {"<<", ">>"}

    def __init__(self, op, lhs, rhs, result_width=None):
        if op not in self._COMPARES and op not in self._SHIFTS and \
                op not in {"+", "-", "*", "&", "|", "^", "/", "%"}:
            raise WidthError("unknown operator %r" % op)
        if op not in self._SHIFTS and lhs.width != rhs.width:
            raise WidthError(
                "operator %s width mismatch: %d vs %d"
                % (op, lhs.width, rhs.width)
            )
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        if result_width is not None:
            self.width = result_width
        elif op in self._COMPARES:
            self.width = 1
        else:
            self.width = lhs.width

    def children(self):
        return (self.lhs, self.rhs)

    def __repr__(self):
        return "(%r %s %r)" % (self.lhs, self.op, self.rhs)


class UnOp(Expr):
    """Unary operator: bitwise not, reductions."""

    __slots__ = ("op", "operand", "width")

    def __init__(self, op, operand):
        if op not in {"~", "|r", "&r", "^r", "!"}:
            raise WidthError("unknown unary operator %r" % op)
        self.op = op
        self.operand = operand
        self.width = operand.width if op == "~" else 1

    def children(self):
        return (self.operand,)

    def __repr__(self):
        return "(%s %r)" % (self.op, self.operand)


class Mux(Expr):
    """2:1 multiplexer: ``sel ? if_true : if_false``."""

    __slots__ = ("sel", "if_true", "if_false", "width")

    def __init__(self, sel, if_true, if_false):
        if if_true.width != if_false.width:
            raise WidthError(
                "mux arm width mismatch: %d vs %d"
                % (if_true.width, if_false.width)
            )
        self.sel = sel
        self.if_true = if_true
        self.if_false = if_false
        self.width = if_true.width

    def children(self):
        return (self.sel, self.if_true, self.if_false)

    def __repr__(self):
        return "(%r ? %r : %r)" % (self.sel, self.if_true, self.if_false)


class Slice(Expr):
    """Bit extraction ``expr[msb:lsb]`` (inclusive, Verilog style)."""

    __slots__ = ("operand", "msb", "lsb", "width")

    def __init__(self, operand, msb, lsb):
        if not 0 <= lsb <= msb < operand.width:
            raise WidthError(
                "slice [%d:%d] out of %d-bit value"
                % (msb, lsb, operand.width)
            )
        self.operand = operand
        self.msb = msb
        self.lsb = lsb
        self.width = msb - lsb + 1

    def children(self):
        return (self.operand,)

    def __repr__(self):
        return "%r[%d:%d]" % (self.operand, self.msb, self.lsb)


class Concat(Expr):
    """Bit concatenation ``{a, b, ...}``; first part is most significant."""

    __slots__ = ("parts", "width")

    def __init__(self, parts):
        parts = tuple(parts)
        if not parts:
            raise WidthError("cannot concatenate zero parts")
        self.parts = parts
        self.width = sum(p.width for p in parts)

    def children(self):
        return self.parts

    def __repr__(self):
        return "{%s}" % ", ".join(repr(p) for p in self.parts)


class MemRead(Expr):
    """Asynchronous (combinational) memory read port."""

    __slots__ = ("memory", "addr", "width")

    def __init__(self, memory, addr):
        self.memory = memory
        self.addr = addr
        self.width = memory.width

    def children(self):
        return (self.addr,)

    def __repr__(self):
        return "%s[%r]" % (self.memory.name, self.addr)


# -- convenience constructors ---------------------------------------------

def to_expr(value, width=None):
    """Coerce ints (given a width hint) into :class:`Const`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value), 1)
    if isinstance(value, int):
        if width is None:
            raise WidthError("cannot infer width for bare int %d" % value)
        return Const(value, width)
    raise WidthError("cannot convert %r to an expression" % (value,))


def const(value, width):
    return Const(value, width)


def mux(sel, if_true, if_false):
    sel = to_expr(sel, 1)
    if isinstance(if_true, int) and isinstance(if_false, Expr):
        if_true = to_expr(if_true, if_false.width)
    if isinstance(if_false, int) and isinstance(if_true, Expr):
        if_false = to_expr(if_false, if_true.width)
    return Mux(sel, if_true, if_false)


def cat(*parts):
    return Concat(parts)


def reduce_or(expr):
    return UnOp("|r", expr)


def reduce_and(expr):
    return UnOp("&r", expr)


def eq_any(expr, values):
    """1-bit expression: does *expr* equal any of the constant *values*?"""
    result = None
    for value in values:
        term = expr.eq(Const(value, expr.width))
        result = term if result is None else BinOp("|", result, term)
    if result is None:
        return Const(0, 1)
    return result
