"""The CASP machine: Counters, Arrays, Stored Procedures (§3.5).

"Commands are translated into programs that execute on a simple
controller embedded in the program.  We model the controller as a
counters, arrays, and stored procedures (CASP) machine."

The procedure language is computationally weak by construction:

* a small stack machine with no call instruction (no recursion),
* only *forward* jumps (so every procedure terminates),
* bounded arrays (trace buffers) and counters.

Procedures end with ``CONTINUE`` (return control to the host program)
or ``BREAK`` (stop the program — a breakpoint firing), exactly the two
outcomes in Fig. 7.
"""

from repro.errors import DirectionError


class Op:
    """Opcode names for CASP instructions."""

    PUSH_CONST = "push_const"
    PUSH_VAR = "push_var"           # read program variable (accessor)
    STORE_VAR = "store_var"         # write program variable (accessor)
    PUSH_COUNTER = "push_counter"
    INC_COUNTER = "inc_counter"
    SET_COUNTER = "set_counter"
    APPEND_ARRAY = "append_array"   # bounded; pushes 1 on success, 0 full
    ARRAY_LEN = "array_len"
    CMP = "cmp"                     # (op_string) pops rhs, lhs
    NOT = "not"
    JUMP_IF_FALSE = "jump_if_false"  # forward offset
    DROP = "drop"
    REPLY = "reply"                 # pop a value into the reply buffer
    CONTINUE = "continue"
    BREAK = "break"


_CMP_FNS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class CaspProcedure:
    """A verified-terminating instruction list."""

    def __init__(self, name, instructions):
        self.name = name
        self.instructions = list(instructions)
        self._verify()

    def _verify(self):
        for index, instr in enumerate(self.instructions):
            opcode = instr[0]
            if opcode == Op.JUMP_IF_FALSE:
                offset = instr[1]
                if offset <= 0:
                    raise DirectionError(
                        "backward/zero jump at %d: the controller "
                        "language forbids loops" % index)
                if index + 1 + offset > len(self.instructions):
                    raise DirectionError("jump past end at %d" % index)

    def __len__(self):
        return len(self.instructions)


class CaspMachine:
    """Counters + arrays + an executor for stored procedures."""

    def __init__(self, array_capacity=64):
        self.counters = {}
        self.arrays = {}
        self.array_capacity = array_capacity
        self.replies = []

    def counter(self, name):
        return self.counters.get(name, 0)

    def array(self, name):
        return self.arrays.setdefault(name, [])

    def clear_array(self, name):
        self.arrays[name] = []

    def execute(self, procedure, read_var, write_var):
        """Run one procedure against the program's variables.

        Returns ``Op.CONTINUE`` or ``Op.BREAK``.  *read_var(name)* /
        *write_var(name, value)* are the program-variable accessors the
        extension point provides.
        """
        stack = []
        pc = 0
        instructions = procedure.instructions
        while pc < len(instructions):
            instr = instructions[pc]
            opcode = instr[0]
            if opcode == Op.PUSH_CONST:
                stack.append(instr[1])
            elif opcode == Op.PUSH_VAR:
                stack.append(read_var(instr[1]))
            elif opcode == Op.STORE_VAR:
                write_var(instr[1], stack.pop())
            elif opcode == Op.PUSH_COUNTER:
                stack.append(self.counters.get(instr[1], 0))
            elif opcode == Op.INC_COUNTER:
                self.counters[instr[1]] = \
                    self.counters.get(instr[1], 0) + 1
            elif opcode == Op.SET_COUNTER:
                self.counters[instr[1]] = stack.pop()
            elif opcode == Op.APPEND_ARRAY:
                array = self.array(instr[1])
                if len(array) < self.array_capacity:
                    array.append(stack.pop())
                    stack.append(1)
                else:
                    stack.pop()
                    stack.append(0)
            elif opcode == Op.ARRAY_LEN:
                stack.append(len(self.array(instr[1])))
            elif opcode == Op.CMP:
                rhs = stack.pop()
                lhs = stack.pop()
                stack.append(1 if _CMP_FNS[instr[1]](lhs, rhs) else 0)
            elif opcode == Op.NOT:
                stack.append(0 if stack.pop() else 1)
            elif opcode == Op.JUMP_IF_FALSE:
                if not stack.pop():
                    pc += instr[1]
            elif opcode == Op.DROP:
                stack.pop()
            elif opcode == Op.REPLY:
                self.replies.append((instr[1], stack.pop()))
            elif opcode == Op.CONTINUE:
                return Op.CONTINUE
            elif opcode == Op.BREAK:
                return Op.BREAK
            else:
                raise DirectionError("unknown CASP opcode %r" % opcode)
            pc += 1
        return Op.CONTINUE

    def drain_replies(self):
        replies, self.replies = self.replies, []
        return replies
