"""The direction command language (Table 2).

Commands are parsed from gdb-style text lines:

    print X
    break L [<cond>]
    unbreak L
    backtrace
    watch X [<cond>]
    unwatch X
    count reads X | count writes X | count calls F
    trace start X [<cond>] [<len>] | trace stop X | trace clear X
        | trace print X | trace full X

Conditions are simple comparisons ``<var> <op> <const>`` with ops
``== != < <= > >=`` (the controller language is computationally weak by
design — no recursion, §3.5).
"""

from repro.errors import DirectionError

_COND_OPS = ("==", "!=", "<=", ">=", "<", ">")

COMMAND_TABLE = {
    "print": "Print the value of variable X from the source program.",
    "break": "Activate a (conditional) breakpoint at label L.",
    "unbreak": "Deactivate a breakpoint.",
    "backtrace": 'Print the "function call stack".',
    "watch": "Break when X is updated and satisfies a condition.",
    "unwatch": 'Cancel the effect of the "watch" command.',
    "count": "Count reads/writes of a variable, or calls to a function.",
    "trace": "Trace a variable subject to a condition, up to a length.",
}


class Condition:
    """``<var> <op> <const>`` guard."""

    __slots__ = ("var", "op", "value")

    def __init__(self, var, op, value):
        if op not in _COND_OPS:
            raise DirectionError("unknown condition operator %r" % op)
        self.var = var
        self.op = op
        self.value = value

    def evaluate(self, read_var):
        lhs = read_var(self.var)
        rhs = self.value
        return {
            "==": lhs == rhs, "!=": lhs != rhs, "<": lhs < rhs,
            "<=": lhs <= rhs, ">": lhs > rhs, ">=": lhs >= rhs,
        }[self.op]

    def __repr__(self):
        return "%s %s %d" % (self.var, self.op, self.value)


class DirectionCommand:
    """One parsed command."""

    __slots__ = ("verb", "subverb", "target", "condition", "length")

    def __init__(self, verb, target=None, subverb=None, condition=None,
                 length=None):
        self.verb = verb
        self.subverb = subverb
        self.target = target
        self.condition = condition
        self.length = length

    def __repr__(self):
        parts = [self.verb]
        if self.subverb:
            parts.append(self.subverb)
        if self.target:
            parts.append(self.target)
        if self.condition is not None:
            parts.append("if %r" % self.condition)
        if self.length is not None:
            parts.append("len=%d" % self.length)
        return "DirectionCommand(%s)" % " ".join(parts)


def _parse_condition(tokens):
    """Parse a trailing ``<var> <op> <const>``, if present."""
    if len(tokens) >= 3 and tokens[1] in _COND_OPS:
        try:
            value = int(tokens[2], 0)
        except ValueError:
            raise DirectionError("condition constant %r not an integer"
                                 % tokens[2])
        return Condition(tokens[0], tokens[1], value), tokens[3:]
    return None, tokens


def parse_command(line):
    """Parse one direction command line."""
    tokens = line.split()
    if not tokens:
        raise DirectionError("empty direction command")
    verb = tokens[0]
    rest = tokens[1:]

    if verb == "backtrace":
        return DirectionCommand("backtrace")

    if verb in ("print", "unbreak", "unwatch"):
        if len(rest) != 1:
            raise DirectionError("%s takes exactly one operand" % verb)
        return DirectionCommand(verb, target=rest[0])

    if verb in ("break", "watch"):
        if not rest:
            raise DirectionError("%s needs a target" % verb)
        target, rest = rest[0], rest[1:]
        condition, rest = _parse_condition(rest)
        if rest:
            raise DirectionError("trailing tokens %r" % (rest,))
        return DirectionCommand(verb, target=target, condition=condition)

    if verb == "count":
        if len(rest) < 2 or rest[0] not in ("reads", "writes", "calls"):
            raise DirectionError(
                "count needs: reads|writes|calls <target>")
        subverb, target, rest = rest[0], rest[1], rest[2:]
        condition, rest = _parse_condition(rest)
        if rest:
            raise DirectionError("trailing tokens %r" % (rest,))
        return DirectionCommand("count", subverb=subverb, target=target,
                                condition=condition)

    if verb == "trace":
        if len(rest) < 2 or rest[0] not in ("start", "stop", "clear",
                                            "print", "full"):
            raise DirectionError(
                "trace needs: start|stop|clear|print|full <var>")
        subverb, target, rest = rest[0], rest[1], rest[2:]
        condition, length = None, None
        if subverb == "start":
            condition, rest = _parse_condition(rest)
            if rest:
                try:
                    length = int(rest[0], 0)
                except ValueError:
                    raise DirectionError("trace length %r not an integer"
                                         % rest[0])
                rest = rest[1:]
        if rest:
            raise DirectionError("trailing tokens %r" % (rest,))
        return DirectionCommand("trace", subverb=subverb, target=target,
                                condition=condition, length=length)

    raise DirectionError("unknown direction verb %r" % verb)
