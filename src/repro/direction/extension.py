"""Program transformation: embedding the controller (Fig. 11).

"Transformation of the program to include a controller: normal packets
are handled without change, but direction packets are passed to the
controller.  Pink dots represent extension points, one of which is
added within the control flow of the original program."

:class:`DirectedService` wraps any Emu service with exactly that
transformation; :func:`extension_point` is the marker services (or the
wrapper) use to signal a crossing.
"""

from repro.direction.controller import Controller
from repro.direction.packets import (
    KIND_COMMAND, KIND_REPLY, build_direction_packet, is_direction_frame,
    parse_direction_packet,
)
from repro.errors import DirectionError, ParseError
from repro.kiwi.runtime import pause
from repro.services.base import EmuService

MAIN_LOOP_POINT = "main_loop"


def extension_point(controller, name):
    """Signal that execution crossed extension point *name*."""
    return controller.hit(name)


class DirectedService(EmuService):
    """A service extended with a debug controller (the Fig. 11 shape).

    * direction packets are intercepted and executed by the controller,
      with replies sent back to the director;
    * one extension point is crossed in the main loop, before the
      original handler runs;
    * the wrapped service's counters/statistics are exposed through the
      accessor enumeration automatically, and callers may expose more.
    """

    def __init__(self, service, features=("read", "write", "increment"),
                 my_mac=0x02_00_00_00_00_0D):
        self.inner = service
        self.name = service.name + "+debug"
        self.my_mac = my_mac
        self.controller = Controller(features=features)
        self.controller.add_point(MAIN_LOOP_POINT)
        self.frames_directed = 0
        self._expose_service_counters()

    def _expose_service_counters(self):
        for attr, value in vars(self.inner).items():
            if isinstance(value, int) and not attr.startswith("_"):
                self.controller.expose(
                    attr,
                    getter=lambda a=attr: getattr(self.inner, a),
                    setter=lambda v, a=attr: setattr(self.inner, a, v))

    def expose(self, name, getter, setter=None):
        self.controller.expose(name, getter, setter)

    def on_frame(self, dataplane):
        # Fig. 11: the direction check runs before the program.
        if is_direction_frame(dataplane.tdata):
            yield pause()
            self._handle_direction(dataplane)
            return
        # The in-control-flow extension point.
        if not extension_point(self.controller, MAIN_LOOP_POINT):
            # A breakpoint fired: the program is stopped; drop traffic
            # until the director resumes it.
            dataplane.dst_ports = 0
            return
        yield pause()
        yield from self.inner.on_frame(dataplane)

    def _handle_direction(self, dataplane):
        self.frames_directed += 1
        try:
            kind, seq, point, text = parse_direction_packet(
                dataplane.tdata)
        except ParseError:
            dataplane.dst_ports = 0
            return
        if kind != KIND_COMMAND:
            dataplane.dst_ports = 0
            return
        reply_lines = []
        try:
            if text == "resume":
                self.controller.resume()
                reply_lines.append("resumed")
            elif text.startswith("uninstall"):
                parts = text.split()
                self.controller.uninstall(
                    point, parts[1] if len(parts) > 1 else None)
                reply_lines.append("uninstalled")
            else:
                self.controller.install(point, text)
                reply_lines.append("installed")
        except DirectionError as err:
            reply_lines.append("error: %s" % err)
        for reply_name, value in self.controller.replies():
            reply_lines.append("%s=%s" % (reply_name, value))

        from repro.core.protocols.ethernet import EthernetWrapper
        eth = EthernetWrapper(dataplane.tdata)
        director_mac = eth.source_mac
        reply = build_direction_packet(
            director_mac, self.my_mac, KIND_REPLY, seq, point,
            "\n".join(reply_lines))
        dataplane.tdata[:] = reply
        dataplane.dst_ports = 1 << dataplane.src_port

    def poll_point(self):
        """Cross the main-loop point outside packet handling (hosted
        directability for idle loops)."""
        return extension_point(self.controller, MAIN_LOOP_POINT)

    def datapath_extra_cycles(self, frame):
        inner = getattr(self.inner, "datapath_extra_cycles", None)
        base = inner(frame) if inner is not None else len(frame.data) // 4
        # The controller's extension point costs one pipeline bubble
        # only when procedures are installed (Table 5 shows ~0-0.5%).
        has_procs = any(self.controller._points.values())
        return base + (1 if has_procs else 0)

    def reset(self):
        self.inner.reset()
