"""Direction packets: remote debugging over the network (§3.5).

"Direction packets are network packets in a custom and simple packet
format, whose payload consists of (i) code to be executed by the
controller; or (ii) status replies from the controller to the director.
It enables us to remotely direct a running program, similar to gdb's
remote serial protocol."

Format (after the Ethernet header, EtherType 0x88B5):

    magic    2 bytes  0xD1 0x4C
    kind     1 byte   1 = command, 2 = reply
    seq      2 bytes
    point    1 byte   length of the extension-point name
    payload  ...      <point name><command text>  /  <reply text>
"""

from repro.core.protocols.ethernet import EthernetWrapper, EtherTypes, \
    build_ethernet
from repro.errors import DirectionError, ParseError
from repro.utils.bitutil import BitUtil

DIRECTION_ETHERTYPE = EtherTypes.DIRECTION
MAGIC = b"\xD1\x4C"
KIND_COMMAND = 1
KIND_REPLY = 2


def build_direction_packet(dst_mac, src_mac, kind, seq, point, text):
    """Assemble a direction frame."""
    point_bytes = point.encode("ascii")
    text_bytes = text.encode("ascii")
    if len(point_bytes) > 255:
        raise DirectionError("extension point name too long")
    payload = bytearray(MAGIC)
    payload.append(kind)
    payload.extend(int(seq).to_bytes(2, "big"))
    payload.append(len(point_bytes))
    payload.extend(point_bytes)
    payload.extend(text_bytes)
    return build_ethernet(dst_mac, src_mac, DIRECTION_ETHERTYPE, payload)


def is_direction_frame(tdata):
    """The Fig. 11 check: is this packet for the controller?"""
    return len(tdata) >= 20 and \
        BitUtil.get16(tdata, 12) == DIRECTION_ETHERTYPE and \
        bytes(tdata[14:16]) == MAGIC


def parse_direction_packet(tdata):
    """Decode a direction frame → (kind, seq, point, text)."""
    if not is_direction_frame(tdata):
        raise ParseError("not a direction packet")
    kind = tdata[16]
    seq = BitUtil.get16(tdata, 17)
    point_len = tdata[19]
    point_end = 20 + point_len
    if len(tdata) < point_end:
        raise ParseError("truncated direction packet")
    point = bytes(tdata[20:point_end]).decode("ascii")
    text = bytes(tdata[point_end:]).decode("ascii", "replace")
    return kind, seq, point, text.rstrip("\x00")


class Director:
    """The remote debugger: builds commands, consumes replies (Fig. 8).

    *send(frame)* is whatever transports frames to the target (an
    FpgaTarget, a netsim link, a CPU target...).
    """

    def __init__(self, target_mac, my_mac, send):
        self.target_mac = target_mac
        self.my_mac = my_mac
        self._send = send
        self._seq = 0
        self.replies = []

    def direct(self, point, command_line):
        """Send one command at an extension point; collect replies."""
        self._seq = (self._seq + 1) & 0xFFFF
        frame_bytes = build_direction_packet(
            self.target_mac, self.my_mac, KIND_COMMAND, self._seq,
            point, command_line)
        responses = self._send(frame_bytes)
        collected = []
        for response in responses or []:
            eth = EthernetWrapper(response)
            if eth.ethertype != DIRECTION_ETHERTYPE:
                continue
            kind, seq, _, text = parse_direction_packet(response)
            if kind == KIND_REPLY and seq == self._seq:
                collected.append(text)
        self.replies.extend(collected)
        return collected
