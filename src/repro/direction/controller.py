"""The controller embedded in a program (Fig. 8).

Extending a program involves "(i) named extension points with
runtime-modifiable code in a computationally weak language; and
(ii) state used for book-keeping" — the controller owns both.  Program
variables are exposed through an enumerated accessor table, as §5.5
describes ("we form an enumerated type that corresponds to the program
variables whose values the controller may access and change").

The controller also models its hardware cost, which Table 5 reports:
each feature class (read / write / increment) adds registers and mux
logic around the program.
"""

from repro.direction.casp import CaspMachine, Op
from repro.direction.commands import parse_command
from repro.direction.lowering import lower_command
from repro.errors import DirectionError
from repro.rtl import Module, const, mux


class VariableAccessor:
    """Typed access to one program variable (one enum entry)."""

    __slots__ = ("name", "getter", "setter")

    def __init__(self, name, getter, setter=None):
        self.name = name
        self.getter = getter
        self.setter = setter

    def read(self):
        return self.getter()

    def write(self, value):
        if self.setter is None:
            raise DirectionError("variable %r is read-only" % self.name)
        self.setter(value)


class Controller:
    """The CASP machine plus per-extension-point procedure tables."""

    #: Feature classes (Table 5 rows): reading, writing, incrementing.
    FEATURES = ("read", "write", "increment")

    def __init__(self, features=("read",), array_capacity=64):
        for feature in features:
            if feature not in self.FEATURES:
                raise DirectionError("unknown feature %r" % feature)
        self.features = tuple(features)
        self.machine = CaspMachine(array_capacity)
        self.accessors = {}
        self._points = {}            # point name -> [procedures]
        self.break_hits = 0
        self.program_stopped = False

    # -- configuration -------------------------------------------------------

    def expose(self, name, getter, setter=None):
        """Add a program variable to the accessor enumeration."""
        self.accessors[name] = VariableAccessor(name, getter, setter)

    def add_point(self, name):
        """Register a named extension point."""
        self._points.setdefault(name, [])

    def install(self, point, command_line):
        """Parse + lower a command and attach it to an extension point.

        Runtime-reconfigurable, per the paper: "the extension points at
        runtime can be reconfigured to perform different debugging or
        profiling functions."
        """
        if point not in self._points:
            raise DirectionError("no extension point %r" % point)
        command = parse_command(command_line)
        self._check_feature(command)
        procedure = lower_command(command)
        self._points[point].append((command, procedure))
        return procedure

    def uninstall(self, point, verb=None):
        """Remove procedures (all, or those of one verb) from a point."""
        if point not in self._points:
            raise DirectionError("no extension point %r" % point)
        if verb is None:
            self._points[point] = []
        else:
            self._points[point] = [
                (cmd, proc) for cmd, proc in self._points[point]
                if cmd.verb != verb
            ]

    def _check_feature(self, command):
        needs = {"print": "read", "backtrace": "read", "trace": "read",
                 "count": "increment", "break": "read", "watch": "read",
                 "unbreak": "read", "unwatch": "read"}[command.verb]
        if needs not in self.features:
            raise DirectionError(
                "command %r needs controller feature %r, compiled "
                "features are %r" % (command.verb, needs, self.features))

    # -- execution ------------------------------------------------------------

    def _read_var(self, name):
        accessor = self.accessors.get(name)
        if accessor is None:
            raise DirectionError("variable %r not in the accessor "
                                 "enumeration" % name)
        return accessor.read()

    def _write_var(self, name, value):
        if "write" not in self.features:
            raise DirectionError("controller compiled without the "
                                 "write feature")
        accessor = self.accessors.get(name)
        if accessor is None:
            raise DirectionError("variable %r not in the accessor "
                                 "enumeration" % name)
        accessor.write(value)

    def hit(self, point):
        """The program crossed an extension point: run its procedures.

        Returns ``True`` if execution should continue, ``False`` on a
        breakpoint firing.
        """
        procedures = self._points.get(point)
        if not procedures:
            return True
        for _, procedure in procedures:
            outcome = self.machine.execute(
                procedure, self._read_var, self._write_var)
            if outcome == Op.BREAK:
                self.break_hits += 1
                self.program_stopped = True
                return False
        return True

    def resume(self):
        self.program_stopped = False

    def replies(self):
        return self.machine.drain_replies()

    # -- hardware cost model (Table 5) ----------------------------------------

    def build_netlist(self, name="controller", var_width=32):
        """The controller's own logic, as synthesised next to the
        program: procedure store, per-feature datapaths, reply buffer.
        """
        m = Module(name)
        point_hit = m.input("point_hit", 1)
        var_in = m.input("var_in", var_width)
        var_out = m.output("var_out", var_width)
        stopped = m.output("stopped", 1)

        # Procedure store + program counter.
        m.memory("proc_store", 16, 64)
        pc = m.reg("pc", 6)
        m.sync(pc, mux(point_hit, pc + const(1, 6), pc))
        stop_reg = m.reg("stop_reg", 1)
        m.sync(stop_reg, stop_reg)
        m.comb(stopped, stop_reg)

        result = const(0, var_width)
        if "read" in self.features:
            # Read datapath: capture register + trace buffer.
            capture = m.reg("capture", var_width)
            m.sync(capture, mux(point_hit, var_in, capture))
            m.memory("trace_buf", var_width,
                     self.machine.array_capacity)
            trace_idx = m.reg("trace_idx", 8)
            m.sync(trace_idx, mux(point_hit,
                                  trace_idx + const(1, 8), trace_idx))
            result = capture
        if "write" in self.features:
            # Write datapath: staged value driven into the program.
            staged = m.reg("staged", var_width)
            m.sync(staged, staged)
            write_en = m.reg("write_en", 1)
            m.sync(write_en, write_en)
            result = mux(write_en, staged, result)
        if "increment" in self.features:
            counter = m.reg("event_counter", 32)
            m.sync(counter, mux(point_hit,
                                counter + const(1, 32), counter))
            if result.width == var_width and "read" not in self.features \
                    and "write" not in self.features:
                result = const(0, var_width)
        m.comb(var_out, result)
        return m
