"""Lowering direction commands into CASP procedures (§3.5, Fig. 7).

The paper's example lowers ``trace V max_trace_idx`` to:

    if V_trace_idx < max_trace_idx then
        V_trace_buf[V_trace_idx] := V; inc V_trace_idx; continue
    else
        inc V_trace_overflow; break

Every Table 2 command gets the same treatment here.
"""

from repro.direction.casp import CaspProcedure, Op
from repro.direction.commands import DirectionCommand
from repro.errors import DirectionError


def _condition_prelude(condition, skip_len):
    """Instructions that skip *skip_len* following instructions when the
    condition is false.  Empty when there is no condition."""
    if condition is None:
        return []
    return [
        (Op.PUSH_VAR, condition.var),
        (Op.PUSH_CONST, condition.value),
        (Op.CMP, condition.op),
        (Op.JUMP_IF_FALSE, skip_len),
    ]


def lower_command(command):
    """Translate one :class:`DirectionCommand` into a CASP procedure."""
    verb = command.verb
    target = command.target

    if verb == "print":
        return CaspProcedure("print_%s" % target, [
            (Op.PUSH_VAR, target),
            (Op.REPLY, target),
            (Op.CONTINUE,),
        ])

    if verb == "backtrace":
        return CaspProcedure("backtrace", [
            (Op.PUSH_VAR, "__callstack__"),
            (Op.REPLY, "backtrace"),
            (Op.CONTINUE,),
        ])

    if verb == "break":
        body = [(Op.BREAK,)]
        return CaspProcedure(
            "break_%s" % target,
            _condition_prelude(command.condition, len(body)) + body +
            [(Op.CONTINUE,)])

    if verb == "watch":
        # Fires on update sites: the extension point for writes to the
        # variable runs this procedure.
        body = [(Op.BREAK,)]
        return CaspProcedure(
            "watch_%s" % target,
            _condition_prelude(command.condition, len(body)) + body +
            [(Op.CONTINUE,)])

    if verb == "count":
        counter = "%s_%s_count" % (target, command.subverb)
        body = [(Op.INC_COUNTER, counter)]
        return CaspProcedure(
            "count_%s" % counter,
            _condition_prelude(command.condition, len(body)) + body +
            [(Op.CONTINUE,)])

    if verb == "trace":
        return _lower_trace(command)

    raise DirectionError("cannot lower %r" % (command,))


def _lower_trace(command):
    target = command.target
    sub = command.subverb
    buf = "%s_trace_buf" % target
    overflow = "%s_trace_overflow" % target

    if sub == "start":
        # Fig. 7: append while the buffer has room, else count overflow
        # and break.
        body = [
            (Op.PUSH_VAR, target),
            (Op.APPEND_ARRAY, buf),       # pushes 1 on success
            (Op.JUMP_IF_FALSE, 2),        # full -> overflow path
            (Op.INC_COUNTER, "%s_trace_idx" % target),
            (Op.CONTINUE,),
            (Op.INC_COUNTER, overflow),
            (Op.BREAK,),
        ]
        return CaspProcedure(
            "trace_%s" % target,
            _condition_prelude(command.condition, len(body)) + body +
            [(Op.CONTINUE,)])

    if sub == "stop":
        return CaspProcedure("trace_stop_%s" % target, [(Op.CONTINUE,)])

    if sub == "clear":
        # Clearing is a machine-level action; emit a procedure that
        # reports the clear so the director sees an acknowledgement.
        return CaspProcedure("trace_clear_%s" % target, [
            (Op.PUSH_CONST, 0),
            (Op.REPLY, "cleared:%s" % target),
            (Op.CONTINUE,),
        ])

    if sub == "print":
        return CaspProcedure("trace_print_%s" % target, [
            (Op.ARRAY_LEN, buf),
            (Op.REPLY, buf),
            (Op.CONTINUE,),
        ])

    if sub == "full":
        return CaspProcedure("trace_full_%s" % target, [
            (Op.ARRAY_LEN, buf),
            (Op.REPLY, "%s_full" % buf),
            (Op.CONTINUE,),
        ])

    raise DirectionError("unknown trace subcommand %r" % sub)
