"""The direction subsystem: debugging, monitoring, profiling (§3.5).

Emu "extends programs to interpret direction commands at runtime":

* a **command language** (Table 2): ``print``, ``break``, ``watch``,
  ``count``, ``trace``, ``backtrace`` — :mod:`repro.direction.commands`;
* a **CASP machine** (counters, arrays, stored procedures) embedded in
  the program as the *controller* — :mod:`repro.direction.casp`;
* **lowering** of commands into CASP procedures (Fig. 7's ``trace``
  example) — :mod:`repro.direction.lowering`;
* **extension points** inserted into the program, where the controller's
  procedures run (Fig. 8/11) — :mod:`repro.direction.extension`;
* **direction packets** — a gdb-remote-serial-protocol analogue carrying
  controller code/status over the network —
  :mod:`repro.direction.packets`.
"""

from repro.direction.commands import DirectionCommand, parse_command
from repro.direction.casp import CaspMachine, CaspProcedure, Op
from repro.direction.controller import Controller, VariableAccessor
from repro.direction.lowering import lower_command
from repro.direction.extension import DirectedService, extension_point
from repro.direction.packets import (
    DIRECTION_ETHERTYPE, build_direction_packet, parse_direction_packet,
    Director,
)

__all__ = [
    "DirectionCommand", "parse_command", "CaspMachine", "CaspProcedure",
    "Op", "Controller", "VariableAccessor", "lower_command",
    "DirectedService", "extension_point", "DIRECTION_ETHERTYPE",
    "build_direction_packet", "parse_direction_packet", "Director",
]
