"""Simulated nodes: hosts and Emu service nodes."""

from repro.core.dataplane import NetFPGAData
from repro.errors import NetSimError


class Node:
    """Base: something with ports attached to links."""

    def __init__(self, name, num_ports=1):
        self.name = name
        self.num_ports = num_ports
        self.links = {}

    def attach_link(self, port, link):
        if not 0 <= port < self.num_ports:
            raise NetSimError("%s has no port %d" % (self.name, port))
        if port in self.links:
            raise NetSimError("%s port %d already attached"
                              % (self.name, port))
        self.links[port] = link

    def send(self, frame, port=0):
        link = self.links.get(port)
        if link is None:
            raise NetSimError("%s port %d not attached" % (self.name, port))
        link.send(self, frame)

    def receive(self, frame, port):
        raise NotImplementedError


class Host(Node):
    """An end host: records arrivals, optionally auto-responds."""

    def __init__(self, name, responder=None):
        super().__init__(name, num_ports=1)
        self.received = []
        self.responder = responder
        self.sent_count = 0

    def receive(self, frame, port):
        self.received.append(frame)
        if self.responder is not None:
            reply = self.responder(frame)
            if reply is not None:
                self.send(reply, port)

    def send(self, frame, port=0):
        self.sent_count += 1
        super().send(frame, port)

    def drain(self):
        frames, self.received = self.received, []
        return frames


class ServiceNode(Node):
    """An Emu service attached to the simulated network.

    The *same service object* from the CPU/FPGA targets handles frames
    here — the single-codebase claim, made concrete.
    """

    def __init__(self, name, service, num_ports=4):
        super().__init__(name, num_ports)
        self.service = service
        self.frames_handled = 0
        self.frames_dropped = 0

    def receive(self, frame, port):
        frame.src_port = port
        dataplane = NetFPGAData(frame)
        self.service.process(dataplane)
        self.frames_handled += 1
        if dataplane.dropped:
            self.frames_dropped += 1
            return
        for out_port in range(self.num_ports):
            if dataplane.dst_ports & (1 << out_port) and \
                    out_port in self.links:
                out = dataplane.to_frame()
                self.send(out, out_port)
