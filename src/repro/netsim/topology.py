"""Network builder: the Mininet-style topology API."""

from repro.errors import NetSimError
from repro.netsim.faults import FaultyLink
from repro.netsim.link import Link
from repro.netsim.node import Host, ServiceNode
from repro.netsim.sim import EventLoop


class Network:
    """A set of nodes connected by links, plus the event loop."""

    def __init__(self):
        self.loop = EventLoop()
        self.nodes = {}
        self.links = []

    def add_host(self, name, responder=None):
        self._check_name(name)
        host = Host(name, responder=responder)
        self.nodes[name] = host
        return host

    def add_service(self, name, service, num_ports=4):
        self._check_name(name)
        node = ServiceNode(name, service, num_ports)
        self.nodes[name] = node
        return node

    def connect(self, a, a_port, b, b_port, latency_ns=1000,
                bandwidth_bps=10_000_000_000, faults=None):
        """Link node *a* port *a_port* to node *b* port *b_port*.

        *faults* is ``None`` for an ideal :class:`Link`, or a (possibly
        empty) dict of :class:`~repro.netsim.faults.FaultyLink` kwargs
        (``loss_rate``, ``corrupt_rate``, ``jitter_ns``, ``seed``) for
        a wire that can be impaired or partitioned.
        """
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        if faults is None:
            link = Link(self.loop, latency_ns, bandwidth_bps)
        else:
            link = FaultyLink(self.loop, latency_ns, bandwidth_bps,
                              **faults)
        link.attach(node_a, a_port)
        link.attach(node_b, b_port)
        self.links.append(link)
        return link

    def run(self, until_ns=None, max_events=1_000_000):
        self.loop.run(until_ns=until_ns, max_events=max_events)

    @property
    def now_ns(self):
        return self.loop.now_ns

    def _resolve(self, node):
        if isinstance(node, str):
            if node not in self.nodes:
                raise NetSimError("no node named %r" % node)
            return self.nodes[node]
        return node

    def _check_name(self, name):
        if name in self.nodes:
            raise NetSimError("duplicate node name %r" % name)
