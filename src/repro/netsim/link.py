"""Point-to-point links with latency and bandwidth.

:class:`Link` is the ideal wire; :class:`~repro.netsim.faults.FaultyLink`
subclasses it through two hooks — :meth:`Link._prepare` (may drop or
mutate the in-flight copy) and :meth:`Link._jitter_ns` (extra one-way
delay) — so the fault layer never re-implements the serialization or
delivery mechanics.
"""

from repro.errors import NetSimError


class Link:
    """Full-duplex link between two (node, port) attachment points."""

    def __init__(self, loop, latency_ns=1000, bandwidth_bps=10_000_000_000):
        if bandwidth_bps <= 0:
            raise NetSimError("bandwidth must be positive")
        self.loop = loop
        self.latency_ns = latency_ns
        self.bandwidth_bps = bandwidth_bps
        self._ends = []                 # [(node, port)]
        # Per-direction earliest next transmission (serialization).
        self._busy_until = [0, 0]
        self.frames_carried = 0

    def attach(self, node, port):
        if len(self._ends) >= 2:
            raise NetSimError("link already has two endpoints")
        self._ends.append((node, port))
        node.attach_link(port, self)

    # -- fault hooks (overridden by FaultyLink) -----------------------------

    def _prepare(self, frame):
        """The in-flight copy of *frame*, or ``None`` to lose it."""
        return frame.copy()

    def _jitter_ns(self):
        """Extra one-way delay added to this transmission."""
        return 0

    # -- transmission -------------------------------------------------------

    def send(self, from_node, frame):
        """Transmit *frame* from one endpoint to the other."""
        if len(self._ends) != 2:
            raise NetSimError("link is not fully connected")
        for index, (node, _) in enumerate(self._ends):
            if node is from_node:
                direction = index
                break
        else:
            raise NetSimError("node %r is not on this link" % from_node)
        peer, peer_port = self._ends[1 - direction]

        # The sender always occupies the wire, even if the frame is
        # then lost: serialization happens at the transmitting NIC.
        serialization_ns = 8e9 * len(frame.data) / self.bandwidth_bps
        start = max(self.loop.now_ns, self._busy_until[direction])
        done = start + serialization_ns
        self._busy_until[direction] = done
        self.frames_carried += 1

        delivered = self._prepare(frame)
        if delivered is None:
            return
        arrival_delay = (done - self.loop.now_ns) + self.latency_ns + \
            self._jitter_ns()
        delivered.src_port = peer_port

        def deliver():
            delivered.timestamp_ns = self.loop.now_ns
            peer.receive(delivered, peer_port)
        self.loop.schedule(arrival_delay, deliver)
