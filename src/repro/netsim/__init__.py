"""Discrete-event network simulator — the Mininet role in Fig. 1 (§3.3).

"By using virtual interfaces, developers can test network functions in a
simulator."  The paper compiles the NAT service to software, Mininet and
hardware from one codebase; here the same service object attaches to a
:class:`~repro.netsim.topology.Network` node and handles the very same
frames hosts exchange.

* :mod:`repro.netsim.sim`      — the event loop (time in ns).
* :mod:`repro.netsim.node`     — hosts and service nodes.
* :mod:`repro.netsim.link`     — links with latency + bandwidth.
* :mod:`repro.netsim.faults`   — fault injection: lossy links, timed
  kill/partition/restore scripts.
* :mod:`repro.netsim.topology` — the network builder.
"""

from repro.netsim.sim import EventLoop
from repro.netsim.node import Host, ServiceNode
from repro.netsim.link import Link
from repro.netsim.faults import (
    FaultInjector, FaultPlan, FaultyLink, schedule_health_checks,
)
from repro.netsim.topology import Network

__all__ = ["EventLoop", "FaultInjector", "FaultPlan", "FaultyLink",
           "Host", "Link", "Network", "ServiceNode",
           "schedule_health_checks"]
