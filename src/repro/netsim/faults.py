"""Fault injection for :mod:`repro.netsim` and the cluster layer.

Every netsim link is lossless and every shard immortal until this
module says otherwise.  Three pieces:

* :class:`FaultyLink` — a :class:`~repro.netsim.link.Link` with seeded,
  deterministic impairments: packet loss, single-bit corruption,
  latency jitter, and an up/down state (partitions).
* :class:`FaultPlan` — a script of timed fault events (kill shard at t,
  partition a leaf at t, restore at t').  Events are plain callables
  against a *target* (a :class:`~repro.cluster.topology.ClusterNetwork`,
  a :class:`~repro.cluster.target.ClusterTarget`, or anything exposing
  the same verbs), so one plan drives both the device-level and the
  netsim-level cluster models.
* :class:`FaultInjector` — applies a plan, either armed on an event
  loop (netsim: fires at simulated nanoseconds) or pumped manually with
  :meth:`FaultInjector.advance_to` (harness chaos runs: "time" is the
  workload window index).

Everything is seeded; a chaos run with a fixed seed is exactly
reproducible, which is what makes its assertions testable.
"""

import random

from repro.errors import NetSimError
from repro.netsim.link import Link


class FaultyLink(Link):
    """A link that can lose, corrupt, delay, or stop carrying frames.

    All randomness comes from one ``random.Random(seed)``, so a given
    (seed, traffic) pair always drops/corrupts the same frames.
    """

    def __init__(self, loop, latency_ns=1000,
                 bandwidth_bps=10_000_000_000, loss_rate=0.0,
                 corrupt_rate=0.0, jitter_ns=0, seed=0):
        for name, rate in (("loss_rate", loss_rate),
                           ("corrupt_rate", corrupt_rate)):
            if not 0.0 <= rate <= 1.0:
                raise NetSimError("%s must be in [0, 1]" % name)
        if jitter_ns < 0:
            raise NetSimError("jitter_ns must be >= 0")
        super().__init__(loop, latency_ns, bandwidth_bps)
        self.loss_rate = loss_rate
        self.corrupt_rate = corrupt_rate
        self.jitter_ns = jitter_ns
        self.up = True
        self._rng = random.Random(seed)
        self.frames_lost = 0
        self.frames_corrupted = 0

    # -- partition scheduling ----------------------------------------------

    def take_down(self):
        """Partition: every frame is lost until :meth:`bring_up`."""
        self.up = False

    def bring_up(self):
        self.up = True

    # -- fault hooks --------------------------------------------------------

    def _prepare(self, frame):
        if not self.up:
            self.frames_lost += 1
            return None
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.frames_lost += 1
            return None
        delivered = frame.copy()
        if self.corrupt_rate and delivered.data and \
                self._rng.random() < self.corrupt_rate:
            bit = self._rng.randrange(len(delivered.data) * 8)
            delivered.data[bit // 8] ^= 1 << (bit % 8)
            self.frames_corrupted += 1
        return delivered

    def _jitter_ns(self):
        if not self.jitter_ns:
            return 0
        return self._rng.randint(0, self.jitter_ns)


class FaultEvent:
    """One scheduled fault: fire *action(target)* at time *at*."""

    __slots__ = ("at", "label", "action")

    def __init__(self, at, label, action):
        self.at = at
        self.label = label
        self.action = action

    def __repr__(self):
        return "FaultEvent(%r @ %s)" % (self.label, self.at)


class FaultPlan:
    """An ordered script of timed fault events.

    Times are whatever unit the driver uses: nanoseconds when armed on
    an event loop, workload-window indices when pumped by a harness.
    Builder methods return ``self`` so plans chain::

        plan = (FaultPlan()
                .kill_shard(3, "shard2")
                .restore_shard(8, "shard2"))
    """

    def __init__(self):
        self.events = []

    def at(self, when, action, label="custom"):
        """Schedule *action(target)* at time *when*."""
        self.events.append(FaultEvent(when, label, action))
        self.events.sort(key=lambda event: event.at)
        return self

    # -- the common chaos verbs --------------------------------------------

    def kill_shard(self, when, shard_id):
        """Crash *shard_id* (stops answering; no graceful drain)."""
        return self.at(when, lambda target: target.kill_shard(shard_id),
                       "kill %s" % shard_id)

    def restore_shard(self, when, shard_id):
        """Bring *shard_id* back after repair (bounded key remap)."""
        return self.at(when,
                       lambda target: target.restore_shard(shard_id),
                       "restore %s" % shard_id)

    def partition(self, when, name):
        """Cut the named node's uplink (shard or leaf)."""
        return self.at(when, lambda target: target.partition(name),
                       "partition %s" % name)

    def heal(self, when, name):
        """Undo :meth:`partition` for the named node."""
        return self.at(when, lambda target: target.heal(name),
                       "heal %s" % name)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a target, in time order."""

    def __init__(self, plan, target):
        self.target = target
        self._due = list(plan.events)       # sorted by FaultPlan.at
        self.fired = []                     # [(at, label)]
        #: Optional TraceRecorder (duck-typed; set by the deploy
        #: layer) — each firing emits an instant event at its
        #: scheduled time on the shared virtual-time axis.
        self.tracer = None

    @property
    def pending(self):
        return len(self._due)

    def _fire(self, event):
        self.fired.append((event.at, event.label))
        event.action(self.target)
        if self.tracer is not None:
            self.tracer.instant("fault:%s" % event.label,
                                ts_ns=int(event.at), cat="fault",
                                args={"at": event.at})

    def advance_to(self, now):
        """Fire every event scheduled at or before *now* (manual pump
        for window-based chaos runs); returns the fired labels."""
        labels = []
        while self._due and self._due[0].at <= now:
            event = self._due.pop(0)
            self._fire(event)
            labels.append(event.label)
        return labels

    def arm(self, loop):
        """Schedule the remaining events on a netsim event loop.

        Events whose time is already past fire on the loop's next
        event; times are absolute loop nanoseconds.
        """
        due, self._due = self._due, []
        for event in due:
            delay = max(0, event.at - loop.now_ns)
            loop.schedule(delay, lambda event=event: self._fire(event))


def schedule_health_checks(loop, balancer, every_ns, until_ns):
    """Run ``balancer.check_health(now)`` every *every_ns* until
    *until_ns* — the control-plane probe ticker for netsim runs."""
    if every_ns <= 0:
        raise NetSimError("health-check period must be positive")
    balancer.clock = lambda: loop.now_ns

    def tick():
        balancer.check_health(loop.now_ns)
        if loop.now_ns + every_ns <= until_ns:
            loop.schedule(every_ns, tick)
    loop.schedule(every_ns, tick)
