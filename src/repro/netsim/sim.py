"""The discrete-event core: a time-ordered event queue."""

import heapq
import itertools

from repro.errors import NetSimError


class EventLoop:
    """Nanosecond-resolution event loop."""

    def __init__(self):
        self._queue = []
        self._ids = itertools.count()
        self.now_ns = 0
        self.events_run = 0

    def schedule(self, delay_ns, action):
        """Run *action()* after *delay_ns* nanoseconds."""
        if delay_ns < 0:
            raise NetSimError("cannot schedule into the past")
        heapq.heappush(self._queue,
                       (self.now_ns + int(delay_ns), next(self._ids),
                        action))

    def run(self, until_ns=None, max_events=1_000_000):
        """Process events until the queue drains (or a time/count cap).

        *max_events* caps this call alone; ``events_run`` keeps the
        lifetime total, so repeated ``run()`` calls on one loop never
        trip the cap on old events.
        """
        events_this_call = 0
        while self._queue:
            when, _, action = self._queue[0]
            if until_ns is not None and when > until_ns:
                break
            heapq.heappop(self._queue)
            self.now_ns = when
            action()
            self.events_run += 1
            events_this_call += 1
            if events_this_call > max_events:
                raise NetSimError("event cap exceeded (livelock?)")
        if until_ns is not None:
            self.now_ns = max(self.now_ns, until_ns)

    @property
    def pending(self):
        return len(self._queue)
