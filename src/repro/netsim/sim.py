"""The discrete-event core: a time-ordered event queue.

Since the engine refactor this is a veneer over the *unified* runtime
(:class:`repro.engine.sched.Scheduler`) — the network simulator no
longer keeps its own bespoke loop.  The subclass exists to keep the
historical surface: the same class name, and :class:`NetSimError` for
scheduling mistakes and livelocks.
"""

from repro.engine.sched import Scheduler
from repro.errors import NetSimError


class EventLoop(Scheduler):
    """Nanosecond-resolution event loop (the netsim face of the
    engine scheduler; it also inherits ``spawn`` for processes)."""

    error = NetSimError
