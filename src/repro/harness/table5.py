"""Table 5: profile of utilisation and performance with the debug
controller (DNS and Memcached, features +R / +W / +I).

Utilisation: the service kernel is compiled by Kiwi, the controller
variant netlist is added, and the ratio against the controller-free
design is reported (the paper normalises the bare service to 100%).

Performance: the service runs on the FPGA target wrapped in
:class:`~repro.direction.extension.DirectedService`; 99th-percentile
latency and query rate are compared against the bare run.
"""

from repro.deploy import deploy
from repro.direction.controller import Controller
from repro.direction.extension import DirectedService
from repro.harness.report import render_table
from repro.kiwi import compile_function
from repro.net.workloads import dns_query_stream, memaslap_mix
from repro.rtl import estimate_resources
from repro.services.dns_server import dns_kernel
from repro.services.memcached import memcached_kernel
from repro.services.catalog import (
    CLIENT_IP, DNS_NAMES, SERVICE_IP, make_dns, make_memcached,
)

FEATURE_VARIANTS = [
    ("+R", ("read",)),
    ("+W", ("read", "write")),
    ("+I", ("read", "increment")),
]


def _controller_logic(features):
    controller = Controller(features=features)
    return estimate_resources(controller.build_netlist()).logic


def utilisation_profile(kernel):
    """Logic utilisation of kernel alone and with each variant (%)."""
    base = compile_function(kernel).resources().logic
    rows = {"base": 100.0}
    for label, features in FEATURE_VARIANTS:
        rows[label] = 100.0 * (base + _controller_logic(features)) / base
    return rows


def _measure_performance(service_factory, workload_factory, features,
                         count=600, seed=5):
    """(p99 latency us, max qps) for one service variant."""
    service = service_factory()
    if features is not None:
        service = DirectedService(service, features=features)
        # A representative installed command per feature class, so the
        # extension point does real work on every main-loop crossing.
        variable = sorted(service.controller.accessors)[0]
        if "increment" in features:
            command = "count reads %s" % variable
        else:
            command = "print %s" % variable
        service.controller.install("main_loop", command)
    # The *same service instance* backs both measurements (the
    # installed direction command is live state), so the ad-hoc spec's
    # factory hands it out rather than building fresh ones.
    target = deploy(lambda: service, name="table5") \
        .on("fpga").with_seed(seed).start()
    probe = None
    for frame in workload_factory(count):
        if probe is None:
            probe = frame.copy()
        target.send(frame)
    qps = deploy(lambda: service, name="table5") \
        .on("fpga").with_seed(seed).start().max_qps(probe)
    return target.metrics.p99_latency_us(), qps


def performance_profile(service_factory, workload_factory, count=600,
                        seed=5):
    """Latency/qps of each variant relative to the bare service (%)."""
    base_p99, base_qps = _measure_performance(
        service_factory, workload_factory, None, count, seed)
    rows = {"base": (100.0, 100.0)}
    for label, features in FEATURE_VARIANTS:
        p99, qps = _measure_performance(
            service_factory, workload_factory, features, count, seed)
        rows[label] = (100.0 * base_p99 / p99 if p99 else 0.0,
                       100.0 * qps / base_qps)
    return rows


_dns_factory = make_dns
_memcached_factory = make_memcached


def _dns_workload(count):
    return dns_query_stream(SERVICE_IP, CLIENT_IP, DNS_NAMES, count=count)


def _memcached_workload(count):
    return memaslap_mix(SERVICE_IP, CLIENT_IP, count=count)


def run_table5(count=600, seed=5):
    """Both services, all variants; returns (rows, rendered text)."""
    artefacts = [
        ("DNS", dns_kernel, _dns_factory, _dns_workload),
        ("Memcached", memcached_kernel, _memcached_factory,
         _memcached_workload),
    ]
    table_rows = []
    data = {}
    for name, kernel, factory, workload in artefacts:
        util = utilisation_profile(kernel)
        perf = performance_profile(factory, workload, count, seed)
        data[name] = {"utilisation": util, "performance": perf}
        table_rows.append([name, "100.0", "100.0", "100.0"])
        for label, _ in FEATURE_VARIANTS:
            latency_pct, qps_pct = perf[label]
            table_rows.append([
                "%s %s" % (name, label),
                "%.1f" % util[label],
                "%.1f" % latency_pct,
                "%.1f" % qps_pct,
            ])
    text = render_table(
        ["Artefact", "Utilisation (%)", "Latency (%)", "Queries/s (%)"],
        table_rows,
        title="Table 5: debug controller profile (latency compared at "
              "the 99th percentile)")
    return data, text
