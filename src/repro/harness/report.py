"""Fixed-width table rendering for experiment reports."""


def render_table(headers, rows, title=None):
    """Render a list-of-lists as an aligned text table."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError("row %r has %d cells, expected %d"
                             % (row, len(row), columns))
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(cells[0])))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells[1:]:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(columns)))
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        if value >= 100:
            return "%.1f" % value
        return "%.3f" % value
    return str(value)
