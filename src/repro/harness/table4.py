"""Table 4: Emu-based services vs host-based services.

For each of the five services: average latency, 99th-percentile
latency, and maximum throughput — Emu (FPGA target) against the host
(Linux stack model).  Methodology follows §5.2: latency from DUT-only
captures (DAG model) over *count* packets; throughput from the OSNT
rate search.
"""

from repro.harness.report import render_table
from repro.hoststack import (
    host_dns, host_icmp_echo, host_memcached, host_nat, host_tcp_ping,
)
from repro.net.dag import LatencyCapture
from repro.net.osnt import OsntTrafficGenerator
from repro.net.packet import ip_to_int
from repro.net.workloads import (
    dns_query_stream, memaslap_mix, ping_flood, tcp_syn_stream,
)
from repro.services import (
    DnsServerService, IcmpEchoService, MemcachedService, NatService,
    TcpPingService,
)
from repro.targets.fpga import FpgaTarget

SERVICE_IP = ip_to_int("10.0.0.1")
CLIENT_IP = ip_to_int("10.0.0.2")
PUBLIC_IP = ip_to_int("198.51.100.1")

DNS_NAMES = ["host%02d.example" % i for i in range(16)]


class ServiceResult:
    """One service's Emu-vs-host measurements."""

    def __init__(self, name):
        self.name = name
        self.emu_avg_us = None
        self.emu_p99_us = None
        self.emu_mqps = None
        self.host_avg_us = None
        self.host_p99_us = None
        self.host_mqps = None

    def row(self):
        return [self.name,
                "%.2f" % self.emu_avg_us, "%.2f" % self.emu_p99_us,
                "%.3f" % self.emu_mqps,
                "%.2f" % self.host_avg_us, "%.2f" % self.host_p99_us,
                "%.3f" % self.host_mqps]

    @property
    def emu_tail_ratio(self):
        return self.emu_p99_us / self.emu_avg_us

    @property
    def host_tail_ratio(self):
        return self.host_p99_us / self.host_avg_us


def _service_workloads(count, seed=3, memcached_protocol="ascii"):
    """(name, emu service factory, host wrapper, workload factory).

    *memcached_protocol* switches the memaslap mix between the ASCII
    protocol (the extended design Table 4 evaluates) and the binary
    protocol (the paper-initial datapath the compiled kernel
    implements — required when cycles come from the kernel model).
    """
    def dns_factory():
        return DnsServerService(
            my_ip=SERVICE_IP,
            table={name: ip_to_int("192.0.2.%d" % (i + 1))
                   for i, name in enumerate(DNS_NAMES)})

    return [
        ("ICMP Echo",
         lambda: IcmpEchoService(my_ip=SERVICE_IP),
         host_icmp_echo,
         lambda: ping_flood(SERVICE_IP, CLIENT_IP, count=count)),
        ("TCP Ping",
         lambda: TcpPingService(my_ip=SERVICE_IP, open_ports=(7,)),
         host_tcp_ping,
         lambda: tcp_syn_stream(SERVICE_IP, CLIENT_IP, dst_port=7,
                                count=count, seed=seed)),
        ("DNS",
         dns_factory,
         host_dns,
         lambda: dns_query_stream(SERVICE_IP, CLIENT_IP, DNS_NAMES,
                                  count=count, seed=seed)),
        ("NAT",
         lambda: NatService(public_ip=PUBLIC_IP),
         host_nat,
         lambda: _nat_outbound_stream(count, seed)),
        ("Memcached",
         lambda: MemcachedService(my_ip=SERVICE_IP),
         host_memcached,
         lambda: memaslap_mix(SERVICE_IP, CLIENT_IP, count=count,
                              seed=seed,
                              protocol=memcached_protocol)),
    ]


def _nat_outbound_stream(count, seed):
    """UDP flows from the LAN side through the gateway (§5.4 setup)."""
    from repro.core.protocols.udp import build_udp
    from repro.net.packet import Frame
    import random
    rng = random.Random(seed)
    remote = ip_to_int("203.0.113.9")
    for index in range(count):
        frame = Frame(build_udp(
            0x02_00_00_00_00_05, 0x02_00_00_00_00_AA,
            CLIENT_IP, remote, rng.randint(2000, 60000), 53,
            b"payload-%04d" % (index % 10000)), src_port=0)
        yield frame.pad()


def measure_service(name, emu_factory, host_wrapper, workload_factory,
                    count=2000, seed=3, opt_level=None):
    """Measure one Table 4 row (Emu and host sides).

    *opt_level* is threaded to the FPGA target: services with a flat
    kernel then charge core cycles measured on the Kiwi-compiled design
    at that level (optimized vs. unoptimized rows become comparable);
    ``None`` keeps the behavioural pause-count.
    """
    result = ServiceResult(name)
    osnt = OsntTrafficGenerator(resolution_qps=100.0)

    # -- Emu side ----------------------------------------------------------
    emu_service = emu_factory()
    if opt_level is not None and \
            not hasattr(emu_service, "kernel_cycle_model"):
        opt_level = None            # no kernel: behavioural counting
    emu = FpgaTarget(emu_service, seed=seed, opt_level=opt_level)
    capture = LatencyCapture()
    probe_frame = None
    for frame in workload_factory():
        if probe_frame is None:
            probe_frame = frame.copy()
        _, latency_ns = emu.send(frame)
        if latency_ns is not None:
            capture.record(latency_ns)
    result.emu_avg_us = capture.average_us()
    result.emu_p99_us = capture.p99_us()
    result.emu_mqps = osnt.measure(
        FpgaTarget(emu_factory(), seed=seed, opt_level=opt_level),
        probe_frame) / 1e6

    # -- host side ---------------------------------------------------------
    host = host_wrapper(emu_factory(), seed=seed)
    host_capture = LatencyCapture()
    for frame in workload_factory():
        _, latency_us = host.send(frame)
        host_capture.record_us(latency_us)
    result.host_avg_us = host_capture.average_us()
    result.host_p99_us = host_capture.p99_us()
    result.host_mqps = osnt.measure(host, probe_frame) / 1e6
    return result


def run_table4(count=2000, seed=3, opt_level=None):
    """All five services; returns (results, rendered text).

    *opt_level* (e.g. ``0`` vs ``2``) switches the Emu rows to
    compiled-kernel cycle counting for services that have a kernel —
    run it twice to compare optimized against unoptimized tables.  The
    Memcached workload switches to the binary protocol in that mode so
    the kernel measures the request path it actually implements, not
    the early reject of a foreign protocol.
    """
    protocol = "ascii" if opt_level is None else "binary"
    results = []
    for name, emu_factory, host_wrapper, workload_factory in \
            _service_workloads(count, seed,
                               memcached_protocol=protocol):
        results.append(measure_service(
            name, emu_factory, host_wrapper, workload_factory,
            count=count, seed=seed, opt_level=opt_level))
    text = render_table(
        ["Service", "Emu avg (us)", "Emu 99th (us)", "Emu Mq/s",
         "Host avg (us)", "Host 99th (us)", "Host Mq/s"],
        [r.row() for r in results],
        title="Table 4: services on Emu vs on a host")
    return results, text
