"""Table 4: Emu-based services vs host-based services.

For each of the five services: average latency, 99th-percentile
latency, and maximum throughput — Emu (FPGA backend) against the host
(Linux stack model).  Methodology follows §5.2: latency from DUT-only
captures (DAG model) over *count* packets; throughput from the OSNT
rate search.

Services, workloads, and host baselines all come from
:func:`repro.services.catalog`; the Emu side runs through
:func:`repro.deploy.deploy`, so this module contains no
target-specific wiring.
"""

from repro.deploy import deploy
from repro.harness.report import render_table
from repro.net.dag import LatencyCapture
from repro.net.osnt import OsntTrafficGenerator
from repro.services.catalog import (
    CLIENT_IP, DNS_NAMES, PUBLIC_IP, SERVICE_IP, registry,
)

#: Table 4 display name -> registry entry.
TABLE4_SERVICES = [
    ("ICMP Echo", "icmp"),
    ("TCP Ping", "tcp_ping"),
    ("DNS", "dns"),
    ("NAT", "nat"),
    ("Memcached", "memcached"),
]


class ServiceResult:
    """One service's Emu-vs-host measurements."""

    def __init__(self, name):
        self.name = name
        self.emu_avg_us = None
        self.emu_p99_us = None
        self.emu_mqps = None
        self.host_avg_us = None
        self.host_p99_us = None
        self.host_mqps = None

    def row(self):
        return [self.name,
                "%.2f" % self.emu_avg_us, "%.2f" % self.emu_p99_us,
                "%.3f" % self.emu_mqps,
                "%.2f" % self.host_avg_us, "%.2f" % self.host_p99_us,
                "%.3f" % self.host_mqps]

    @property
    def emu_tail_ratio(self):
        return self.emu_p99_us / self.emu_avg_us

    @property
    def host_tail_ratio(self):
        return self.host_p99_us / self.host_avg_us


def _service_workloads(count, seed=3, memcached_protocol="ascii"):
    """(name, emu service factory, host wrapper, workload factory).

    *memcached_protocol* switches the memaslap mix between the ASCII
    protocol (the extended design Table 4 evaluates) and the binary
    protocol (the paper-initial datapath the compiled kernel
    implements — required when cycles come from the kernel model).
    """
    specs = registry()
    rows = []
    for display, name in TABLE4_SERVICES:
        spec = specs[name]
        options = {}
        if name == "memcached":
            options["protocol"] = memcached_protocol
        rows.append((display, spec.factory, spec.host_wrapper,
                     _workload_factory(spec, count, seed, options)))
    return rows


def _workload_factory(spec, count, seed, options):
    def factory():
        return spec.workload(count, seed, **options)
    return factory


def measure_service(name, emu_factory, host_wrapper, workload_factory,
                    count=2000, seed=3, opt_level=None):
    """Measure one Table 4 row (Emu and host sides).

    *opt_level* is threaded to the FPGA backend: services with a flat
    kernel then charge core cycles measured on the Kiwi-compiled design
    at that level (optimized vs. unoptimized rows become comparable);
    services without one keep the behavioural pause-count (the deploy
    layer's fallback).
    """
    result = ServiceResult(name)
    osnt = OsntTrafficGenerator(resolution_qps=100.0)

    # -- Emu side ----------------------------------------------------------
    emu = deploy(emu_factory, name=name).on("fpga") \
        .with_seed(seed).with_opt(opt_level).start()
    probe_frame = None
    for frame in workload_factory():
        if probe_frame is None:
            probe_frame = frame.copy()
        emu.send(frame)
    result.emu_avg_us = emu.metrics.average_latency_us()
    result.emu_p99_us = emu.metrics.p99_latency_us()
    rate_dep = deploy(emu_factory, name=name).on("fpga") \
        .with_seed(seed).with_opt(opt_level).start()
    result.emu_mqps = osnt.measure(rate_dep, probe_frame) / 1e6

    # -- host side ---------------------------------------------------------
    host = host_wrapper(emu_factory(), seed=seed)
    host_capture = LatencyCapture()
    for frame in workload_factory():
        _, latency_us = host.send(frame)
        host_capture.record_us(latency_us)
    result.host_avg_us = host_capture.average_us()
    result.host_p99_us = host_capture.p99_us()
    result.host_mqps = osnt.measure(host, probe_frame) / 1e6
    return result


def run_table4(count=2000, seed=3, opt_level=None):
    """All five services; returns (results, rendered text).

    *opt_level* (e.g. ``0`` vs ``2``) switches the Emu rows to
    compiled-kernel cycle counting for services that have a kernel —
    run it twice to compare optimized against unoptimized tables.  The
    Memcached workload switches to the binary protocol in that mode so
    the kernel measures the request path it actually implements, not
    the early reject of a foreign protocol.
    """
    protocol = "ascii" if opt_level is None else "binary"
    results = []
    for name, emu_factory, host_wrapper, workload_factory in \
            _service_workloads(count, seed,
                               memcached_protocol=protocol):
        results.append(measure_service(
            name, emu_factory, host_wrapper, workload_factory,
            count=count, seed=seed, opt_level=opt_level))
    text = render_table(
        ["Service", "Emu avg (us)", "Emu 99th (us)", "Emu Mq/s",
         "Host avg (us)", "Host 99th (us)", "Host Mq/s"],
        [r.row() for r in results],
        title="Table 4: services on Emu vs on a host")
    return results, text
