"""Scale-out experiment: N sharded devices vs one FPGA (ROADMAP).

The §5.4 experiment scales one device to four cores (3.7x on the 90/10
memaslap mix, capped by write replication); this harness runs the same
mix against a cluster deployment and measures

* aggregate throughput vs shard count (the hottest shard saturates
  first, so the consistent-hash ring's measured load imbalance scales
  the per-shard budget),
* the ring's max/mean load imbalance under the real workload, and
* the rebalance cost of removing one shard (fraction of keys remapped).

Every cluster is constructed through ``deploy("memcached").on(
"cluster", shards=N, ...)`` — the harness never touches a target
constructor.
"""

from repro.cluster import NoReplication
from repro.deploy import deploy
from repro.harness.multicore import (
    memaslap_frames, memaslap_rw_pair, single_fpga_qps,
)
from repro.harness.report import render_table

ROUTED_REQUESTS = 2000          # enough traffic to measure imbalance


def _cluster(count, policy, seed):
    return deploy("memcached").on("cluster", shards=count,
                                  policy=policy) \
        .with_seed(seed).start()


def run_cluster_scaling(shard_counts=(1, 2, 4, 8), write_ratio=0.1,
                        policy_factory=NoReplication, seed=17):
    """Throughput vs shard count on the memaslap mix.

    Returns ``(single_qps, results, text)`` where *results* maps shard
    count to ``(aggregate_qps, speedup, imbalance)``.  The imbalance is
    *measured* from routing the workload, not assumed.
    """
    read_frame, write_frame = memaslap_rw_pair(seed)
    single_qps = single_fpga_qps(write_ratio, seed,
                                 rw_pair=(read_frame, write_frame))
    workload = memaslap_frames(1.0 - write_ratio, count=ROUTED_REQUESTS,
                               seed=seed + 2)

    results = {}
    deployments = []
    rows = [["1 (single FPGA)", "%.3f" % (single_qps / 1e6), "1.00",
             "-"]]
    for count in shard_counts:
        cluster = _cluster(count, policy_factory(), seed)
        deployments.append(repr(cluster))
        cluster.send_batch([frame.copy() for frame in workload])
        imbalance = cluster.target.load_imbalance()
        aggregate = cluster.max_qps(read_frame, write_frame,
                                    write_ratio)
        speedup = aggregate / single_qps
        results[count] = (aggregate, speedup, imbalance)
        rows.append(["%d shards" % count, "%.3f" % (aggregate / 1e6),
                     "%.2f" % speedup, "%.2f" % imbalance])

    text = render_table(
        ["Configuration", "Throughput (Mq/s)", "Speedup",
         "Load imbalance"],
        rows, title="Cluster scale-out, memaslap %d%%/%d%% GET/SET"
        % (round(100 * (1 - write_ratio)), round(100 * write_ratio)))
    # What each row actually ran, for the benchmark logs.
    text += "\n" + "\n".join(deployments)
    return single_qps, results, text


def run_rebalance_cost(num_shards=8, key_space=1024, seed=17):
    """Remove one of *num_shards* shards; report the remap fraction."""
    cluster = _cluster(num_shards, None, seed).target
    sample = [("k%05d" % index).encode() for index in range(key_space)]
    victim = cluster.shard_ids[num_shards // 2]
    stats = cluster.remove_shard(victim, sample_keys=sample)
    return stats
