"""Table 3: Emu switch vs NetFPGA reference vs P4FPGA (64-byte packets).

Reported per design: logic resources, memory resources, module latency
in cycles (measured by simulation, not asserted), and throughput in
Mpps at 64-byte packets.

Throughput model: the Emu and reference switches stream 256-bit words
at 200 MHz with initiation interval ≤ 2 cycles per 64 B packet — far
above line rate, so both saturate 4x10G (59.52 Mpps, the paper's
number).  P4FPGA runs its per-port parsers at an initiation interval of
~15 cycles/packet, giving min(line rate, 4 x 200 MHz / 15) ≈ 53 Mpps —
also the paper's number, from architecture rather than coincidence.
"""

from repro.baselines.p4fpga import P4FpgaSwitch
from repro.baselines.reference_switch import ReferenceSwitch
from repro.harness.report import render_table
from repro.rtl import Simulator, estimate_resources
from repro.services.switch import build_emu_switch_core
from repro.targets.fpga import CLOCK_HZ, line_rate_pps

P4FPGA_PARSER_II_CYCLES = 15
NUM_PORTS = 4
EMU_CAM_INTERFACE_CYCLES = 2   # CAM match + result registration
PACKET_BYTES = 60   # 64 on the wire minus the 4-byte FCS


class SwitchComparison:
    """One Table 3 row."""

    def __init__(self, name, logic, memory, latency_cycles,
                 throughput_mpps, core_ii=None):
        self.name = name
        self.logic = logic
        self.memory = memory
        self.latency_cycles = latency_cycles
        self.throughput_mpps = throughput_mpps
        #: The compiled kernel's -O3 initiation interval (None for
        #: non-Emu rows and for levels/kernels that do not pipeline).
        self.core_ii = core_ii

    def row(self):
        latency = "%d cycles" % self.latency_cycles
        if self.core_ii is not None:
            latency += " (II=%d)" % self.core_ii
        return [self.name, self.logic, self.memory, latency,
                "%.2f" % self.throughput_mpps]


def _streaming_throughput_mpps(ii_cycles):
    per_port = min(CLOCK_HZ / ii_cycles, line_rate_pps(PACKET_BYTES))
    return NUM_PORTS * per_port / 1e6


def measure_emu_switch(opt_level=None, use_engine=True):
    """Compile + simulate the Emu switch core; returns a row.

    The default (``None``) pins ``-O0`` so the baseline row keeps
    reproducing the seed compiler's Table 3 figures; pass an explicit
    level for an optimized row (latency is measured on whatever machine
    that level emits, so the rows are comparable).

    Module latency is measured on the compiled execution engine by
    default (cycle-identical to the netlist simulator by the engine's
    differential proof); ``use_engine=False`` falls back to stepping
    the interpreted :class:`Simulator` — the deprecated path, kept so
    the two measurements can always be cross-checked.
    """
    design, top = build_emu_switch_core(
        opt_level=0 if opt_level is None else opt_level)
    report = estimate_resources(top)
    # Measured module latency: run the kernel FSM on one packet and
    # add the CAM interface cycles plus the output registration cycle.
    probe = {"src_port": 2, "dst_hit": 0, "dst_port": 0, "src_hit": 0}
    if use_engine:
        from repro.engine import compile_design
        _, cycles, _ = compile_design(design).run(**probe)
    else:
        sim = Simulator(design.module)
        sim.poke("start", 1)
        for name, value in probe.items():
            sim.poke(name, value)
        sim.step()
        sim.poke("start", 0)
        cycles = 1
        while sim.peek("busy"):
            sim.step()
            cycles += 1
    latency = cycles + EMU_CAM_INTERFACE_CYCLES + 1
    name = "Emu (C#)" if opt_level is None else "Emu (C#) -O%d" % opt_level
    return SwitchComparison(
        name, report.logic, report.memory, latency,
        _streaming_throughput_mpps(ii_cycles=2),
        core_ii=design.timing.achieved_ii), report


def measure_reference_switch():
    """Simulate the reference pipeline; returns a row."""
    switch = ReferenceSwitch()
    _, latency = switch.decide(0x111111111111, 0x222222222222, 1)
    report = estimate_resources(switch.module)
    return SwitchComparison(
        "NetFPGA reference (Verilog)", report.logic, report.memory,
        latency, _streaming_throughput_mpps(ii_cycles=2)), report


def measure_p4fpga_switch():
    """Simulate the P4FPGA pipeline; returns a row."""
    switch = P4FpgaSwitch()
    _, latency = switch.decide(0x111111111111, 0x222222222222, 1)
    report = estimate_resources(switch.module)
    return SwitchComparison(
        "P4FPGA (P4)", report.logic, report.memory, latency,
        _streaming_throughput_mpps(P4FPGA_PARSER_II_CYCLES)), report


def run_table3(include_optimized=False):
    """Run all three designs; returns (rows, reports, rendered text).

    With *include_optimized* two rows are added: the Emu switch
    compiled at ``-O2`` and at ``-O3``, so the table shows optimized
    vs. unoptimized module latency side by side, with the ``-O3``
    row's latency cell carrying the kernel's initiation interval when
    its pipelining schedule is feasible (the fused switch kernel
    closes in one state, so it already accepts a packet per cycle and
    the analysis reports it cannot be overlapped further).
    """
    emu, emu_report = measure_emu_switch()
    ref, ref_report = measure_reference_switch()
    p4, p4_report = measure_p4fpga_switch()
    rows = [emu, ref, p4]
    if include_optimized:
        emu_opt3, _ = measure_emu_switch(opt_level=3)
        emu_opt, _ = measure_emu_switch(opt_level=2)
        rows.insert(1, emu_opt3)
        rows.insert(1, emu_opt)
    text = render_table(
        ["Design", "Logic resources", "Memory resources",
         "Module latency", "Throughput (Mpps)"],
        [r.row() for r in rows],
        title="Table 3: switch comparison (64-byte packets, "
              "256-entry tables)")
    reports = {"emu": emu_report, "reference": ref_report,
               "p4fpga": p4_report}
    return rows, reports, text


def cam_fraction_of_emu(reports):
    """The paper: ~85% of the Emu switch's resources are the CAM."""
    emu = reports["emu"]
    cam_luts = 0.0
    for category in ("cam_ip",):
        entry = emu.breakdown.get(category)
        if entry:
            cam_luts += entry["luts"]
    if not cam_luts:
        # CAM cost comes from the instantiated netlist: estimate it
        # directly for the fraction.
        from repro.ip.cam import BinaryCAM
        cam = BinaryCAM(48, 8, 256)
        cam_luts = estimate_resources(cam.build_netlist()).logic
    return cam_luts / max(1.0, emu.logic)
