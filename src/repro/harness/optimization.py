"""Optimizing-compiler comparison: ``-O0`` vs ``-O1`` vs ``-O2`` vs
``-O3``.

For each service kernel this measures, per optimization level, the FSM
state count, the worst-case logic depth, the estimated logic resources,
and — the number everything else multiplies — the *simulated cycles for
one representative request* on the compiled netlist (stateful kernels
are warmed first, e.g. Memcached's GET is measured after a SET of the
same key).  At ``-O3`` the initiation interval joins the table: the
cycles/request column is unchanged (pipelining never touches
per-request latency), but the sustained interval between requests
drops to the II for kernels whose schedule is feasible.  Results
across levels are also cross-checked for equality, so the table cannot
silently report a speedup from a miscompile.

This is the harness behind the "Optimizing compiler" benchmark rows and
the quickstart's before/after numbers; Table 3/4 get the same effect
through the targets' ``opt_level`` threading.
"""

from repro.core.protocols.icmp import build_icmp_echo_request
from repro.deploy import deploy
from repro.errors import CompileError
from repro.harness.report import render_table
from repro.kiwi import compile_function
from repro.net.packet import ip_to_int
from repro.services.dns_server import dns_kernel
from repro.services.filter_l3l4 import filter_kernel
from repro.services.icmp_echo import icmp_echo_kernel
from repro.services.memcached import memcached_kernel
from repro.services.nat import nat_kernel
from repro.services.switch import switch_kernel

SERVICE_IP = ip_to_int("10.0.0.1")
CLIENT_IP = ip_to_int("10.0.0.2")
PUBLIC_IP = ip_to_int("198.51.100.1")


def _base_ipv4_udp(dport, length):
    frame = [0] * length
    frame[12], frame[13] = 0x08, 0x00            # EtherType IPv4
    frame[23] = 17                               # UDP
    frame[36], frame[37] = (dport >> 8) & 0xFF, dport & 0xFF
    return frame


def memcached_binary_frame(opcode, key, value=b""):
    """A binary-protocol request laid out for ``memcached_kernel``."""
    frame = _base_ipv4_udp(11211, 512)
    frame[50] = 0x80
    frame[51] = opcode
    frame[52], frame[53] = 0, len(key)
    frame[54] = 0                                # no extras
    for index, byte in enumerate(key):
        frame[74 + index] = byte
    for index, byte in enumerate(value):
        frame[80 + index] = byte
    return frame


def memcached_request_inputs(rng):
    """Crafted-input factory for differential verification of
    ``memcached_kernel``: a valid binary request with random opcode,
    key and value over random table contents — so co-simulation
    exercises the GET/SET/DELETE paths, not just the header rejects."""
    opcode = rng.choice([0, 1, 4, 9])
    key = bytes(rng.getrandbits(8) for _ in range(6))
    value = bytes(rng.getrandbits(8) for _ in range(8))
    scalars = {"my_ip": rng.getrandbits(32)}
    memories = {
        "frame": memcached_binary_frame(opcode, key, value),
        "ktags": [rng.getrandbits(48) for _ in range(256)],
        "values": [rng.getrandbits(64) for _ in range(256)],
        "kvalid": [rng.getrandbits(1) for _ in range(256)],
    }
    return scalars, memories


def _dns_query_frame():
    frame = _base_ipv4_udp(53, 512)
    for index, byte in enumerate(b"host01"):
        frame[54 + index] = byte
    return frame


def _icmp_frame():
    raw = build_icmp_echo_request(0x02_00_00_00_00_01,
                                  0x02_00_00_00_00_AA,
                                  CLIENT_IP, SERVICE_IP)
    return list(raw) + [0] * (128 - len(raw))


def _udp_outbound_frame():
    frame = _base_ipv4_udp(53, 64)
    frame[26:30] = [10, 0, 0, 2]                 # LAN source
    frame[34], frame[35] = 0x1F, 0x90            # sport 8080
    return frame


def _filter_rule_memories():
    """One installed rule: drop UDP to port 53; the probe matches it."""
    return {
        "frame": _udp_outbound_frame(),
        "rule_valid": [1] + [0] * 7,
        "rule_proto": [17] + [0] * 7,
        "rule_src": [0] * 8,
        "rule_smask": [0] * 8,
        "rule_dlo": [0] * 8,
        "rule_dhi": [65535] * 8,
        "rule_accept": [0] * 8,
    }


class KernelCase:
    """One kernel + its representative request (and optional warmups)."""

    def __init__(self, name, kernel, memories, scalars=None, warmups=()):
        self.name = name
        self.kernel = kernel
        self.memories = memories
        self.scalars = dict(scalars or {})
        self.warmups = list(warmups)


_GET_KEY = b"abc123"

SERVICE_KERNELS = [
    KernelCase("switch", switch_kernel,
               {"frame": [0] * 64},
               scalars={"src_port": 2, "dst_hit": 1, "dst_port": 3,
                        "src_hit": 1}),
    KernelCase("ICMP echo", icmp_echo_kernel,
               {"frame": _icmp_frame()},
               scalars={"my_ip": SERVICE_IP}),
    KernelCase("DNS", dns_kernel,
               {"frame": _dns_query_frame()},
               scalars={"my_ip": SERVICE_IP}),
    KernelCase("memcached GET", memcached_kernel,
               {"frame": memcached_binary_frame(0, _GET_KEY)},
               scalars={"my_ip": SERVICE_IP},
               warmups=[({"frame": memcached_binary_frame(
                   1, _GET_KEY, bytes(range(8)))},
                   {"my_ip": SERVICE_IP})]),
    KernelCase("NAT outbound", nat_kernel,
               {"frame": _udp_outbound_frame()},
               scalars={"public_ip": PUBLIC_IP, "src_port": 0}),
    KernelCase("L3/L4 filter", filter_kernel, _filter_rule_memories()),
]


def measure_kernel(case, opt_level, use_engine=True, level_budget=None):
    """(design, results, cycles) for one case at one level.

    Measured on the compiled execution engine by default
    (cycle-identical to the interpreted simulator by the engine's
    differential proof); ``use_engine=False`` falls back to the
    deprecated warm-:class:`Simulator` stepping for cross-checks.
    *level_budget* bounds -O2 fusion and -O3 pipelining (default: the
    compiler's 48-level budget).
    """
    if level_budget is None:
        design = compile_function(case.kernel, opt_level=opt_level)
    else:
        design = compile_function(case.kernel, opt_level=opt_level,
                                  level_budget=level_budget)
    if use_engine:
        from repro.engine import compile_design
        runner = compile_design(design)

        def one(memories, scalars):
            return runner.run(
                memories={k: list(v) for k, v in memories.items()},
                **scalars)
    else:
        sim = design.simulator()

        def one(memories, scalars):
            return design.run_on(
                sim,
                memories={k: list(v) for k, v in memories.items()},
                **scalars)

    for memories, scalars in case.warmups:
        one(memories, scalars)
    results, cycles, _ = one(case.memories, case.scalars)
    return design, results, cycles


def run_opt_comparison(opt_levels=(0, 1, 2, 3), cases=None):
    """Measure every case at every level; returns (data, rendered text).

    ``data[name][level]`` has ``states``, ``levels``, ``logic``,
    ``cycles``, ``ii`` (the -O3 initiation interval, None when the
    level does not pipeline or the schedule is infeasible) and
    ``throughput_cycles`` (the sustained interval between requests:
    the II when pipelined, cycles/request otherwise); the rendered
    table adds the cycle-reduction and II columns.
    """
    cases = SERVICE_KERNELS if cases is None else cases
    data = {}
    rows = []
    for case in cases:
        per_level = {}
        reference = None
        for level in opt_levels:
            design, results, cycles = measure_kernel(case, level)
            if reference is None:
                reference = results
            elif results != reference:
                raise CompileError(
                    "optimizer broke %r: -O%d returned %r, -O%d %r"
                    % (case.name, opt_levels[0], reference, level,
                       results))
            ii = design.timing.achieved_ii
            per_level[level] = {
                "states": design.state_count,
                "levels": design.timing.max_logic_levels,
                "logic": design.resources().logic,
                "cycles": cycles,
                "ii": ii,
                "throughput_cycles": ii if ii is not None else cycles,
            }
        data[case.name] = per_level
        base = per_level[opt_levels[0]]
        best = per_level[opt_levels[-1]]
        reduction = 1.0 - best["cycles"] / base["cycles"]
        rows.append([
            case.name,
            "%d -> %d" % (base["states"], best["states"]),
            "%d -> %d" % (base["levels"], best["levels"]),
            "%d -> %d" % (base["logic"], best["logic"]),
            "%d -> %d" % (base["cycles"], best["cycles"]),
            "%.0f%%" % (100.0 * reduction),
            "-" if best["ii"] is None else "%d" % best["ii"],
            "%d" % best["throughput_cycles"],
        ])
    text = render_table(
        ["Service kernel", "FSM states", "Logic levels",
         "Logic (LUT-eq)", "Cycles/request", "Cycle reduction",
         "II", "Interval"],
        rows,
        title="Optimizing compiler: -O%d vs -O%d per service kernel"
              % (opt_levels[0], opt_levels[-1]))
    return data, text


def run_hotspot_comparison(service="memcached", count=64, seed=9,
                           opt_levels=(0, 2), **options):
    """Per-FSM-state attribution of the optimizer's win.

    Deploys *service* on the fpga backend at each level with the
    kernel profiler on, and returns ``(profiles, text)`` where
    *profiles* maps level → :class:`~repro.obs.profiler.KernelProfile`
    and *text* stacks the hotspot tables.  The profile is held to the
    measured cycle counts before anything is rendered: summed state
    cycles plus one idle latch per invocation must equal the metrics
    layer's summed core cycles — the cross-check that the -O0→-O2
    reduction in the tables above is real per-state accounting, not a
    second model agreeing with itself.
    """
    if service == "memcached":
        options.setdefault("protocol", "binary")
    profiles = {}
    tables = []
    for level in opt_levels:
        dep = deploy(service).on("fpga").with_seed(seed) \
            .with_opt(level).with_profile().start()
        dep.run(count=count, seed=seed, **options)
        profile = dep.kernel_profile()
        measured = sum(dep.metrics.core_cycles)
        attributed = profile.total_cycles + profile.invocations
        if attributed != measured:
            raise CompileError(
                "profiler lost cycles at -O%d: attributed %d "
                "(states + idle), measured %d" % (level, attributed,
                                                  measured))
        profiles[level] = profile
        tables.append(profile.hotspot_table())
        dep.stop()
    return profiles, "\n\n".join(tables)


def deployable_kernel_services():
    """Registry services with a flat kernel (the ones ``with_opt``
    switches to compiled-kernel cycle counting)."""
    from repro.services.catalog import registry
    return tuple(sorted(name for name, spec in registry().items()
                        if spec.has_kernel))


def run_deployment_comparison(count=200, seed=9, opt_levels=(0, 2)):
    """The same comparison end-to-end through the Deployment API.

    :func:`run_opt_comparison` measures kernels on the bare simulator;
    this deploys each kernel-backed registry service on the fpga
    backend at each level and reads cycles/latency off the uniform
    metrics — proving the opt threading works through the whole spine,
    not just the compiler.  Returns ``(data, text)`` where
    ``data[name][level]`` has ``cycles`` and ``avg_us``.
    """
    from repro.services.catalog import registry
    specs = registry()
    data = {}
    rows = []
    for name in deployable_kernel_services():
        spec = specs[name]
        # The memcached kernel implements the binary datapath; measure
        # the path it compiles, not the ASCII early-reject.
        options = {"protocol": "binary"} if name == "memcached" else {}
        per_level = {}
        for level in opt_levels:
            dep = deploy(spec).on("fpga").with_seed(seed) \
                .with_opt(level).start()
            dep.run(count=count, seed=seed, **options)
            per_level[level] = {
                "cycles": dep.metrics.average_core_cycles(),
                "avg_us": dep.metrics.average_latency_us(),
            }
        data[name] = per_level
        base = per_level[opt_levels[0]]
        best = per_level[opt_levels[-1]]
        rows.append([
            name,
            "%.1f -> %.1f" % (base["cycles"], best["cycles"]),
            "%.3f -> %.3f" % (base["avg_us"], best["avg_us"]),
        ])
    text = render_table(
        ["Service", "Avg cycles/request", "Avg latency (us)"],
        rows,
        title="Deployment API: fpga backend at -O%d vs -O%d"
              % (opt_levels[0], opt_levels[-1]))
    return data, text
