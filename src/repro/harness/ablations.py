"""Ablations for the design choices DESIGN.md calls out.

* CAM as IP block vs CAM in the language (§4.1's trade-off).
* Pause density vs timing closure (§3.4: too much work per cycle and
  the design fails).
* Memcached on-chip vs DRAM value storage (§5.4 "Optimizations").
* Single- vs multi-threaded resource ratio (§5.3's ClickNP comparison:
  Emu 0.7x single-thread vs 1.2x multi-thread of the reference parser).
"""

from repro.deploy import deploy
from repro.harness.report import render_table
from repro.ip.cam import BinaryCAM, RegisterCAM
from repro.kiwi import compile_function, compile_threads
from repro.net.workloads import memaslap_mix
from repro.rtl import estimate_resources
from repro.services import MemcachedService
from repro.services.catalog import CLIENT_IP, SERVICE_IP
from repro.services.switch import switch_kernel


def cam_ip_vs_language(depth=64, key_width=48, value_width=8):
    """Resource/timing comparison of the two CAM options (§4.1)."""
    ip_cam = BinaryCAM(key_width, value_width, depth).build_netlist("ip")
    lang_cam = RegisterCAM(key_width, value_width, depth) \
        .build_netlist("lang")
    ip_report = estimate_resources(ip_cam)
    lang_report = estimate_resources(lang_cam)
    rows = [
        ["CAM IP block", ip_report.logic, ip_report.ffs],
        ["CAM in Emu (language)", lang_report.logic, lang_report.ffs],
    ]
    text = render_table(["Implementation", "Logic", "FFs"], rows,
                        title="Ablation: CAM IP block vs language CAM")
    return ip_report, lang_report, text


def pause_density_vs_timing():
    """The §3.4 schedule trade-off, made quantitative.

    The same computation written with coarse pauses packs more logic
    levels per cycle (fails timing sooner) but finishes in fewer
    cycles; fine pauses do the opposite.
    """
    def coarse(a: "u32", b: "u32") -> "u32":
        x = a * b + a
        y = x * 3 + b
        z = y * 5 + x
        w = z * 7 + y
        pause()
        return bits(w, 32)

    def fine(a: "u32", b: "u32") -> "u32":
        x = a * b + a
        pause()
        y = x * 3 + b
        pause()
        z = y * 5 + x
        pause()
        w = z * 7 + y
        pause()
        return bits(w, 32)

    coarse_design = compile_function(coarse)
    fine_design = compile_function(fine)
    rows = [
        ["coarse (1 pause)", coarse_design.state_count,
         coarse_design.timing.max_logic_levels],
        ["fine (4 pauses)", fine_design.state_count,
         fine_design.timing.max_logic_levels],
    ]
    text = render_table(
        ["Schedule", "FSM states (latency)", "Max logic levels"],
        rows, title="Ablation: pause density vs timing")
    return coarse_design, fine_design, text


def memcached_storage_latency(count=400, seed=23):
    """On-chip SRAM vs on-board DRAM value storage (§5.4).

    DRAM is bigger but adds latency and *variance* (refresh collisions)
    — exactly the trade-off the paper describes.
    """
    results = {}
    for storage in ("onchip", "dram"):
        target = deploy(
            lambda storage=storage: MemcachedService(
                my_ip=SERVICE_IP, storage=storage),
            name="memcached-%s" % storage) \
            .on("fpga").with_seed(seed).start()
        for frame in memaslap_mix(SERVICE_IP, CLIENT_IP, count=count,
                                  seed=seed):
            target.send(frame)
        results[storage] = target.metrics.latency
    rows = [[storage, "%.3f" % cap.average_us(), "%.3f" % cap.p99_us(),
             "%.4f" % cap.stddev_us()]
            for storage, cap in results.items()]
    text = render_table(
        ["Storage", "Avg (us)", "99th (us)", "Stddev (us)"], rows,
        title="Ablation: Memcached value storage (on-chip vs DRAM)")
    return results, text


def thread_scaling_resources(num_threads=4):
    """Single- vs multi-threaded switch kernel resources (§5.3).

    Hardware thread semantics wires N kernels as parallel circuits;
    resources scale ~linearly while per-port throughput multiplies.
    """
    single = compile_function(switch_kernel).resources()
    _, multi = compile_threads([switch_kernel] * num_threads,
                               name="switch_x%d" % num_threads)
    ratio = multi.logic / single.logic
    rows = [
        ["single thread", single.logic, "1.00"],
        ["%d threads" % num_threads, multi.logic, "%.2f" % ratio],
    ]
    text = render_table(["Configuration", "Logic", "Ratio"], rows,
                        title="Ablation: hardware thread scaling")
    return single, multi, text
