"""Tables 1 and 2: qualitative comparisons, regenerated as data.

Table 1 compares representative solutions for networking services in
hardware; Table 2 lists the direction command language.  Both are
checked by benchmarks so the rendered artefacts stay in sync with the
implementation (Table 2 is generated *from* the parser's own command
table).
"""

from repro.direction.commands import COMMAND_TABLE
from repro.harness.report import render_table

SOLUTIONS = [
    {
        "solution": "Emu",
        "what": '"Standard library"',
        "target": "Networking applications",
        "paradigm": "Any",
        "language": ".NET",
        "metric": "User defined",
        "debug": "x86, Mininet and Emu env.",
        "compiler": "Kiwi",
    },
    {
        "solution": "Kiwi",
        "what": "Compiler and libraries",
        "target": "Scientific applications",
        "paradigm": "Any",
        "language": ".NET",
        "metric": "Execution time/area",
        "debug": "x86",
        "compiler": "Kiwi",
    },
    {
        "solution": "Vivado HLS",
        "what": "Compiler and libraries",
        "target": "Scientific applications",
        "paradigm": "Any",
        "language": "C, C++, System C",
        "metric": "Throughput",
        "debug": "C simulation",
        "compiler": "Vivado HLS",
    },
    {
        "solution": "SDNet",
        "what": "Programming environment",
        "target": "Networking applications",
        "paradigm": "Packet processing",
        "language": "PX/P4",
        "metric": "Throughput",
        "debug": "C++ simulation",
        "compiler": "SDNet",
    },
    {
        "solution": "P4",
        "what": "Programming language",
        "target": "Networking applications",
        "paradigm": "Packet processing",
        "language": "P4",
        "metric": "Throughput",
        "debug": "P4 behavioral simulator, Mininet",
        "compiler": "P4 compiler, then P4FPGA/SDNet",
    },
    {
        "solution": "ClickNP",
        "what": "Programming language/model",
        "target": "Networking applications",
        "paradigm": "Packet processing",
        "language": "ClickNP",
        "metric": "Throughput",
        "debug": "Undefined",
        "compiler": "ClickNP, then Altera OpenCL or Vivado HLS",
    },
]


def solution_comparison():
    """Table 1 as structured data."""
    return list(SOLUTIONS)


def render_table1():
    headers = ["Solution", "What is it?", "Target", "Paradigm",
               "Language", "Perf. metric", "Debug env.", "Compiler"]
    rows = [[s["solution"], s["what"], s["target"], s["paradigm"],
             s["language"], s["metric"], s["debug"], s["compiler"]]
            for s in SOLUTIONS]
    return render_table(headers, rows,
                        title="Table 1: solutions for networking "
                              "services in hardware")


def direction_commands():
    """Table 2 as structured data, from the parser's command table."""
    return dict(COMMAND_TABLE)


def render_table2():
    headers = ["Command", "Behaviour"]
    rows = sorted(COMMAND_TABLE.items())
    return render_table(headers, rows,
                        title="Table 2: directing commands")
