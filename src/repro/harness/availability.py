"""Chaos experiment: kill a shard mid-workload, measure the damage.

The scaling harnesses ask "how fast is the cluster"; this one asks
"what happens when a shard dies under load".  The run drives the
memaslap mix against a :class:`~repro.cluster.target.ClusterTarget` in
fixed-size windows, crashes one of N shards at a scripted window
(:class:`~repro.netsim.faults.FaultPlan` — the same plan vocabulary as
the netsim chaos runs), lets the miss-count failure detector evict and
fail it over, and optionally rejoins it later.  Measured per run:

* per-window effective throughput — the dip while the detector is
  still counting misses, the recovery level once the ring heals, and
  the recovery time in windows;
* acknowledged-write survival — every SET the cluster acknowledged
  must still read back correctly at the end (the
  :class:`~repro.cluster.replication.PrimaryReplica` promise);
* lost and duplicated replies (timed-out requests are retried in the
  next window; the dedup check proves retries never double-ack).

Everything is seeded, so a run is exactly reproducible — the
benchmark asserts determinism by running twice and comparing.
"""

from repro.cluster import PrimaryReplica, memcached_is_write
from repro.cluster.balancer import memcached_key
from repro.cluster.target import REQUEST_TIMEOUT_NS
from repro.core.protocols.memcached import (
    build_ascii_get, build_udp_frame_header, split_udp_frame,
)
from repro.core.protocols.udp import UDPWrapper
from repro.core.protocols.udp import build_udp
from repro.deploy import deploy
from repro.harness.multicore import memaslap_frames, memaslap_rw_pair
from repro.harness.report import render_table
from repro.net.packet import Frame
from repro.netsim.faults import FaultPlan
from repro.services.catalog import CLIENT_IP, SERVICE_IP

DEFAULT_MACS = (0x02_00_00_00_00_01, 0x02_00_00_00_00_AA)


def _get_frame(key):
    """A standalone ASCII GET for the post-run read-back audit."""
    dst_mac, src_mac = DEFAULT_MACS
    payload = build_udp_frame_header(0) + build_ascii_get(key)
    return Frame(build_udp(dst_mac, src_mac, CLIENT_IP, SERVICE_IP,
                           40000, 11211, payload)).pad()


class AvailabilityReport:
    """What one chaos run measured."""

    def __init__(self, num_shards, kill_window, restore_window):
        self.num_shards = num_shards
        self.kill_window = kill_window
        self.restore_window = restore_window
        self.window_qps = []           # effective Mq/s per window
        self.window_failures = []      # timed-out attempts per window
        self.prefault_qps = 0.0
        self.min_qps = 0.0
        self.recovered_qps = 0.0
        self.recovery_windows = None   # windows from kill to recovery
        self.acked_writes = 0
        self.lost_acked = 0
        self.duplicate_replies = 0
        self.failed_requests = 0
        self.failovers = 0
        self.handoff_replays = 0
        self.rejoin_remap = None       # RemapStats, if restored
        self.text = ""

    @property
    def recovery_ratio(self):
        """Post-failover steady throughput over pre-fault throughput."""
        if self.prefault_qps <= 0:
            return 0.0
        return self.recovered_qps / self.prefault_qps

    def fingerprint(self):
        """Everything a deterministic rerun must reproduce exactly."""
        return (tuple(self.window_qps), tuple(self.window_failures),
                self.acked_writes, self.lost_acked,
                self.duplicate_replies, self.failed_requests,
                self.failovers, self.handoff_replays)


def _request_id(frame):
    """The memcached-over-UDP request id (unique per workload frame,
    preserved across retries — the duplicate-ack detector's identity)."""
    return split_udp_frame(UDPWrapper(frame.data).payload())[0]


def run_availability(num_shards=8, windows=12, per_window=256,
                     kill_window=3, restore_window=8, victim=None,
                     write_ratio=0.1, policy_factory=None, seed=29,
                     suspect_after=3, flush_every=2):
    """One seeded chaos run; returns an :class:`AvailabilityReport`.

    Window *kill_window* starts with one shard crashed (no drain); the
    failure detector evicts it after ``suspect_after`` timed-out
    requests and the cluster fails over.  Window *restore_window*
    (``None`` to skip) rejoins the repaired shard.  Requests that
    timed out are retried in the following window.

    Async replica applies flush every *flush_every* windows, so a kill
    that lands between flushes leaves acknowledged writes whose only
    replica copy is still queued — the hinted-handoff replay path is
    what keeps those alive through the failover.
    """
    if not 0 < kill_window < windows:
        raise ValueError("kill_window must fall inside the run")
    if flush_every < 1:
        raise ValueError("flush_every must be >= 1")
    if policy_factory is None:
        policy_factory = lambda: PrimaryReplica(1)   # noqa: E731

    deployment = deploy("memcached") \
        .on("cluster", shards=num_shards, policy=policy_factory(),
            is_write=memcached_is_write, suspect_after=suspect_after) \
        .with_seed(seed).start()
    cluster = deployment.target
    if victim is None:
        victim = cluster.shard_ids[num_shards // 2]

    rejoin_stats = []

    def record_rejoin(target):
        rejoin_stats.append(target.restore_shard(victim))

    plan = FaultPlan().kill_shard(kill_window, victim)
    if restore_window is not None:
        if not kill_window < restore_window < windows:
            raise ValueError("restore_window must follow kill_window")
        # restore via a closure so the rejoin's remap statistics land
        # in the report rather than being discarded.
        plan.at(restore_window, record_rejoin, "restore %s" % victim)
    injector = deployment.inject_faults(plan)

    # Per-request service time of one shard on this mix (the window
    # clock: shards run in parallel, so a window takes as long as its
    # busiest shard, plus any client-side timeouts, which serialize).
    read_frame, write_frame = memaslap_rw_pair(seed)
    probe = next(iter(cluster.shards.values()))
    service_ns = (
        (1.0 - write_ratio) * 1e9 / probe.max_qps(read_frame.copy()) +
        write_ratio * 1e9 / probe.max_qps(write_frame.copy()))

    workload = memaslap_frames(1.0 - write_ratio,
                               count=windows * per_window,
                               seed=seed + 2)
    report = AvailabilityReport(num_shards, kill_window, restore_window)
    acked_keys = set()          # keys with at least one acked SET
    ack_counts = {}             # request id -> times acknowledged
    retry_queue = []

    for window in range(windows):
        injector.advance_to(window)
        start = window * per_window
        frames = retry_queue + \
            [frame.copy()
             for frame in workload[start:start + per_window]]
        retry_queue = []
        loads_before = dict(cluster.shard_loads)
        failures_before = cluster.failed_requests

        for frame in frames:
            emitted, _ = cluster.send(frame)
            if emitted:
                request = _request_id(frame)
                ack_counts[request] = ack_counts.get(request, 0) + 1
                if memcached_is_write(frame):
                    acked_keys.add(memcached_key(frame.data))
            else:
                # Timed out on a dead shard: retry next window.
                retry_queue.append(frame.copy())
        if (window + 1) % flush_every == 0:
            cluster.flush_replication()

        failures = cluster.failed_requests - failures_before
        busiest = max((cluster.shard_loads.get(shard, 0) -
                       loads_before.get(shard, 0))
                      for shard in cluster.shard_loads)
        window_ns = busiest * service_ns + failures * REQUEST_TIMEOUT_NS
        served = len(frames) - failures
        report.window_qps.append(
            served * 1e9 / window_ns if window_ns > 0 else 0.0)
        report.window_failures.append(failures)

    # -- post-run audit ------------------------------------------------------
    report.acked_writes = len(acked_keys)
    for key in sorted(acked_keys):
        emitted, _ = cluster.send(_get_frame(key))
        reply = bytes(emitted[0][1].data) if emitted else b""
        if b"VALUE " + key not in reply:
            report.lost_acked += 1
    # A request retried after it was in fact acknowledged would ack
    # twice under its request id; the fail-fast timeout model never
    # does that, and the count proves it.
    report.duplicate_replies = sum(count - 1
                                   for count in ack_counts.values()
                                   if count > 1)

    pre = report.window_qps[:kill_window]
    report.prefault_qps = sum(pre) / len(pre)
    report.min_qps = min(report.window_qps)
    recovery_span = report.window_qps[kill_window:restore_window]
    report.recovered_qps = recovery_span[-1] if recovery_span else 0.0
    floor = 0.75 * report.prefault_qps
    for offset, qps in enumerate(report.window_qps[kill_window:]):
        if qps >= floor:
            report.recovery_windows = offset
            break
    report.failed_requests = cluster.failed_requests
    report.failovers = cluster.failovers
    report.handoff_replays = cluster.handoff_replays
    report.rejoin_remap = rejoin_stats[0] if rejoin_stats else None

    rows = []
    for window, qps in enumerate(report.window_qps):
        note = ""
        if window == kill_window:
            note = "kill %s" % victim
        elif restore_window is not None and window == restore_window:
            note = "restore %s" % victim
        rows.append(["%d" % window, "%.3f" % (qps / 1e6),
                     "%d" % report.window_failures[window], note])
    report.text = deployment.describe() + "\n\n" + render_table(
        ["Window", "Throughput (Mq/s)", "Timeouts", "Event"], rows,
        title="Chaos run: %d shards, kill@%d%s, seed %d" % (
            num_shards, kill_window,
            "" if restore_window is None
            else ", restore@%d" % restore_window, seed))
    return report
