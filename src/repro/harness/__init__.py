"""Evaluation harness: one module per paper table/figure (§5).

* :mod:`repro.harness.tables`    — Table 1 (solution comparison) and
  Table 2 (direction commands) as data + renderers.
* :mod:`repro.harness.table3`    — switch comparison (resources,
  module latency, throughput).
* :mod:`repro.harness.table4`    — Emu vs host across five services.
* :mod:`repro.harness.table5`    — debug-controller overhead.
* :mod:`repro.harness.multicore` — §5.4 four-core Memcached scaling.
* :mod:`repro.harness.ablations` — design-choice ablations called out
  in DESIGN.md (CAM IP vs language CAM, pause density vs timing,
  on-chip vs DRAM storage, single vs multi-threaded resource ratio).
* :mod:`repro.harness.optimization` — the Kiwi middle-end comparison:
  states/logic-levels/cycles per service kernel at -O0/-O1/-O2.
* :mod:`repro.harness.report`    — fixed-width table rendering.
"""

from repro.harness.report import render_table

__all__ = ["render_table"]
