"""§5.4 multi-core scaling: four Memcached cores, one per port.

"Using four Emu cores (one per port) further increases [throughput]
by 3.7x when considering a workload of 90% GET and 10% SET requests.
SET requests must be applied to all instances."

Targets are built through :func:`repro.deploy.deploy` ("fpga" for the
single-device baseline, "multicore" for the scaled run); the memcached
spec supplies the service factory and write classifier.
"""

from repro.core.protocols.memcached import memcached_is_write as _is_write
from repro.deploy import deploy
from repro.harness.report import render_table
from repro.net.workloads import memaslap_mix
from repro.services.catalog import CLIENT_IP, SERVICE_IP


def memaslap_frames(get_ratio, count=64, seed=17):
    """The memaslap mix against the Table 4 addresses (shared by the
    multi-core and cluster scaling harnesses)."""
    return list(memaslap_mix(SERVICE_IP, CLIENT_IP, count=count,
                             get_ratio=get_ratio, seed=seed))


def memaslap_rw_pair(seed=17):
    """One representative (GET frame, SET frame) from the mix."""
    reads = [f for f in memaslap_frames(1.0, count=8, seed=seed) if
             not _is_write(f)]
    writes = [f for f in memaslap_frames(0.0, count=8, seed=seed + 1) if
              _is_write(f)]
    return reads[0], writes[0]


def single_fpga_qps(write_ratio=0.1, seed=17, rw_pair=None):
    """One FPGA device serving the whole mix serially (the baseline
    every scaling experiment compares against).  Pass *rw_pair* when
    the caller already generated the representative frames."""
    read_frame, write_frame = rw_pair or memaslap_rw_pair(seed)
    single = deploy("memcached").on("fpga").with_seed(seed).start()
    return single.max_qps(read_frame, write_frame, write_ratio)


def run_multicore_scaling(num_cores=4, write_ratio=0.1, seed=17):
    """Single core vs *num_cores* cores on the 90/10 memaslap mix.

    Returns ``(single_qps, multi_qps, speedup, text)``.
    """
    read_frame, write_frame = memaslap_rw_pair(seed)
    single_qps = single_fpga_qps(write_ratio, seed,
                                 rw_pair=(read_frame, write_frame))

    multi = deploy("memcached").on("multicore", cores=num_cores) \
        .with_seed(seed).start()
    multi_qps = multi.max_qps(read_frame, write_frame, write_ratio)
    speedup = multi_qps / single_qps

    text = render_table(
        ["Configuration", "Throughput (Mq/s)", "Speedup"],
        [["1 core", "%.3f" % (single_qps / 1e6), "1.00"],
         ["%d cores (one per port)" % num_cores,
          "%.3f" % (multi_qps / 1e6), "%.2f" % speedup]],
        title="Multi-core Memcached scaling (90%% GET / 10%% SET)")
    return single_qps, multi_qps, speedup, text


def functional_replication_check(num_cores=4, seed=17):
    """SETs reach every core; GETs are answered by the local core."""
    multi = deploy("memcached").on("multicore", cores=num_cores) \
        .with_seed(seed).start()
    set_frames = [f for f in memaslap_frames(0.0, count=4, seed=seed + 2)
                  if _is_write(f)]
    frame = set_frames[0]
    multi.target.send(frame.copy(), port=1)
    return [len(core.service._store) for core in multi.target.cores]
