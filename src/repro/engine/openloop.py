"""Open-loop load generation on the unified scheduler.

The closed-loop harnesses replay one request at a time, so latency is
the closed-form per-request model and queues never form.  This module
drives a deployment *open loop*: arrivals come from a seeded stochastic
process (Poisson by default) regardless of completions, requests wait
in bounded ingest queues in front of the device model's servers, and
the latency distribution is therefore *queueing-derived* — p99 grows
with load, queues fill, and overload produces tail-drops, exactly the
behaviour the closed-loop replay cannot express.

The backend contract (see :class:`repro.deploy.backends.Backend`):

* ``open_loop_servers()`` → ``(count, route)`` — how many parallel
  service engines the backend has (cores, shards) and which one a
  frame occupies;
* ``open_loop_profile(frame)`` → ``(emitted, service_ns,
  overhead_ns)`` — the functional outcome plus the split of the
  closed-form latency into *occupancy* (serialises on the server) and
  *constant overhead* (wire/PHY time that pipelines perfectly).

Determinism: one seeded ``random.Random`` drives the arrival process,
and the scheduler breaks timestamp ties by insertion order, so a run
is a pure function of (deployment seed, arrival spec, workload).
"""

import random

from repro.errors import EngineError
from repro.engine.sched import Delay, Queue, Scheduler
from repro.obs.metrics import interpolate_percentile

ARRIVAL_PROCESSES = ("poisson", "uniform")
#: Fallback ingest depth for direct engine users.  The deploy layer
#: overrides it with the live NetFPGA ingress FIFO depth
#: (``repro.targets.pipeline.INPUT_QUEUE_DEPTH`` — the engine cannot
#: import the target layer, which sits above it).
DEFAULT_QUEUE_CAPACITY = 64


class ArrivalSpec:
    """An open-loop arrival process: shape, rate, and ingest capacity."""

    def __init__(self, process="poisson", qps=1_000_000.0,
                 capacity=DEFAULT_QUEUE_CAPACITY):
        if process not in ARRIVAL_PROCESSES:
            raise EngineError("unknown arrival process %r (have: %s)"
                              % (process, ", ".join(ARRIVAL_PROCESSES)))
        if qps <= 0:
            raise EngineError("arrival rate must be positive")
        self.process = process
        self.qps = float(qps)
        self.capacity = capacity

    def times(self, duration_ns, rng):
        """Arrival timestamps (ns) within ``[0, duration_ns)``."""
        gap_ns = 1e9 / self.qps
        times = []
        now = 0.0
        while True:
            if self.process == "poisson":
                now += rng.expovariate(1.0) * gap_ns
            else:
                now += gap_ns
            if now >= duration_ns:
                return times
            times.append(int(now))

    def __repr__(self):
        return "ArrivalSpec(%s @ %.0f qps, capacity=%r)" % (
            self.process, self.qps, self.capacity)


class ServerStats:
    """Per-server queue observations, sampled at each arrival."""

    def __init__(self, index):
        self.index = index
        self.arrivals = 0
        self.depth_samples = 0
        self.max_depth = 0
        self.busy_ns = 0.0

    def sample(self, depth):
        self.arrivals += 1
        self.depth_samples += depth
        if depth > self.max_depth:
            self.max_depth = depth

    @property
    def mean_depth(self):
        if not self.arrivals:
            return 0.0
        return self.depth_samples / self.arrivals


class OpenLoopReport:
    """What an open-loop run observed."""

    def __init__(self, spec, duration_ns, num_servers):
        self.spec = spec
        self.duration_ns = duration_ns
        self.offered = 0
        self.admitted = 0
        self.completed = 0
        self.replies = 0
        self.queue_drops = 0         # ingest queue full on arrival
        self.service_drops = 0       # processed but produced no reply
        self.latencies_ns = []
        self.servers = [ServerStats(index) for index in range(num_servers)]
        self.finished_ns = 0
        self._sorted_latencies = None     # percentile cache

    # -- derived ------------------------------------------------------------

    @property
    def drops(self):
        return self.queue_drops + self.service_drops

    @property
    def offered_qps(self):
        if not self.duration_ns:
            return 0.0
        return self.offered * 1e9 / self.duration_ns

    @property
    def achieved_qps(self):
        """Completions over the span they actually took."""
        span = max(self.duration_ns, self.finished_ns)
        if not span:
            return 0.0
        return self.completed * 1e9 / span

    @property
    def drop_rate(self):
        if not self.offered:
            return 0.0
        return self.queue_drops / self.offered

    def _percentile_ns(self, fraction):
        # Linear interpolation between neighbouring order statistics —
        # no nearest-rank snapping (see obs.metrics; the Histogram
        # instrument applies the same rule between bucket bounds).
        # The sort is cached: snapshot()/text() ask for four-plus
        # percentiles per report, and latencies_ns is append-only, so
        # a length check is a sufficient invalidation.
        cached = self._sorted_latencies
        if cached is None or len(cached) != len(self.latencies_ns):
            cached = sorted(self.latencies_ns)
            self._sorted_latencies = cached
        return interpolate_percentile(cached, fraction)

    def p50_latency_us(self):
        value = self._percentile_ns(0.50)
        return None if value is None else value / 1000.0

    def p99_latency_us(self):
        value = self._percentile_ns(0.99)
        return None if value is None else value / 1000.0

    def p999_latency_us(self):
        value = self._percentile_ns(0.999)
        return None if value is None else value / 1000.0

    def average_latency_us(self):
        if not self.latencies_ns:
            return None
        return sum(self.latencies_ns) / len(self.latencies_ns) / 1000.0

    def max_queue_depth(self):
        return max((server.max_depth for server in self.servers),
                   default=0)

    def mean_queue_depth(self):
        """Arrival-weighted mean ingest depth across every server (the
        per-server means are on ``servers[i].mean_depth``)."""
        arrivals = sum(server.arrivals for server in self.servers)
        if not arrivals:
            return 0.0
        return sum(server.depth_samples
                   for server in self.servers) / arrivals

    def snapshot(self):
        """A dict with a consistent shape on every backend (the
        README's "Open-loop report shape" section documents it)."""
        return {
            "process": self.spec.process,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "replies": self.replies,
            "queue_drops": self.queue_drops,
            "service_drops": self.service_drops,
            "drop_rate": self.drop_rate,
            "p50_latency_us": self.p50_latency_us(),
            "p99_latency_us": self.p99_latency_us(),
            "p999_latency_us": self.p999_latency_us(),
            "avg_latency_us": self.average_latency_us(),
            "max_queue_depth": self.max_queue_depth(),
            "mean_queue_depth": self.mean_queue_depth(),
            "servers": len(self.servers),
        }

    def text(self):
        """An aligned table of the run (harness/CLI output)."""
        from repro.harness.report import render_table
        snapshot = self.snapshot()
        rows = []
        for key in ("process", "offered_qps", "achieved_qps", "offered",
                    "admitted", "completed", "replies", "queue_drops",
                    "service_drops", "drop_rate", "p50_latency_us",
                    "p99_latency_us", "p999_latency_us",
                    "avg_latency_us", "max_queue_depth",
                    "mean_queue_depth", "servers"):
            value = snapshot[key]
            if isinstance(value, float):
                value = "%.3f" % value
            rows.append([key, "n/a" if value is None else str(value)])
        # Socket arrivals have no modelled rate (qps == 0): the offered
        # rate is whatever the external client sent, so omit it.
        rate = " at %.0f qps" % self.spec.qps if self.spec.qps else ""
        return render_table(
            ["Metric", "Value"], rows,
            title="Open loop: %s arrivals%s for %.3f ms"
                  % (self.spec.process, rate, self.duration_ns / 1e6))

    def __repr__(self):
        return ("OpenLoopReport(offered=%d, completed=%d, drops=%d, "
                "p99=%s us)" % (self.offered, self.completed, self.drops,
                                ("%.3f" % self.p99_latency_us())
                                if self.latencies_ns else "n/a"))


def run_open_loop(backend, spec, frames, duration_ns, seed=1,
                  tracer=None, series=None, injector=None, batch=None):
    """Drive *frames* at *spec*'s arrival process through *backend*.

    *frames* is a frame list or a factory ``count -> frames`` (the
    deployment passes its workload generator, so exactly one frame
    exists per drawn arrival).  Each arrival routes to its server's
    bounded ingest queue (tail-drop when full — a dropped request is
    never processed, like a frame the ingress FIFO rejected); each
    server drains its queue one request at a time, occupying itself
    for the request's ``service_ns``; the recorded latency is waiting
    time + service time + the backend's constant overhead.  Returns an
    :class:`OpenLoopReport`.

    *batch* (an int N) switches the servers to batched draining: a
    server about to service an unprofiled request peeks at up to N-1
    requests waiting behind it and profiles the whole group through
    ``backend.open_loop_profile_batch`` in one call (the fpga backend
    runs the group through the lockstep SoA engine).  Requests still
    leave the queue one at a time and are serviced in order, so
    admission, tail-drops, queue depths, and every latency are
    identical to the scalar run — per-server request order is
    preserved, only the profiling wall clock changes.

    Observability (all optional, zero-cost when ``None``):

    * *tracer* — a :class:`~repro.obs.trace.TraceRecorder`; its clock
      is bound to this run's scheduler, every completion emits the
      request/queue/kernel/reply span family on the server's track,
      and tail-drops emit instant events.
    * *series* — a :class:`~repro.obs.series.TimeSeries`; a sampler
      process flushes a window row every ``series.window_ns`` of
      virtual time (queue depths read live at each boundary).
    * *injector* — a :class:`~repro.netsim.faults.FaultInjector` with
      pending events; they are armed on this scheduler, so plan times
      are virtual nanoseconds on the same axis as the spans.
    """
    if batch is not None:
        batch = int(batch)
        if batch < 1:
            raise EngineError("batch must be >= 1 (or None)")
    scheduler = Scheduler()
    num_servers, route = backend.open_loop_servers()
    report = OpenLoopReport(spec, duration_ns, num_servers)
    queues = [Queue(capacity=spec.capacity, scheduler=scheduler)
              for _ in range(num_servers)]
    profiled = [{} for _ in range(num_servers)] if batch else None

    def batched_profile(index, queue, seq, frame):
        """Profile *frame* together with up to batch-1 requests waiting
        behind it, caching the group's outcomes for their later pops
        (per-server FIFO order, so the engine sees the same request
        sequence the scalar path would)."""
        cache = profiled[index]
        if seq not in cache:
            group = [(seq, frame)]
            for _, member_seq, member_frame, _ in queue.peek(batch - 1):
                group.append((member_seq, member_frame))
            outcomes = backend.open_loop_profile_batch(
                [member for _, member in group])
            for (member_seq, _), outcome in zip(group, outcomes):
                cache[member_seq] = outcome
        return cache.pop(seq)

    detail_of = None
    if tracer is not None:
        tracer.bind_clock(lambda: scheduler.now_ns)
        detail_of = getattr(backend, "open_loop_trace_detail", None)
        names = getattr(backend, "open_loop_server_names", None)
        names = names() if names is not None \
            else ["server%d" % index for index in range(num_servers)]
        for index, name in enumerate(names):
            tracer.name_track(index, name)
    if injector is not None and injector.pending:
        if tracer is not None:
            injector.tracer = tracer
        injector.arm(scheduler)

    def server(index, queue, stats):
        while True:
            item = yield queue.get()
            if batch:
                arrival_ns, seq, frame, detail = item
                emitted, service_ns, overhead_ns = \
                    batched_profile(index, queue, seq, frame)
            else:
                arrival_ns, service_ns, overhead_ns, emitted, detail = \
                    item
            dispatch_ns = scheduler.now_ns
            if service_ns > 0:
                yield Delay(service_ns)
            stats.busy_ns += service_ns
            now = scheduler.now_ns
            report.completed += 1
            if now > report.finished_ns:
                report.finished_ns = now
            if emitted:
                report.replies += len(emitted)
                latency_ns = now - arrival_ns + overhead_ns
                report.latencies_ns.append(latency_ns)
                if series is not None:
                    series.observe_latency(latency_ns)
            else:
                report.service_drops += 1
            if tracer is not None:
                args = detail if detail else {}
                if not emitted:
                    args = dict(args, dropped=True)
                tracer.span("request", arrival_ns,
                            now - arrival_ns + overhead_ns,
                            track=index, cat="request", args=args)
                tracer.span("queue", arrival_ns,
                            dispatch_ns - arrival_ns, track=index,
                            cat="queue")
                kernel_name = "kernel"
                if detail and "shard" in detail:
                    kernel_name = "hop:%s" % detail["shard"]
                elif detail and "core" in detail:
                    kernel_name = "kernel@core%s" % detail["core"]
                tracer.span(kernel_name, dispatch_ns,
                            now - dispatch_ns, track=index,
                            cat="request")
                if emitted and overhead_ns > 0:
                    tracer.span("reply", now, int(overhead_ns),
                                track=index, cat="request")

    for index, (queue, stats) in enumerate(zip(queues,
                                               report.servers)):
        scheduler.spawn(server(index, queue, stats))

    if series is not None:
        windows = -(-int(duration_ns) // series.window_ns)   # ceil

        def sampler():
            for _ in range(windows):
                yield Delay(series.window_ns)
                series.flush(scheduler.now_ns, report, queues)

        scheduler.spawn(sampler())

    def arrive(frame):
        report.offered += 1
        index = route(frame)
        queue = queues[index]
        report.servers[index].sample(queue.depth)
        if queue.full:
            queue.drops += 1
            report.queue_drops += 1
            if tracer is not None:
                tracer.instant("tail-drop", track=index, cat="queue",
                               args={"seq": report.offered - 1,
                                     "depth": queue.depth})
            return
        detail = None
        if tracer is not None:
            detail = {"seq": report.offered - 1}
            if detail_of is not None:
                detail.update(detail_of(frame))
        if batch:
            report.admitted += 1
            queue.try_put((scheduler.now_ns, report.admitted - 1,
                           frame, detail))
            return
        emitted, service_ns, overhead_ns = \
            backend.open_loop_profile(frame)
        report.admitted += 1
        queue.try_put((scheduler.now_ns, service_ns, overhead_ns,
                       emitted, detail))

    rng = random.Random("%s/openloop/%s/%s" % (seed, spec.process,
                                               spec.qps))
    times = spec.times(duration_ns, rng)
    frames = list(frames(len(times))) if callable(frames) \
        else list(frames)
    if len(frames) < len(times):
        times = times[:len(frames)]
    for when, frame in zip(times, frames):
        scheduler.schedule(when, lambda f=frame: arrive(f.copy()))
    scheduler.run(max_events=max(1_000_000, 32 * len(times)))
    if series is not None:
        series.finish(max(scheduler.now_ns, report.finished_ns),
                      report, queues)
    return report
