"""The compiled execution spine: FSM → exec-generated Python closures.

The netlist :class:`~repro.rtl.simulator.Simulator` is the semantic
reference — two-phase, cycle-accurate, and slow: every cycle it
re-walks each register's full chained-mux next-value network.  This
module compiles a :class:`~repro.kiwi.compiler.CompiledDesign` *once*
into straight-line Python:

* one step closure per FSM state (``_s<index>``), its expression DAGs
  flattened to local-variable assignments (shared sub-DAGs become one
  temp, so the code is linear in the DAG, not the tree);
* registers carried as positional locals through the state closures —
  every right-hand side is evaluated into a temp before any commit, so
  the two-phase clock-edge semantics survive exactly;
* memories as preallocated Python lists shared by all closures
  (out-of-range reads return 0, out-of-range writes are dropped, like
  the simulator);
* a driver loop that dispatches through a state table until the machine
  returns to idle, counting one latency cycle per edge — the same
  number ``CompiledDesign.run_on`` reports.

Equivalence with the interpreter is not assumed: it is proven per
kernel by :mod:`repro.engine.verify` (results, final memories, *and*
cycle counts on random inputs), and the differential suite gates CI.

``opt_level`` threads through naturally: the engine compiles whatever
FSM the Kiwi middle-end emitted, so ``compile_kernel(fn, opt_level=2)``
executes the optimized machine and the differential suite can assert
engine(-O2) == interpreter(-O0).
"""

import itertools

from repro.errors import EngineError
from repro.kiwi.builder import MemReadRef, VarRef
from repro.kiwi.fsm import Branch, Goto
from repro.rtl.expr import BinOp, Concat, Const, Mux, Slice, UnOp


def _mask(width):
    return (1 << width) - 1


class _Emitter:
    """Flattens one state's expression DAGs into straight-line code.

    ``emit`` returns a Python expression string for a node: constants
    and variable reads stay inline, every other node is bound to a
    fresh ``_t<n>`` local, memoised by node identity so shared sub-DAGs
    are computed once (the same property the simulator gets from its
    per-settle memo, here paid once at compile time).
    """

    def __init__(self, lines, mem_depths):
        self.lines = lines
        self.mem_depths = mem_depths
        self.memo = {}
        self.counter = itertools.count()

    def temp(self, text):
        name = "_t%d" % next(self.counter)
        self.lines.append("%s = %s" % (name, text))
        return name

    def bind(self, text):
        """Force *text* into a temp unless it is already one (or a
        literal) — used for values read after register commit."""
        if text.lstrip("(").startswith("_t") or text.isdigit():
            return text
        return self.temp(text)

    def emit(self, expr):
        key = id(expr)
        cached = self.memo.get(key)
        if cached is not None:
            return cached
        text = self._compile(expr)
        if not isinstance(expr, (Const, VarRef)):
            text = self.temp(text)
        self.memo[key] = text
        return text

    def _compile(self, expr):
        # Operator semantics mirror repro.rtl.expr.eval_binop/eval_unop
        # clause for clause; the differential suite holds them together.
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, VarRef):
            return "v_" + expr.name
        if isinstance(expr, MemReadRef):
            return self._compile_memread(expr)
        if isinstance(expr, BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, UnOp):
            return self._compile_unop(expr)
        if isinstance(expr, Mux):
            sel = self.emit(expr.sel)
            if_true = self.emit(expr.if_true)
            if_false = self.emit(expr.if_false)
            return "(%s if %s else %s)" % (if_true, sel, if_false)
        if isinstance(expr, Slice):
            operand = self.emit(expr.operand)
            if expr.lsb == 0:
                return "%s & %d" % (operand, _mask(expr.width))
            return "(%s >> %d) & %d" % (operand, expr.lsb,
                                        _mask(expr.width))
        if isinstance(expr, Concat):
            text = self.emit(expr.parts[0])
            for part in expr.parts[1:]:
                text = self.temp("(%s << %d) | %s"
                                 % (text, part.width, self.emit(part)))
            return text
        raise EngineError("cannot compile expression %r" % (expr,))

    def _compile_memread(self, expr):
        depth = self.mem_depths.get(expr.mem_name)
        if depth is None:
            raise EngineError("read of unknown memory %r" % expr.mem_name)
        addr = self.emit(expr.addr)
        if (1 << expr.addr.width) <= depth:
            # The address register cannot express an out-of-range
            # index; skip the guard.
            return "m_%s[%s]" % (expr.mem_name, addr)
        addr = self.bind(addr)
        return ("(m_%s[%s] if %s < %d else 0)"
                % (expr.mem_name, addr, addr, depth))

    def _compile_binop(self, expr):
        lhs = self.emit(expr.lhs)
        rhs = self.emit(expr.rhs)
        op = expr.op
        mask = _mask(expr.width)
        if op in ("+", "-", "*", "<<"):
            return "(%s %s %s) & %d" % (lhs, op, rhs, mask)
        if op in ("&", "|", "^"):
            return "%s %s %s" % (lhs, op, rhs)
        if op == ">>":
            return "%s >> %s" % (lhs, rhs)
        if op == "/":
            rhs = self.bind(rhs)
            return ("(((%s // %s) & %d) if %s else 0)"
                    % (lhs, rhs, mask, rhs))
        if op == "%":
            rhs = self.bind(rhs)
            return ("(((%s %% %s) & %d) if %s else 0)"
                    % (lhs, rhs, mask, rhs))
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return "(1 if %s %s %s else 0)" % (lhs, op, rhs)
        raise EngineError("cannot compile operator %r" % op)

    def _compile_unop(self, expr):
        operand = self.emit(expr.operand)
        op = expr.op
        if op == "~":
            return "(~%s) & %d" % (operand, _mask(expr.width))
        if op == "|r":
            return "(1 if %s != 0 else 0)" % operand
        if op == "&r":
            return ("(1 if %s == %d else 0)"
                    % (operand, _mask(expr.operand.width)))
        if op == "^r":
            return "bin(%s).count('1') & 1" % operand
        if op == "!":
            return "(1 if %s == 0 else 0)" % operand
        raise EngineError("cannot compile unary %r" % op)


def _generate_source(design, reg_names, mem_names):
    """The Python module implementing *design*'s FSM."""
    fsm = design.fsm
    reg_set = set(reg_names)
    mem_depths = {name: mem.depth
                  for name, mem in design.spec.memory_params}
    reg_args = ", ".join("v_" + name for name in reg_names)
    mem_args = "".join(", m_%s=m_%s" % (name, name) for name in mem_names)
    out = []

    for state in fsm.states:
        if state is fsm.idle:
            continue
        body = []
        emitter = _Emitter(body, mem_depths)
        # Phase 1: every right-hand side into temps (pre-edge values).
        commits = []
        for name in sorted(state.updates):
            if name not in reg_set:
                raise EngineError(
                    "state #%d updates unknown register %r"
                    % (state.index, name))
            commits.append(
                (name, emitter.bind(emitter.emit(state.updates[name]))))
        writes = []
        for mem_name, addr, data, enable in state.writes:
            if mem_name not in mem_depths:
                raise EngineError(
                    "state #%d writes unknown memory %r"
                    % (state.index, mem_name))
            writes.append((mem_name,
                           emitter.bind(emitter.emit(addr)),
                           emitter.bind(emitter.emit(data)),
                           emitter.bind(emitter.emit(enable))))
        transition = state.transition
        if isinstance(transition, Goto):
            next_text = str(transition.target.index)
        elif isinstance(transition, Branch):
            cond = emitter.bind(emitter.emit(transition.cond))
            next_text = "(%d if %s else %d)" % (
                transition.if_true.index, cond, transition.if_false.index)
        else:
            raise EngineError("state #%d has no transition" % state.index)
        # Phase 2: commit registers, then memory writes (all operands
        # were evaluated in phase 1 — the atomic clock edge).
        for name, value in commits:
            body.append("v_%s = %s" % (name, value))
        for mem_name, addr, data, enable in writes:
            body.append("if %s and %s < %d:" % (enable, addr,
                                                mem_depths[mem_name]))
            body.append("    m_%s[%s] = %s" % (mem_name, addr, data))
        prefix = reg_args + ", " if reg_names else ""
        out.append("def _s%d(%s%s):" % (state.index, reg_args,
                                        mem_args))
        for line in body:
            out.append("    " + line)
        out.append("    return %s%s" % (prefix, next_text))
        out.append("")

    table = ["None"] * len(fsm.states)
    for state in fsm.states:
        if state is not fsm.idle:
            table[state.index] = "_s%d" % state.index
    out.append("_STATES = (%s,)" % ", ".join(table))
    out.append("")

    entry = fsm.idle.transition.if_true.index
    unpack = "(%s,)" % reg_args if reg_names else None
    message = "design %r did not finish in %%d cycles" % design.name
    call_args = reg_args
    # Two driver loops from one template: the plain one is exactly the
    # pre-observability loop (profiling must cost nothing when off),
    # the profiled twin adds one counter bump per executed state —
    # each state is one clock cycle, so the counts are cycles.
    for profiled in (False, True):
        out.append("def %s(_regs, _max_cycles%s):"
                   % ("_run_profiled" if profiled else "_run",
                      ", _counts" if profiled else ""))
        if reg_names:
            out.append("    %s = _regs" % unpack)
        out.append("    _state = %d" % entry)
        out.append("    _latency = 1")
        out.append("    _table = _STATES")
        out.append("    while _state:")
        out.append("        if _latency >= _max_cycles:")
        out.append("            raise EngineError(%r %% _max_cycles)"
                   % message)
        if profiled:
            out.append("        _counts[_state] += 1")
        if reg_names:
            out.append("        %s, _state = _table[_state](%s)"
                       % (reg_args, call_args))
        else:
            out.append("        _state = _table[_state]()")
        out.append("        _latency += 1")
        if reg_names:
            out.append("    return %s, _latency" % unpack)
        else:
            out.append("    return (), _latency")
        out.append("")
    return "\n".join(out)


class CompiledKernel:
    """A design compiled to native-Python closures, with warm state.

    Mirrors the warm-simulator calling convention
    (:meth:`~repro.kiwi.compiler.CompiledDesign.run_on`): registers and
    memories persist across :meth:`run` calls, ``run`` latches the
    given scalars, loads the given memory images (prefix-overwrite,
    exactly like the simulator backdoor), executes until the machine
    idles, and returns ``(results, latency_cycles, self)``.
    """

    def __init__(self, design):
        self.design = design
        self.spec = design.spec
        self.opt_level = design.opt_level
        module = design.module
        self._reg_names = [sig.name[2:] for sig in module.signals.values()
                           if sig.kind == "reg" and
                           sig.name.startswith("v_")]
        self._reg_inits = tuple(
            module.signals["v_" + name].init for name in self._reg_names)
        self._mem_names = list(module.memories)
        self._scalar_widths = dict(
            (name, param.width) for name, param in design.spec.scalar_params)
        self._mem_widths = {name: mem.width
                            for name, mem in design.spec.memory_params}
        self._mem_depths = {name: mem.depth
                            for name, mem in design.spec.memory_params}
        reg_set = set(self._reg_names)
        self._latch_names = [name for name, _ in design.spec.scalar_params
                             if name in reg_set]
        self._latch_slots = [self._reg_names.index(name)
                             for name in self._latch_names]
        self._result_slots = [self._reg_names.index("__result%d" % index)
                              for index in range(len(design.spec.results))]
        self.source = _generate_source(design, self._reg_names,
                                       self._mem_names)
        namespace = {"EngineError": EngineError}
        for name, mem in module.memories.items():
            namespace["m_" + name] = list(mem.init)
        exec(compile(self.source, "<engine:%s>" % design.name, "exec"),
             namespace)
        self._namespace = namespace
        self._run_fn = namespace["_run"]
        self._profiled_fn = namespace["_run_profiled"]
        #: Per-state cycle counters (index-aligned with
        #: ``design.fsm.states``); ``None`` until
        #: :meth:`enable_profiling` — the disabled path costs one
        #: ``is None`` test per :meth:`run`.
        self.state_counts = None
        self._mems = {name: namespace["m_" + name]
                      for name in module.memories}
        self._inputs = {name: 0 for name, _ in design.spec.scalar_params}
        self._regs = self._reg_inits
        self.invocations = 0

    @property
    def name(self):
        return self.design.name

    # -- state access -------------------------------------------------------

    def load_memory(self, name, contents):
        """Overwrite the first ``len(contents)`` words (backdoor load)."""
        mem = self._mems.get(name)
        if mem is None:
            raise EngineError("kernel %r has no memory %r"
                              % (self.name, name))
        if len(contents) > len(mem):
            raise EngineError("image longer than memory %r" % name)
        width_mask = _mask(self._mem_widths[name])
        for addr, value in enumerate(contents):
            mem[addr] = value & width_mask

    def peek_memory(self, name, addr):
        return self._mems[name][addr]

    def poke_memory(self, name, addr, value):
        self._mems[name][addr] = value & _mask(self._mem_widths[name])

    def memory_image(self, name):
        """A copy of one memory's full contents."""
        return list(self._mems[name])

    def enable_profiling(self):
        """Switch to the profiled driver loop: one counter bump per
        executed state, accumulated in :attr:`state_counts` (read via
        :meth:`repro.obs.profiler.KernelProfile.from_kernel`)."""
        if self.state_counts is None:
            self.state_counts = [0] * len(self.design.fsm.states)
        return self

    def disable_profiling(self):
        """Back to the zero-overhead loop; counters are discarded."""
        self.state_counts = None

    def reset(self):
        """Back to power-on: registers, latched inputs, memory init."""
        self._regs = self._reg_inits
        for name in self._inputs:
            self._inputs[name] = 0
        for name, mem in self.design.module.memories.items():
            self._mems[name][:] = mem.init

    # -- execution ----------------------------------------------------------

    def run(self, max_cycles=100000, memories=None, **scalars):
        """One invocation on the warm kernel.

        Returns ``(results, latency_cycles, self)`` — the same triple
        shape as ``CompiledDesign.run_on`` so call sites can switch
        between the interpreter and the engine with a flag.
        """
        if memories:
            for name, contents in memories.items():
                self.load_memory(name, contents)
        for name, value in scalars.items():
            width = self._scalar_widths.get(name)
            if width is None:
                raise EngineError("kernel %r has no scalar %r"
                                  % (self.name, name))
            self._inputs[name] = value & _mask(width)
        # The idle cycle: latch parameters into their registers.
        regs = list(self._regs)
        for name, slot in zip(self._latch_names, self._latch_slots):
            regs[slot] = self._inputs[name]
        if self.state_counts is None:
            regs, latency = self._run_fn(tuple(regs), max_cycles)
        else:
            regs, latency = self._profiled_fn(tuple(regs), max_cycles,
                                              self.state_counts)
        self._regs = regs
        self.invocations += 1
        results = tuple(regs[slot] for slot in self._result_slots)
        return results, latency, self


def compile_design(design, batch=None):
    """Compile a :class:`CompiledDesign` into a :class:`CompiledKernel`.

    With *batch* set to an int N, returns a
    :class:`~repro.engine.batch.BatchedKernel` instead — the lockstep
    structure-of-arrays compiler that executes up to N requests per
    dispatch (``run_batch``) while keeping the full scalar ``run``
    surface.
    """
    if batch is None:
        return CompiledKernel(design)
    from repro.engine.batch import BatchedKernel
    return BatchedKernel(design, batch=batch)


def compile_kernel(fn, opt_level=0, name=None, level_budget=None,
                   batch=None):
    """Front-to-back: Kiwi-compile *fn* at *opt_level*, then compile the
    resulting (possibly optimized) FSM for the engine.  *batch* selects
    the lockstep SoA engine (see :func:`compile_design`)."""
    from repro.kiwi.compiler import DEFAULT_LEVEL_BUDGET, compile_function
    design = compile_function(
        fn, name=name, opt_level=opt_level,
        level_budget=DEFAULT_LEVEL_BUDGET if level_budget is None
        else level_budget)
    return compile_design(design, batch=batch)
