"""Multi-request-in-flight execution of a compiled kernel.

:class:`PipelinedKernel` drives the scalar engine's generated state
closures (:mod:`repro.engine.compiler`) with up to *depth* requests in
flight at once, cycle by cycle, the way the pipelined hardware would:
a new request issues every II cycles (the ``-O3`` schedule's
initiation interval), each in-flight request owns a private register
file and a private copy of its stream memories (the per-request
``frame`` buffer), and warm memories stay shared.

Correctness does not lean on the static schedule: every cycle, a
younger request stalls before executing a state that

* **reads** a shared memory some older in-flight request may still
  write (read-after-write),
* **writes** a shared memory some older request may still read or
  write (write-after-read / write-after-write), or
* touches a shared memory an older request is accessing *this* cycle
  (one port per memory per cycle),

where "may still" is name-level reachability over the FSM from the
older request's current state.  The oldest request never stalls, so
the pipeline always drains.  Requests retire strictly in issue order
(results, stream-buffer commit, and the warm register file hand-off
all happen at retire), which keeps final memory images byte-identical
to sequential execution — the differential harness in
:mod:`repro.engine.verify` proves exactly that, N requests in flight
against the sequential ``-O0`` engine.

When the kernel has no feasible schedule (data-dependent loops, stale
register observables, timing budget), the same loop degrades to
serial issue — one request at a time, cycle counts identical to the
scalar engine.
"""

from repro.errors import EngineError
from repro.engine.batch import _mems_touched
from repro.engine.compiler import CompiledKernel, _mask


class _Context:
    """One in-flight request."""

    __slots__ = ("job", "regs", "state", "streams", "overrides",
                 "issue_cycle", "finish_cycle", "stalls")

    def __init__(self, job, regs, state, streams):
        self.job = job
        self.regs = regs
        self.state = state
        self.streams = streams
        self.overrides = {"m_" + name: image
                          for name, image in streams.items()}
        self.issue_cycle = 0
        self.finish_cycle = None
        self.stalls = 0

    @property
    def finished(self):
        return self.state == 0


class PipelinedKernel:
    """A compiled kernel executed with overlapping requests.

    Wraps a scalar :class:`~repro.engine.compiler.CompiledKernel`
    (same generated closures, same warm memories) and adds
    :meth:`run_stream`.  The scalar ``run`` surface stays available
    for warm-up / mixed use.
    """

    def __init__(self, design, depth=None, schedule=None):
        self._scalar = CompiledKernel(design)
        self.design = design
        self.spec = design.spec
        self.opt_level = design.opt_level
        if schedule is None:
            schedule = getattr(design.fsm, "pipeline_schedule", None)
        self.schedule = schedule
        feasible = schedule is not None and schedule.feasible
        #: Issue interval in cycles (None: serial issue).
        self.ii = schedule.initiation_interval if feasible else None
        if depth is None:
            depth = (-(-schedule.latency_cycles // self.ii)
                     if feasible else 1)
        self.depth = max(1, int(depth))
        mem_names = set(self._scalar._mem_names)
        if feasible:
            streams = [name for name in schedule.stream_memories
                       if name in mem_names]
        else:
            from repro.kiwi.opt.pipeline import DEFAULT_STREAM_MEMORIES
            streams = [name for name in DEFAULT_STREAM_MEMORIES
                       if name in mem_names]
        self.stream_memories = tuple(streams)
        self._build_hazard_sets()
        #: Cycle numbers at which requests retired, for steady-state
        #: throughput measurement across one :meth:`run_stream` call.
        self.retire_cycles = []
        self.stall_cycles = 0
        #: Most requests simultaneously in flight during the last
        #: stream — differential callers assert this is > 1 so the
        #: check cannot pass without ever overlapping requests.
        self.peak_in_flight = 0

    def _build_hazard_sets(self):
        """Name-level per-state access sets and their reachability
        closure (the "may still touch" relation hazard stalls use)."""
        fsm = self.design.fsm
        stream_set = set(self.stream_memories)
        count = len(fsm.states)
        self._reads = [frozenset()] * count
        self._writes = [frozenset()] * count
        for state in fsm.states:
            if state is fsm.idle:
                continue
            read, written = _mems_touched(state)
            self._reads[state.index] = frozenset(read - stream_set)
            self._writes[state.index] = frozenset(written - stream_set)
        reads_reach = [set(s) for s in self._reads]
        writes_reach = [set(s) for s in self._writes]
        changed = True
        while changed:
            changed = False
            for state in fsm.states:
                if state is fsm.idle:
                    continue
                index = state.index
                for succ in fsm.successors(state):
                    if succ is fsm.idle:
                        continue
                    for acc, reach in ((reads_reach, reads_reach),
                                       (writes_reach, writes_reach)):
                        before = len(acc[index])
                        acc[index] |= reach[succ.index]
                        if len(acc[index]) != before:
                            changed = True
        self._reads_reach = [frozenset(s) for s in reads_reach]
        self._writes_reach = [frozenset(s) for s in writes_reach]

    # -- scalar surface (delegation) ----------------------------------------

    @property
    def name(self):
        return self._scalar.name

    def run(self, **kwargs):
        return self._scalar.run(**kwargs)

    def reset(self):
        self._scalar.reset()

    def load_memory(self, name, contents):
        self._scalar.load_memory(name, contents)

    def poke_memory(self, name, addr, value):
        self._scalar.poke_memory(name, addr, value)

    def peek_memory(self, name, addr):
        return self._scalar.peek_memory(name, addr)

    def memory_image(self, name):
        return self._scalar.memory_image(name)

    # -- pipelined execution ------------------------------------------------

    def _issue(self, job, cycle):
        """Latch one request into a fresh context (the idle cycle)."""
        scalar = self._scalar
        scalars, memories = job
        for name, value in scalars.items():
            width = scalar._scalar_widths.get(name)
            if width is None:
                raise EngineError("kernel %r has no scalar %r"
                                  % (self.name, name))
            scalar._inputs[name] = value & _mask(width)
        streams = {}
        for name in self.stream_memories:
            depth = scalar._mem_depths[name]
            width_mask = _mask(scalar._mem_widths[name])
            image = memories.get(name)
            if image is None:
                # Unloaded stream buffer: the request sees whatever
                # the shared memory holds right now (nothing else is
                # in flight writing it — it is a stream memory).
                streams[name] = list(scalar._mems[name])
            else:
                streams[name] = [value & width_mask for value in image]
        for name in memories:
            if name not in self.stream_memories:
                raise EngineError(
                    "per-request image for shared memory %r: only "
                    "stream memories %r may be loaded per request "
                    "in pipelined execution"
                    % (name, list(self.stream_memories)))
            if len(streams[name]) != scalar._mem_depths[name]:
                raise EngineError(
                    "pipelined stream memory %r needs a full %d-word "
                    "image (got %d words)"
                    % (name, scalar._mem_depths[name],
                       len(streams[name])))
        regs = list(scalar._regs)
        for name, slot in zip(scalar._latch_names, scalar._latch_slots):
            regs[slot] = scalar._inputs[name]
        entry = self.design.fsm.idle.transition.if_true.index
        context = _Context(job, tuple(regs), entry, streams)
        context.issue_cycle = cycle
        return context

    def _may_conflict(self, context, older):
        """Must *context* hold back this cycle because of *older*?"""
        state = context.state
        need_r = self._reads[state]
        need_w = self._writes[state]
        if not need_r and not need_w:
            return False
        older_state = older.state
        if need_r & self._writes_reach[older_state]:
            return True                                  # RAW
        if need_w & (self._writes_reach[older_state] |
                     self._reads_reach[older_state]):
            return True                                  # WAW / WAR
        return False

    def run_stream(self, jobs, max_cycles=1000000):
        """Execute *jobs* (``(scalars, memories)`` pairs, like
        ``run_batch``) with up to :attr:`depth` in flight.

        Returns one ``(results, latency_cycles, stream_images)`` per
        job, in job order: the result tuple, the issue-to-retire cycle
        count (latch cycle included, stall cycles included), and the
        request's final private stream-memory images (the mutated
        ``frame`` — i.e. the reply bytes).  Warm memories and the
        register file are handed over in issue order, so after the
        stream the shared state matches sequential execution of the
        same jobs.
        """
        jobs = list(jobs)
        out = []
        self.retire_cycles = []
        self.stall_cycles = 0
        self.peak_in_flight = 0
        active = []                    # oldest first
        next_job = 0
        last_issue = None
        cycle = 0
        table = self._scalar._namespace["_STATES"]
        has_regs = bool(self._scalar._reg_names)
        while len(out) < len(jobs):
            cycle += 1
            if cycle > max_cycles:
                raise EngineError(
                    "pipelined stream on %r did not finish in %d "
                    "cycles" % (self.name, max_cycles))
            # Phase 1: stall decisions against start-of-cycle states,
            # oldest first; one claim per shared memory per cycle.
            stepping = []
            claimed = set()
            for position, context in enumerate(active):
                if context.finished:
                    continue
                stall = False
                for older in active[:position]:
                    if not older.finished and \
                            self._may_conflict(context, older):
                        stall = True
                        break
                if not stall:
                    touched = (self._reads[context.state] |
                               self._writes[context.state])
                    if touched & claimed:
                        stall = True
                    else:
                        claimed |= touched
                if stall:
                    context.stalls += 1
                    self.stall_cycles += 1
                else:
                    stepping.append(context)
            # Phase 2: execute.  No two stepping contexts touch the
            # same shared memory this cycle, so order is immaterial.
            for context in stepping:
                fn = table[context.state]
                if has_regs:
                    result = fn(*context.regs, **context.overrides)
                    context.regs = result[:-1]
                    context.state = result[-1]
                else:
                    context.state = fn(**context.overrides)
                if context.finished:
                    context.finish_cycle = cycle
            # Phase 3: retire strictly in issue order.
            while active and active[0].finished:
                context = active.pop(0)
                scalar = self._scalar
                for name, image in context.streams.items():
                    scalar._mems[name][:] = image
                scalar._regs = tuple(context.regs)
                scalar.invocations += 1
                results = tuple(context.regs[slot]
                                for slot in scalar._result_slots)
                latency = 1 + context.finish_cycle - context.issue_cycle
                out.append((results, latency,
                            {name: list(image) for name, image
                             in context.streams.items()}))
                self.retire_cycles.append(cycle)
            # Phase 4: issue (this cycle is the new request's latch
            # cycle; it executes its entry state next cycle).
            if next_job < len(jobs) and len(active) < self.depth:
                due = (last_issue is None or
                       (self.ii is not None and
                        cycle - last_issue >= self.ii) or
                       (self.ii is None and not active))
                if due:
                    active.append(self._issue(jobs[next_job], cycle))
                    next_job += 1
                    last_issue = cycle
            in_flight = sum(1 for context in active
                            if not context.finished)
            if in_flight > self.peak_in_flight:
                self.peak_in_flight = in_flight
        return out

    def measured_interval(self):
        """Average cycles between retires over the last stream — the
        executor's own steady-state II (equals the schedule's II once
        the pipeline is warm and hazard-free)."""
        retires = self.retire_cycles
        if len(retires) < 2:
            return None
        return (retires[-1] - retires[0]) / float(len(retires) - 1)


def compile_pipelined(fn, opt_level=3, name=None, depth=None,
                      level_budget=None):
    """Front-to-back: Kiwi-compile *fn* (``-O3`` by default) and wrap
    the result in a :class:`PipelinedKernel`."""
    from repro.kiwi.compiler import DEFAULT_LEVEL_BUDGET, compile_function
    design = compile_function(
        fn, name=name, opt_level=opt_level,
        level_budget=DEFAULT_LEVEL_BUDGET if level_budget is None
        else level_budget)
    return PipelinedKernel(design, depth=depth)
