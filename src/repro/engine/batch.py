"""Batched engine codegen (-O3): lockstep structure-of-arrays execution.

The scalar engine (:mod:`repro.engine.compiler`) executes one request
at a time: every ``run()`` dispatches per-state closures until the FSM
idles.  The hardware the repo reproduces has no such limit — Emu cores
pipeline many independent requests — and ROADMAP item 1 names batched
codegen the biggest remaining lever.  This module compiles the same
FSM a second way, for *N requests at once*:

* **Structure of arrays** — every live register becomes a parallel
  list (``r_<name>[lane]``), every per-request memory a list of
  per-lane rows, so one state's straight-line code runs as a tight
  ``for _ln in _lanes`` loop over all requests currently in that
  state.
* **Superblocks** — straight-line ``Goto`` chains fuse into one
  closure, so a ten-state unconditional sequence costs one dispatch
  per batch instead of ten dispatches per request.
* **Early-exit masking** — lanes idle at different cycles; a finished
  lane simply leaves the active-lane lists, so ragged batches cost
  only the work their live lanes do.
* **Loop-invariant hoisting** — expression temps that depend only on
  constants, uniform latched scalars, or shared read-only memories
  are computed once per dispatch, outside the lane loop (and
  const-only subtrees fold at compile time, which is most of the
  ``-O0`` expression text).

Lockstep reorders execution across requests, so it is only attempted
when two static analyses prove the reorder unobservable:

1. **Definite assignment** — no register is read before this
   request's own write (latched parameters count as written at
   entry), and every result register is assigned on all entry→idle
   paths.  Registers then carry no information between requests, so
   per-lane copies starting from the batch-entry snapshot are
   equivalent to the sequential carry chain.
2. **Hazard gating** — memories *loaded in full by every lane* are
   per-lane rows (a full load severs any cross-request flow); shared
   memories the FSM writes are *hazards*.  A state touching a hazard
   memory may only execute for lane *k* once every lane below *k* is
   clear (finished, or parked in a state that cannot reach a hazard
   state), so all hazard-memory operations happen in lane-major
   order — exactly the sequential interleaving — while pure states
   still run in lockstep.

When either analysis fails (or a batch loads partial memory images),
:meth:`BatchedKernel.run_batch` silently falls back to sequential
scalar execution — always correct, never wrong, just not accelerated.
``fallback_batches``/``lockstep_batches`` count which path ran.

Per-request observables are bit-identical to the scalar engine:
results, per-lane latency cycles, final memory images, and warm state
across successive batches (the one permitted difference: a register
the analysis proved unreadable-before-write may hold a different
*internal* value after a batch — it is unobservable by construction,
and :mod:`repro.engine.verify` checks the observable set).
"""

import itertools

from repro.errors import EngineError
from repro.kiwi.builder import MemReadRef, VarRef
from repro.kiwi.fsm import Branch, Goto
from repro.rtl.expr import (
    BinOp, Concat, Const, Mux, Slice, UnOp, eval_binop, eval_unop,
)

#: Superblock length cap — long enough to swallow every service
#: kernel's reply-construction chain, small enough to bound code size.
MAX_BLOCK_STATES = 16
#: Nesting cap for single-use inlining (Python's parser dislikes
#: pathologically deep conditional expressions).
MAX_INLINE_DEPTH = 24


def _mask(width):
    return (1 << width) - 1


# -- FSM facts ---------------------------------------------------------------

def _state_roots(state):
    """Every expression a state evaluates (pre-edge, phase 1)."""
    for name in sorted(state.updates):
        yield state.updates[name]
    for _, addr, data, enable in state.writes:
        yield addr
        yield data
        yield enable
    transition = state.transition
    if isinstance(transition, Branch):
        yield transition.cond


def _walk(expr):
    seen = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children())


def _vars_read(state):
    names = set()
    for root in _state_roots(state):
        for node in _walk(root):
            if isinstance(node, VarRef):
                names.add(node.name)
    return names


def _mems_touched(state):
    """(read, written) memory-name sets of one state."""
    read = set()
    for root in _state_roots(state):
        for node in _walk(root):
            if isinstance(node, MemReadRef):
                read.add(node.mem_name)
    written = {mem_name for mem_name, _, _, _ in state.writes}
    return read, written


class _Bail(Exception):
    """Cleanliness analysis exceeded its budget — treat as dirty."""


class _CleanAnalysis:
    """Does any observable value depend on *stale* registers?

    A register read at request entry observes whatever the previous
    request left behind — sequential execution defines which request
    that is, lockstep execution changes it.  Lockstep is therefore
    sound exactly when no *observable* (memory-write address/data/
    enable, branch condition, or result register) depends on a stale
    value.  ``clean(expr)`` decides "this expression's value is
    independent of stale registers" bottom-up, with one crucial
    refinement: if-conversion guards every predicated value with the
    predicate that makes it well-defined (``values[h]`` is written
    with data ``Mux(is_set, built_value, stale_v)`` under enable
    ``is_set``), so write addresses and data are checked *under the
    assumption their enable is true*, and a ``Mux`` whose selector is
    an assumed predicate only contributes the selected arm.
    Predicates are matched structurally (the front-end CSEs them into
    shared nodes, but structural equality is what soundness needs:
    equal pure expressions have equal values).
    """

    BUDGET = 200000

    def __init__(self):
        self._fp = {}
        self._intern = {}
        self._sels = {}
        self._steps = 0

    def fingerprint(self, expr):
        # Interned to a small int: fingerprints live in frozensets that
        # are intersected on every memo lookup, and hashing deep nested
        # tuples there is quadratic in practice (tuples do not cache
        # their hash).  Equal structures still get equal fingerprints.
        key = id(expr)
        cached = self._fp.get(key)
        if cached is not None:
            return cached
        if isinstance(expr, VarRef):
            out = ("var", expr.name)
        elif isinstance(expr, Const):
            out = ("const", expr.value, expr.width)
        elif isinstance(expr, Mux):
            out = ("mux", self.fingerprint(expr.sel),
                   self.fingerprint(expr.if_true),
                   self.fingerprint(expr.if_false))
        elif isinstance(expr, BinOp):
            out = ("bin", expr.op, self.fingerprint(expr.lhs),
                   self.fingerprint(expr.rhs))
        elif isinstance(expr, UnOp):
            out = ("un", expr.op, self.fingerprint(expr.operand))
        elif isinstance(expr, Slice):
            out = ("slice", expr.msb, expr.lsb,
                   self.fingerprint(expr.operand))
        elif isinstance(expr, MemReadRef):
            out = ("memread", expr.mem_name,
                   self.fingerprint(expr.addr))
        elif isinstance(expr, Concat):
            out = ("cat",) + tuple(self.fingerprint(part)
                                   for part in expr.parts)
        else:
            out = ("opaque", id(expr))
        out = self._intern.setdefault(out, len(self._intern))
        self._fp[key] = out
        return out

    def _sels_below(self, expr):
        """Fingerprints of every Mux selector in *expr*'s subtree —
        the only assumptions whose truth can matter inside it.  Memo
        keys are restricted to this set so unrelated path contexts
        collapse (otherwise deep mux nests go exponential)."""
        key = id(expr)
        cached = self._sels.get(key)
        if cached is not None:
            return cached
        out = frozenset()
        if isinstance(expr, Mux):
            out = out | {self.fingerprint(expr.sel)}
        for child in expr.children():
            out = out | self._sels_below(child)
        self._sels[key] = out
        return out

    def clean(self, expr, defined, assume_true=frozenset()):
        try:
            return self._clean(expr, defined, assume_true,
                               frozenset(), {})
        except _Bail:
            return False

    def _clean(self, expr, defined, true_fps, false_fps, memo):
        self._steps += 1
        if self._steps > self.BUDGET:
            raise _Bail()
        relevant = self._sels_below(expr)
        key = (id(expr), true_fps & relevant, false_fps & relevant)
        cached = memo.get(key)
        if cached is None:
            cached = self._clean_uncached(expr, defined, true_fps,
                                          false_fps, memo)
            memo[key] = cached
        return cached

    def _clean_uncached(self, expr, defined, true_fps, false_fps,
                        memo):
        if isinstance(expr, Const):
            return True
        if isinstance(expr, VarRef):
            return expr.name in defined
        if isinstance(expr, Mux):
            sel_fp = self.fingerprint(expr.sel)
            if sel_fp in true_fps:
                return self._clean(expr.if_true, defined, true_fps,
                                   false_fps, memo)
            if sel_fp in false_fps:
                return self._clean(expr.if_false, defined, true_fps,
                                   false_fps, memo)
            if not self._clean(expr.sel, defined, true_fps,
                               false_fps, memo):
                return False
            return (self._clean(expr.if_true, defined,
                                true_fps | {sel_fp}, false_fps, memo)
                    and self._clean(expr.if_false, defined, true_fps,
                                    false_fps | {sel_fp}, memo))
        # Memory contents are stale-free by induction: per-lane rows
        # are freshly loaded, and every shared-memory write passed
        # this same analysis — so a read is clean iff its address is.
        return all(self._clean(child, defined, true_fps, false_fps,
                               memo)
                   for child in expr.children())


def _lockstep_safe(fsm, latched, result_names, never_written):
    """Can this FSM run in lockstep without stale-register effects?

    Forward must-assign dataflow over the FSM, where a state assigns
    only the registers whose update expression is *clean* (dirty
    updates are permitted — the register simply stays stale, and any
    later observable use of it fails the check).  Requires every
    memory-write operand (under its enable) and every branch
    condition to be clean, and every result register to be definitely
    assigned on all paths into idle.
    """
    entry = fsm.idle.transition.if_true
    if entry is fsm.idle:
        return True                      # degenerate: no work at all
    states = [s for s in fsm.states if s is not fsm.idle]
    analysis = _CleanAnalysis()
    preds = {s: [] for s in states}
    idle_preds = []
    for state in states:
        for succ in fsm.successors(state):
            if succ is fsm.idle:
                idle_preds.append(state)
            else:
                preds[succ].append(state)
    everything = frozenset(
        name for s in states for name in s.updates) | latched
    da_in = {s: everything for s in states}
    da_in[entry] = frozenset(latched)

    def assigns(state):
        defined = da_in[state] | never_written
        return frozenset(
            name for name in state.updates
            if analysis.clean(state.updates[name], defined))

    changed = True
    while changed:
        changed = False
        for state in states:
            # The idle edge into entry contributes exactly the latched
            # parameter set (everything else is stale previous-request
            # state); other in-edges contribute their out-sets; the
            # meet is the intersection.
            acc = frozenset(latched) if state is entry else None
            for pred in preds[state]:
                out = da_in[pred] | assigns(pred)
                acc = out if acc is None else (acc & out)
            if acc is None:
                acc = da_in[state]       # unreachable: keep top
            if acc != da_in[state]:
                da_in[state] = acc
                changed = True
    for state in states:
        defined = da_in[state] | never_written
        for _, addr, data, enable in state.writes:
            if not analysis.clean(enable, defined):
                return False
            assume = frozenset((analysis.fingerprint(enable),))
            if not analysis.clean(addr, defined, assume):
                return False
            if not analysis.clean(data, defined, assume):
                return False
        transition = state.transition
        if isinstance(transition, Branch):
            if not analysis.clean(transition.cond, defined):
                return False
    if result_names:
        acc = None
        for pred in idle_preds:
            out = da_in[pred] | assigns(pred)
            acc = out if acc is None else (acc & out)
        if acc is None:
            acc = frozenset()
        if not set(result_names) <= (acc | never_written):
            return False
    return True


# -- batch expression emitter ------------------------------------------------

_ATOM_PREFIXES = ("_t", "_h", "u_", "v_")


def _is_atom(text):
    """Safe to re-read after register commits / reuse verbatim."""
    if text.lstrip("-").isdigit():
        return True
    return text.startswith(_ATOM_PREFIXES) and text.isidentifier()


class _BatchEmitter:
    """The scalar :class:`repro.engine.compiler._Emitter`, batched.

    Differences: constant subtrees fold at compile time (via the same
    ``eval_binop``/``eval_unop`` the simulator uses, so folds are
    semantics-preserving by construction); single-use subtrees inline
    (so untaken ``Mux`` arms are never evaluated); subtrees invariant
    across lanes hoist into the block preamble, outside the lane loop;
    memory reads route to per-lane rows (``pl_<name>``) or shared
    lists (``m_<name>``) per the batch layout.
    """

    def __init__(self, layout, preamble, hoist_memo, counter,
                 hoist_counter):
        self.layout = layout
        self.preamble = preamble
        self.body = []
        self.memo = {}              # per state: id -> text
        self.consts = {}            # id -> folded int (subset of memo)
        self.uniform = {}           # id -> bool (lane-invariant)
        self.hoist_memo = hoist_memo    # per block: uniform temps
        self.refs = {}
        self.counter = counter
        self.hoist_counter = hoist_counter

    # -- bookkeeping ---------------------------------------------------

    def count_refs(self, roots):
        nodes = []
        seen = set()
        for root in roots:
            self.refs[id(root)] = self.refs.get(id(root), 0) + 1
            for node in _walk(root):
                if id(node) not in seen:
                    seen.add(id(node))
                    nodes.append(node)
        for node in nodes:
            for child in node.children():
                self.refs[id(child)] = self.refs.get(id(child), 0) + 1

    def temp(self, text):
        name = "_t%d" % next(self.counter)
        self.body.append("%s = %s" % (name, text))
        return name

    def hoist(self, text):
        name = "_h%d" % next(self.hoist_counter)
        self.preamble.append("%s = %s" % (name, text))
        return name

    def root(self, expr):
        """Emit *expr* as a phase-1 value: folded constants and temps
        pass through, anything else is pinned into a temp so phase-2
        commits cannot disturb it (the scalar emitter's ``bind``)."""
        text = self.emit(expr)
        if _is_atom(text) and not text.startswith("v_"):
            return text
        return self.temp(text)

    # -- recursive emission --------------------------------------------

    def emit(self, expr, depth=0):
        key = id(expr)
        cached = self.hoist_memo.get(key)
        if cached is not None:
            return cached
        cached = self.memo.get(key)
        if cached is not None:
            return cached
        text = self._compile(expr, depth)
        key_const = key in self.consts
        if not key_const and not isinstance(expr, (Const, VarRef)):
            if self.uniform.get(key):
                # Lane-invariant compound: compute once per dispatch.
                text = self.hoist(text)
                self.hoist_memo[key] = text
                return text
            if self.refs.get(key, 2) > 1 or depth >= MAX_INLINE_DEPTH:
                text = self.temp(text)
            else:
                text = "(%s)" % text
        self.memo[key] = text
        return text

    def _fold(self, expr, value):
        self.consts[id(expr)] = value
        self.uniform[id(expr)] = True
        return repr(value)

    def _const_of(self, expr, text):
        if id(expr) in self.consts:
            return self.consts[id(expr)]
        if isinstance(expr, Const):
            return expr.value
        if text.lstrip("-").isdigit():
            return int(text)
        return None

    def _is_uniform(self, expr):
        return bool(self.uniform.get(id(expr))) \
            or isinstance(expr, Const) \
            or id(expr) in self.consts

    def _compile(self, expr, depth):
        layout = self.layout
        if isinstance(expr, Const):
            self.uniform[id(expr)] = True
            return repr(expr.value)
        if isinstance(expr, VarRef):
            name = expr.name
            if name in layout.const_regs:
                return self._fold(expr, layout.const_regs[name])
            if name in layout.uniform_set:
                self.uniform[id(expr)] = True
                return "u_" + name
            return "v_" + name
        if isinstance(expr, MemReadRef):
            return self._compile_memread(expr, depth)
        if isinstance(expr, BinOp):
            return self._compile_binop(expr, depth)
        if isinstance(expr, UnOp):
            operand = self.emit(expr.operand, depth + 1)
            value = self._const_of(expr.operand, operand)
            if value is not None:
                return self._fold(expr, eval_unop(
                    expr.op, value, expr.operand.width, expr.width))
            self.uniform[id(expr)] = self._is_uniform(expr.operand)
            return self._compile_unop_text(expr, operand)
        if isinstance(expr, Mux):
            sel = self.emit(expr.sel, depth + 1)
            sel_value = self._const_of(expr.sel, sel)
            if sel_value is not None:
                arm = expr.if_true if sel_value else expr.if_false
                text = self.emit(arm, depth)
                self.uniform[id(expr)] = self._is_uniform(arm)
                if self._const_of(arm, text) is not None:
                    self.consts[id(expr)] = self._const_of(arm, text)
                return text
            if_true = self.emit(expr.if_true, depth + 1)
            if_false = self.emit(expr.if_false, depth + 1)
            self.uniform[id(expr)] = (
                self._is_uniform(expr.sel)
                and self._is_uniform(expr.if_true)
                and self._is_uniform(expr.if_false))
            return "%s if %s else %s" % (if_true, sel, if_false)
        if isinstance(expr, Slice):
            operand = self.emit(expr.operand, depth + 1)
            value = self._const_of(expr.operand, operand)
            if value is not None:
                return self._fold(
                    expr, (value >> expr.lsb) & _mask(expr.width))
            self.uniform[id(expr)] = self._is_uniform(expr.operand)
            if expr.lsb == 0:
                return "%s & %d" % (operand, _mask(expr.width))
            return "(%s >> %d) & %d" % (operand, expr.lsb,
                                        _mask(expr.width))
        if isinstance(expr, Concat):
            texts = [self.emit(part, depth + 1) for part in expr.parts]
            values = [self._const_of(p, t)
                      for p, t in zip(expr.parts, texts)]
            if all(v is not None for v in values):
                acc = values[0]
                for part, value in zip(expr.parts[1:], values[1:]):
                    acc = (acc << part.width) | value
                return self._fold(expr, acc)
            self.uniform[id(expr)] = all(
                self._is_uniform(p) for p in expr.parts)
            acc = texts[0]
            for part, text in zip(expr.parts[1:], texts[1:]):
                acc = "((%s << %d) | %s)" % (acc, part.width, text)
            return acc
        raise EngineError("cannot batch-compile expression %r" % (expr,))

    def _compile_memread(self, expr, depth):
        layout = self.layout
        depth_words = layout.mem_depths.get(expr.mem_name)
        if depth_words is None:
            raise EngineError("read of unknown memory %r"
                              % expr.mem_name)
        base = ("pl_" + expr.mem_name
                if expr.mem_name in layout.perlane
                else "m_" + expr.mem_name)
        addr = self.emit(expr.addr, depth + 1)
        addr_value = self._const_of(expr.addr, addr)
        if addr_value is not None:
            if addr_value >= depth_words:
                return self._fold(expr, 0)
            # Shared memories the FSM never writes cannot change
            # mid-batch, so a constant-address read of one is
            # dispatch-invariant and hoists out of the lane loop.
            self.uniform[id(expr)] = (
                expr.mem_name not in layout.perlane
                and expr.mem_name not in layout.hazard_mems)
            return "%s[%d]" % (base, addr_value)
        self.uniform[id(expr)] = (
            expr.mem_name not in layout.perlane
            and expr.mem_name not in layout.hazard_mems
            and self._is_uniform(expr.addr))
        if (1 << expr.addr.width) <= depth_words:
            return "%s[%s]" % (base, addr)
        if not _is_atom(addr):
            addr = self.temp(addr)
            self.memo[id(expr.addr)] = addr
        return "(%s[%s] if %s < %d else 0)" % (base, addr, addr,
                                               depth_words)

    def _compile_binop(self, expr, depth):
        lhs = self.emit(expr.lhs, depth + 1)
        rhs = self.emit(expr.rhs, depth + 1)
        lv = self._const_of(expr.lhs, lhs)
        rv = self._const_of(expr.rhs, rhs)
        if lv is not None and rv is not None:
            return self._fold(expr,
                              eval_binop(expr.op, lv, rv, expr.width))
        self.uniform[id(expr)] = (self._is_uniform(expr.lhs)
                                  and self._is_uniform(expr.rhs))
        op = expr.op
        mask = _mask(expr.width)
        if op in ("+", "-", "*", "<<"):
            return "(%s %s %s) & %d" % (lhs, op, rhs, mask)
        if op in ("&", "|", "^"):
            return "%s %s %s" % (lhs, op, rhs)
        if op == ">>":
            return "%s >> %s" % (lhs, rhs)
        if op in ("/", "%"):
            if not _is_atom(rhs):
                rhs = self.temp(rhs)
                self.memo[id(expr.rhs)] = rhs
            pyop = "//" if op == "/" else "%"
            return ("(((%s %s %s) & %d) if %s else 0)"
                    % (lhs, pyop, rhs, mask, rhs))
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return "(1 if %s %s %s else 0)" % (lhs, op, rhs)
        raise EngineError("cannot compile operator %r" % op)

    def _compile_unop_text(self, expr, operand):
        op = expr.op
        if op == "~":
            return "(~%s) & %d" % (operand, _mask(expr.width))
        if op == "|r":
            return "(1 if %s != 0 else 0)" % operand
        if op == "&r":
            return ("(1 if %s == %d else 0)"
                    % (operand, _mask(expr.operand.width)))
        if op == "^r":
            return "bin(%s).count('1') & 1" % operand
        if op == "!":
            return "(1 if %s == 0 else 0)" % operand
        raise EngineError("cannot compile unary %r" % op)


# -- superblocks -------------------------------------------------------------

class _Block:
    """One compiled superblock: a leader state plus the chain behind
    it.  A block containing *any* hazard state is a hazard block — it
    only runs under the gate (single lowest lane, or a provably
    gate-ordered lane group), so pure member states simply ride along
    in the same sequential order.

    In *trace* mode the chain also runs through ``Branch`` states: the
    likelier arm (deepest continuation) stays in the block, the other
    becomes a per-lane **side exit** — the lane banks its registers
    and partial cycle count, records its next state, and leaves the
    lane loop.  One dispatch then executes a whole request's hot path.
    """

    __slots__ = ("leader", "states", "size", "hazard", "next_const",
                 "in_reach", "fn", "state_indices", "has_exits",
                 "final_target")

    def __init__(self, leader, states, hazard):
        self.leader = leader
        self.states = states
        self.size = len(states)
        self.hazard = hazard
        self.next_const = None      # int when the block ends in Goto
        self.in_reach = False
        self.fn = None
        self.state_indices = [s.index for s in states]
        self.has_exits = False      # any mid-block Branch side exit
        self.final_target = None    # loop-end target when has_exits


def _trace_score(fsm, state, limit, seen):
    """Greedy depth of the best trace from *state* (bounded)."""
    score = 0
    while (state is not fsm.idle and id(state) not in seen
           and score < limit):
        seen = seen | {id(state)}
        score += 1
        transition = state.transition
        if isinstance(transition, Goto):
            state = transition.target
            continue
        true_score = _trace_score(fsm, transition.if_true,
                                  limit - score, seen)
        false_score = _trace_score(fsm, transition.if_false,
                                   limit - score, seen)
        return score + max(true_score, false_score)
    return score


def _chain(fsm, leader, trace):
    """The superblock members starting at *leader*."""
    members = [leader]
    member_ids = {id(leader)}
    cur = leader
    while len(members) < MAX_BLOCK_STATES:
        transition = cur.transition
        if isinstance(transition, Goto):
            target = transition.target
        elif trace:
            limit = min(MAX_BLOCK_STATES - len(members), 8)
            true_score = _trace_score(fsm, transition.if_true, limit,
                                      member_ids)
            false_score = _trace_score(fsm, transition.if_false,
                                       limit, member_ids)
            if true_score == 0 and false_score == 0:
                break
            target = (transition.if_true
                      if true_score >= false_score
                      else transition.if_false)
        else:
            break
        if target is fsm.idle or id(target) in member_ids:
            break
        members.append(target)
        member_ids.add(id(target))
        cur = target
    return members


# -- one compiled layout -----------------------------------------------------

class _Layout:
    """One batched compilation of the FSM for a fixed classification:
    which memories are per-lane (fully loaded by every lane) and which
    latched scalars are uniform across lanes.  Layouts are cached per
    :class:`BatchedKernel`; in practice each call site settles on one.
    """

    def __init__(self, scalar, perlane, uniform_set, profiled=False):
        design = scalar.design
        fsm = design.fsm
        self.profiled = profiled
        self.perlane = perlane
        self.uniform_set = uniform_set
        self.uniform_names = sorted(uniform_set)
        self.mem_depths = dict(scalar._mem_depths)
        self.const_regs = {
            name: init for name, init in zip(scalar._reg_names,
                                             scalar._reg_inits)
            if name in scalar._never_written}
        self.soa_regs = [name for name in scalar._reg_names
                         if name not in self.const_regs
                         and name not in uniform_set]
        written_mems = set()
        touch = {}
        data_widths = {}
        for state in fsm.states:
            if state is fsm.idle:
                continue
            read, written = _mems_touched(state)
            touch[id(state)] = read | written
            written_mems |= written
            for mem_name, _, data, _ in state.writes:
                prior = data_widths.get(mem_name, 0)
                data_widths[mem_name] = max(prior, data.width)
        # Per-lane rows that can live in a ``bytearray``: width-8
        # memories whose every write commits a value the codegen
        # already masks to <= 8 bits (bytearray stores C-validate the
        # 0..255 range, which is exactly the width-8 mask).
        self.byte_ok = frozenset(
            name for name in perlane
            if scalar._mem_widths.get(name) == 8
            and data_widths.get(name, 0) <= 8)
        self.hazard_mems = written_mems - perlane
        hazard_states = {
            state for state in fsm.states
            if state is not fsm.idle
            and touch[id(state)] & self.hazard_mems}
        # Which states can still reach a hazard state (fixpoint).
        reach = set(hazard_states)
        changed = True
        while changed:
            changed = False
            for state in fsm.states:
                if state is fsm.idle or state in reach:
                    continue
                if any(s in reach for s in fsm.successors(state)):
                    reach.add(state)
                    changed = True
        entry = fsm.idle.transition.if_true
        self.entry = entry.index
        self.blocks = {}
        self.max_path = 0
        if entry is not fsm.idle:
            self.max_path = self._longest_path(fsm, entry)
            # Trace fusion changes which states a lane executes per
            # dispatch, so it is only used when per-state profiling
            # counts are off, and only for acyclic FSMs (keeping the
            # pre-dispatch timeout check exact for cyclic ones).
            trace = self.max_path is not None and not profiled
            self._build_blocks(fsm, entry, hazard_states, reach,
                               trace)
        self._compile(scalar)

    @staticmethod
    def _longest_path(fsm, entry):
        """Most states any entry→idle path executes, or ``None`` when
        the FSM has a cycle (then no static latency bound exists)."""
        seen = {id(entry): entry}
        stack = [entry]
        while stack:
            state = stack.pop()
            for succ in fsm.successors(state):
                if succ is not fsm.idle and id(succ) not in seen:
                    seen[id(succ)] = succ
                    stack.append(succ)
        indeg = {key: 0 for key in seen}
        for state in seen.values():
            for succ in fsm.successors(state):
                if succ is not fsm.idle:
                    indeg[id(succ)] += 1
        ready = [s for s in seen.values() if indeg[id(s)] == 0]
        dist = {key: 1 for key in seen}
        done = 0
        while ready:
            state = ready.pop()
            done += 1
            reach_dist = dist[id(state)] + 1
            for succ in fsm.successors(state):
                if succ is fsm.idle:
                    continue
                if reach_dist > dist[id(succ)]:
                    dist[id(succ)] = reach_dist
                indeg[id(succ)] -= 1
                if indeg[id(succ)] == 0:
                    ready.append(succ)
        if done != len(seen):
            return None                  # cyclic: no static bound
        return max(dist.values())

    def _build_blocks(self, fsm, entry, hazard_states, reach, trace):
        worklist = [entry]
        while worklist:
            leader = worklist.pop()
            if leader.index in self.blocks:
                continue
            members = _chain(fsm, leader, trace)
            block = _Block(leader, members,
                           any(m in hazard_states for m in members))
            block.in_reach = leader in reach
            self.blocks[leader.index] = block
            for i, state in enumerate(members[:-1]):
                transition = state.transition
                if isinstance(transition, Branch):
                    block.has_exits = True
                    cont = members[i + 1]
                    other = (transition.if_false
                             if transition.if_true is cont
                             else transition.if_true)
                    if other is not fsm.idle:
                        worklist.append(other)
            tail = members[-1].transition
            if isinstance(tail, Goto):
                target = tail.target
                if block.has_exits:
                    block.final_target = target.index
                else:
                    block.next_const = target.index
                if target is not fsm.idle:
                    worklist.append(target)
            else:
                for target in (tail.if_true, tail.if_false):
                    if target is not fsm.idle:
                        worklist.append(target)

    # -- codegen -------------------------------------------------------

    def _compile(self, scalar):
        out = []
        for block in sorted(self.blocks.values(),
                            key=lambda b: b.leader.index):
            out.extend(self._emit_block(scalar, block))
            out.append("")
        self.source = "\n".join(out)
        namespace = {"EngineError": EngineError}
        for name in scalar._mem_names:
            if name in self.perlane:
                namespace["p_" + name] = []      # per-lane rows
            else:
                namespace["m_" + name] = scalar._mems[name]
        for name in self.soa_regs:
            namespace["r_" + name] = []
        exec(compile(self.source,
                     "<engine-batch:%s>" % scalar.design.name, "exec"),
             namespace)
        self.namespace = namespace
        self.reg_lists = {name: namespace["r_" + name]
                          for name in self.soa_regs}
        self.rows = {name: namespace["p_" + name]
                     for name in self.perlane
                     if name in scalar._mem_depths}
        for block in self.blocks.values():
            block.fn = namespace["_b%d" % block.leader.index]

    def _emit_block(self, scalar, block):
        soa = set(self.soa_regs)
        reads = set()
        writes = set()
        mems_used = set()
        for state in block.states:
            reads |= _vars_read(state) & soa
            writes |= set(state.updates) & soa
            touched_r, touched_w = _mems_touched(state)
            mems_used |= touched_r | touched_w
        loads = sorted(reads)
        stores = sorted(writes)
        preamble = []
        hoist_memo = {}
        counter = itertools.count()
        hoist_counter = itertools.count()
        body = []
        final_next = None
        if block.final_target is not None:
            final_next = "%d" % block.final_target
        assigned = set()              # SoA regs committed so far
        last = len(block.states) - 1
        for i, state in enumerate(block.states):
            emitter = _BatchEmitter(self, preamble, hoist_memo,
                                    counter, hoist_counter)
            emitter.count_refs(_state_roots(state))
            # Phase 1: every right-hand side into temps/inline text.
            commits = []
            for name in sorted(state.updates):
                commits.append(
                    (name, emitter.root(state.updates[name])))
            mem_writes = []
            for mem_name, addr, data, enable in state.writes:
                mem_writes.append(
                    (mem_name, emitter.root(addr), emitter.root(data),
                     emitter.root(enable)))
            cond = None
            transition = state.transition
            if isinstance(transition, Branch):
                cond = emitter.root(transition.cond)
                if i == last:
                    final_next = "(%d if %s else %d)" % (
                        transition.if_true.index, cond,
                        transition.if_false.index)
            # Phase 2: commit registers, then memory writes.
            for name, value in commits:
                emitter.body.append("v_%s = %s" % (name, value))
            for mem_name, addr, data, enable in mem_writes:
                emitter.body.extend(self._emit_write(
                    emitter, mem_name, addr, data, enable))
            assigned |= set(state.updates) & writes
            if isinstance(transition, Branch) and i < last:
                # Trace side exit: the lane leaves mid-block, banking
                # the registers committed so far and the cycle count
                # of the states it actually executed.
                if transition.if_true is block.states[i + 1]:
                    exit_target = transition.if_false
                    emitter.body.append("if not %s:" % cond)
                else:
                    exit_target = transition.if_true
                    emitter.body.append("if %s:" % cond)
                for name in sorted(assigned):
                    emitter.body.append(
                        "    r_%s[_ln] = v_%s" % (name, name))
                emitter.body.append("    _cyc[_ln] += %d" % (i + 1))
                emitter.body.append(
                    "    _next[_ln] = %d" % exit_target.index)
                emitter.body.append("    continue")
            body.extend(emitter.body)
        # -- assemble the closure -------------------------------------
        binds = []
        for name in sorted(set(loads) | set(stores)):
            binds.append("r_%s=r_%s" % (name, name))
        for name in sorted(mems_used):
            if name in self.perlane:
                binds.append("p_%s=p_%s" % (name, name))
            else:
                binds.append("m_%s=m_%s" % (name, name))
        lines = ["def _b%d(_lanes, _next, _cyc, _u%s):"
                 % (block.leader.index,
                    "".join(", " + b for b in binds))]
        if self.uniform_names:
            targets = ", ".join("u_" + name
                                for name in self.uniform_names)
            if len(self.uniform_names) == 1:
                targets += ","
            lines.append("    %s = _u" % targets)
        for line in preamble:
            lines.append("    " + line)
        lines.append("    for _ln in _lanes:")
        for name in sorted(mems_used & self.perlane):
            lines.append("        pl_%s = p_%s[_ln]" % (name, name))
        for name in loads:
            lines.append("        v_%s = r_%s[_ln]" % (name, name))
        for line in body:
            lines.append("        " + line)
        for name in stores:
            lines.append("        r_%s[_ln] = v_%s" % (name, name))
        lines.append("        _cyc[_ln] += %d" % block.size)
        if final_next is not None:
            lines.append("        _next[_ln] = %s" % final_next)
        return lines

    def _emit_write(self, emitter, mem_name, addr, data, enable):
        depth = self.mem_depths[mem_name]
        base = ("pl_" + mem_name if mem_name in self.perlane
                else "m_" + mem_name)
        en_const = addr_const = None
        if enable.lstrip("-").isdigit():
            en_const = int(enable)
        if addr.lstrip("-").isdigit():
            addr_const = int(addr)
        if en_const == 0:
            return []
        if addr_const is not None and addr_const >= depth:
            return []
        store = "%s[%s] = %s" % (base, addr, data)
        if en_const is not None and addr_const is not None:
            return [store]
        if en_const is not None:
            return ["if %s < %d:" % (addr, depth), "    " + store]
        if addr_const is not None:
            return ["if %s:" % enable, "    " + store]
        return ["if %s and %s < %d:" % (enable, addr, depth),
                "    " + store]


# -- the batched kernel ------------------------------------------------------

class BatchedKernel:
    """A design compiled for lockstep SoA batches, with warm state.

    Wraps (and shares all warm state with) a scalar
    :class:`~repro.engine.compiler.CompiledKernel` — ``run()`` and the
    memory backdoors delegate to it, so a ``BatchedKernel`` is a
    drop-in scalar kernel that *additionally* offers
    :meth:`run_batch`.
    """

    def __init__(self, design, batch=8):
        from repro.engine.compiler import CompiledKernel
        if batch is None or int(batch) < 1:
            raise EngineError("batch size must be a positive integer")
        self.batch = int(batch)
        self._scalar = CompiledKernel(design)
        scalar = self._scalar
        fsm = design.fsm
        written = set()
        for state in fsm.states:
            if state is not fsm.idle:
                written |= set(state.updates)
        scalar._never_written = frozenset(scalar._reg_names) - written \
            - frozenset(scalar._latch_names)
        self._latch_only = frozenset(scalar._latch_names) - written
        result_names = ["__result%d" % index
                        for index in range(len(design.spec.results))]
        self.lockstep_capable = _lockstep_safe(
            fsm, frozenset(scalar._latch_names), result_names,
            scalar._never_written)
        self._result_names = result_names
        self._scalar_masks = {name: _mask(width) for name, width
                              in scalar._scalar_widths.items()}
        self._layouts = {}
        self.lockstep_batches = 0
        self.fallback_batches = 0

    # -- scalar surface (delegation) -----------------------------------

    @property
    def design(self):
        return self._scalar.design

    @property
    def spec(self):
        return self._scalar.spec

    @property
    def opt_level(self):
        return self._scalar.opt_level

    @property
    def name(self):
        return self._scalar.name

    @property
    def source(self):
        return self._scalar.source

    @property
    def state_counts(self):
        return self._scalar.state_counts

    @property
    def invocations(self):
        return self._scalar.invocations

    def run(self, max_cycles=100000, memories=None, **scalars):
        return self._scalar.run(max_cycles=max_cycles,
                                memories=memories, **scalars)

    def load_memory(self, name, contents):
        self._scalar.load_memory(name, contents)

    def peek_memory(self, name, addr):
        return self._scalar.peek_memory(name, addr)

    def poke_memory(self, name, addr, value):
        self._scalar.poke_memory(name, addr, value)

    def memory_image(self, name):
        return self._scalar.memory_image(name)

    def enable_profiling(self):
        self._scalar.enable_profiling()
        return self

    def disable_profiling(self):
        self._scalar.disable_profiling()

    def reset(self):
        self._scalar.reset()

    # -- batched execution ---------------------------------------------

    def _get_layout(self, perlane, uniform_set, profiled):
        key = (perlane, uniform_set, profiled)
        layout = self._layouts.get(key)
        if layout is None:
            layout = _Layout(self._scalar, perlane, uniform_set,
                             profiled)
            self._layouts[key] = layout
        return layout

    def _run_fallback(self, jobs, max_cycles):
        self.fallback_batches += 1
        out = []
        for scalars, memories in jobs:
            results, latency, _ = self._scalar.run(
                max_cycles=max_cycles, memories=memories, **scalars)
            out.append((results, latency))
        return out

    def run_batch(self, jobs, max_cycles=100000):
        """Run *jobs* — ``(scalars, memories)`` pairs, one per lane —
        and return ``[(results, latency_cycles), ...]`` in lane order.

        Observably identical to calling :meth:`run` per job in order
        (warm state included); lockstep-accelerated when the batch
        qualifies, sequential otherwise.
        """
        jobs = [(scalars, memories or {})
                for scalars, memories in jobs]
        if not jobs:
            return []
        scalar = self._scalar
        if not self.lockstep_capable:
            return self._run_fallback(jobs, max_cycles)
        loaded_keys = jobs[0][1].keys()
        mem_depths = scalar._mem_depths
        for _, memories in jobs:
            if memories.keys() != loaded_keys:
                return self._run_fallback(jobs, max_cycles)
            for name, image in memories.items():
                depth = mem_depths.get(name)
                if depth is None or len(image) != depth:
                    return self._run_fallback(jobs, max_cycles)
        loaded = frozenset(loaded_keys)
        # Fold the per-lane scalar latches (inputs are sticky: a lane
        # that omits a scalar sees the previous lane's value, exactly
        # like successive scalar runs).
        inputs = dict(scalar._inputs)
        masks = self._scalar_masks
        lane_latch = {name: [] for name in scalar._latch_names}
        for scalars, _ in jobs:
            for name, value in scalars.items():
                mask = masks.get(name)
                if mask is None:
                    raise EngineError("kernel %r has no scalar %r"
                                      % (self.name, name))
                inputs[name] = value & mask
            for name in scalar._latch_names:
                lane_latch[name].append(inputs[name])
        uniform_set = frozenset(
            name for name in self._latch_only
            if len(set(lane_latch[name])) == 1)
        layout = self._get_layout(loaded, uniform_set,
                                  scalar.state_counts is not None)
        n = len(jobs)
        # -- SoA registers --------------------------------------------
        warm = dict(zip(scalar._reg_names, scalar._regs))
        for name in layout.soa_regs:
            values = lane_latch.get(name)
            if values is None:
                values = [warm[name]] * n
            layout.reg_lists[name][:] = values
        # -- per-lane memory rows (full-image fast load) --------------
        for name in layout.rows:
            width_mask = _mask(scalar._mem_widths[name])
            rows = []
            if name in layout.byte_ok:
                # bytearray() copies AND range-checks 0..255 in one C
                # pass — exactly the width-8 mask — so in-range images
                # skip the Python-level masking scan entirely.
                for _, memories in jobs:
                    image = memories[name]
                    try:
                        rows.append(bytearray(image))
                    except ValueError:
                        rows.append([value & width_mask
                                     for value in image])
            else:
                for _, memories in jobs:
                    row = list(memories[name])
                    if row and (max(row) > width_mask
                                or min(row) < 0):
                        row = [value & width_mask for value in row]
                    rows.append(row)
            layout.rows[name][:] = rows
        uniform_values = tuple(lane_latch[name][0]
                               for name in layout.uniform_names)
        self._drive(layout, n, uniform_values, max_cycles)
        # -- harvest ---------------------------------------------------
        result_cols = []
        for name in self._result_names:
            if name in layout.reg_lists:
                result_cols.append(layout.reg_lists[name])
            elif name in layout.const_regs:
                result_cols.append([layout.const_regs[name]] * n)
            else:
                result_cols.append(lane_latch[name])
        latencies = self._latencies
        if len(result_cols) == 1:
            col = result_cols[0]
            out = [((col[lane],), latencies[lane])
                   for lane in range(n)]
        else:
            out = [(tuple(col[lane] for col in result_cols),
                    latencies[lane]) for lane in range(n)]
        # -- commit warm state (last lane wins, like sequential) ------
        last = n - 1
        final = []
        for name in scalar._reg_names:
            if name in layout.reg_lists:
                final.append(layout.reg_lists[name][last])
            elif name in layout.const_regs:
                final.append(warm[name])
            else:                        # uniform latched scalar
                final.append(lane_latch[name][last])
        scalar._regs = tuple(final)
        scalar._inputs = inputs
        for name in layout.rows:
            scalar._mems[name][:] = layout.rows[name][last]
        scalar.invocations += n
        self.lockstep_batches += 1
        return out

    def _drive(self, layout, n, uniform_values, max_cycles):
        """The lockstep dispatch loop with hazard gating.

        A hazard block normally runs for its *whole* sorted lane group
        in one dispatch: when every unclear lane below the group's top
        lane is in the group, the block's ascending lane-major loop
        *is* the sequential interleaving, so one call satisfies the
        gate for every member at once.  When lanes are staggered
        (stragglers still in earlier pure blocks), pure blocks run
        first so the group can re-form; only if nothing else can move
        does the lowest unclear lane go through alone.
        """
        cyc = [1] * n
        nxt = [0] * n
        self._latencies = latencies = [0] * n
        if layout.entry == 0 or not layout.blocks:
            latencies[:] = [1] * n
            return
        counts = self._scalar.state_counts
        blocks = layout.blocks
        frontier = {layout.entry: list(range(n))}
        lane_pos = [layout.entry] * n    # frontier leader per live lane
        clear = [False] * n
        min_unclear = 0
        # An acyclic FSM cannot run longer than its longest path, so
        # when that is below the budget no lane can ever time out and
        # the per-lane checks are elided entirely.
        checked = layout.max_path is None \
            or max_cycles <= layout.max_path

        def run(block, lanes):
            if checked:
                limit = max_cycles - block.size
                for lane in lanes:
                    if cyc[lane] > limit:
                        raise EngineError(
                            "design %r did not finish in %d cycles"
                            % (self.name, max_cycles))
            block.fn(lanes, nxt, cyc, uniform_values)
            if counts is not None:
                for index in block.state_indices:
                    counts[index] += len(lanes)
            target = block.next_const
            if target is not None:
                if target == 0:
                    for lane in lanes:
                        latencies[lane] = cyc[lane]
                        clear[lane] = True
                        lane_pos[lane] = 0
                else:
                    in_reach = blocks[target].in_reach
                    for lane in lanes:
                        clear[lane] = not in_reach
                        lane_pos[lane] = target
                    frontier.setdefault(target, []).extend(lanes)
            else:
                for lane in lanes:
                    target = nxt[lane]
                    if target == 0:
                        latencies[lane] = cyc[lane]
                        clear[lane] = True
                        lane_pos[lane] = 0
                    else:
                        clear[lane] = not blocks[target].in_reach
                        lane_pos[lane] = target
                        frontier.setdefault(target, []).append(lane)

        while frontier:
            ran = False
            # Hazard group dispatch while the gate provably holds.
            while min_unclear < n:
                if clear[min_unclear]:
                    min_unclear += 1
                    continue
                leader = lane_pos[min_unclear]
                block = blocks[leader]
                if not block.hazard:
                    break
                parked = frontier[leader]
                parked.sort()
                grouped = True
                i = 0
                for k in range(min_unclear + 1, parked[-1]):
                    if clear[k]:
                        continue
                    while parked[i] < k:
                        i += 1
                    if parked[i] != k:
                        grouped = False
                        break
                if not grouped:
                    break
                del frontier[leader]
                run(block, parked)
                ran = True
            # Pure blocks run in full lockstep over all parked lanes.
            for leader in sorted(frontier):
                lanes = frontier.get(leader)
                if not lanes:
                    continue
                block = blocks[leader]
                if block.hazard:
                    continue
                del frontier[leader]
                run(block, lanes)
                ran = True
            if ran:
                continue
            # Stalemate: stragglers are parked at *different* hazard
            # blocks, so no group forms and nothing is pure.  The
            # lowest unclear lane always satisfies the gate alone.
            leader = lane_pos[min_unclear]
            lanes = frontier.get(leader)
            if lanes is None or min_unclear not in lanes:
                raise EngineError(            # pragma: no cover
                    "internal: batched scheduler stalled for %r"
                    % self.name)
            lanes.remove(min_unclear)
            if not lanes:
                del frontier[leader]
            run(blocks[leader], [min_unclear])


def compile_design_batched(design, batch=8):
    """Compile a :class:`~repro.kiwi.compiler.CompiledDesign` into a
    :class:`BatchedKernel` (the batched twin of ``compile_design``)."""
    return BatchedKernel(design, batch=batch)
