"""repro.engine — compiled execution spine + unified discrete-event
runtime.

Two halves, one goal (run the reproduction as fast as the hardware
allows):

* :mod:`repro.engine.compiler` compiles a Kiwi
  :class:`~repro.kiwi.compiler.CompiledDesign` into exec-generated
  Python closures — one step function per FSM state, expression DAGs
  flattened to straight-line locals, memories as preallocated lists —
  replacing per-cycle netlist interpretation on the hot path.
  :mod:`repro.engine.batch` raises that to lockstep structure-of-arrays
  execution: N requests advance through fused superblocks per dispatch
  (``compile_kernel(fn, batch=N)``), with per-lane early exits and
  loop-invariant hoisting.  :mod:`repro.engine.pipelined` overlaps
  requests *within* one kernel the way the -O3 hardware schedule does
  — a new request issues every II cycles, hazard stalls only on real
  memory dependences, strict in-order retire.
  :mod:`repro.engine.verify` proves the compiled kernel equivalent to
  the interpreted :class:`~repro.rtl.simulator.Simulator` on random
  inputs (results, final memories, and same-level cycle counts), the
  batched engine equivalent to both on warm job streams, and the
  pipelined executor equivalent to the sequential -O0 engine with N
  requests in flight.
* :mod:`repro.engine.sched` is the one discrete-event scheduler every
  layer now shares (the netsim event loop subclasses it), with
  processes and bounded back-pressure queues;
  :mod:`repro.engine.openloop` uses them to drive deployments with
  open-loop arrivals so latency distributions are queueing-derived.
"""

from repro.engine.batch import BatchedKernel, compile_design_batched
from repro.engine.compiler import (
    CompiledKernel, compile_design, compile_kernel,
)
from repro.engine.openloop import (
    ArrivalSpec, OpenLoopReport, run_open_loop,
)
from repro.engine.pipelined import PipelinedKernel, compile_pipelined
from repro.engine.sched import Delay, Process, Queue, Scheduler
from repro.engine.verify import (
    BatchReport, EngineReport, PipelineReport, assert_batch_equivalent,
    assert_engine_equivalent, assert_pipeline_equivalent,
    batch_differential_check, engine_differential_check,
    pipeline_differential_check,
)

__all__ = [
    "ArrivalSpec", "BatchReport", "BatchedKernel", "CompiledKernel",
    "Delay", "EngineReport", "OpenLoopReport", "PipelineReport",
    "PipelinedKernel", "Process", "Queue", "Scheduler",
    "assert_batch_equivalent", "assert_engine_equivalent",
    "assert_pipeline_equivalent", "batch_differential_check",
    "compile_design", "compile_design_batched", "compile_kernel",
    "compile_pipelined", "engine_differential_check",
    "pipeline_differential_check", "run_open_loop",
]
