"""Differential equivalence: compiled engine vs interpreted simulator.

The engine's contract is stronger than the optimizer's: at the *same*
opt level it must reproduce the interpreter's results, final memory
contents, **and cycle count** exactly — same FSM, same semantics, so
any divergence is an engine miscompile.  Across levels (engine at
``-O2`` vs interpreter at ``-O0``) the machines differ by design, so
cycle counts are exempt and results + memories must still match —
this composes the engine proof with the optimizer's own differential
proof, closing the chain the ISSUE's acceptance criterion names.

Inputs come from the same seeded generators the optimizer's verifier
uses (uniform noise + protocol dictionary bytes), plus any crafted
``input_factory`` a service provides for its deep request paths.
"""

import random

from repro.errors import CompileError, EngineError
from repro.kiwi.opt.verify import random_inputs


class EngineMismatch:
    """One diverging run: the inputs and both observations."""

    def __init__(self, scalars, interpreted, engine, what):
        self.scalars = scalars
        self.interpreted = interpreted
        self.engine = engine
        self.what = what

    def __repr__(self):
        return ("EngineMismatch(%s: scalars=%r, interpreted=%r, "
                "engine=%r)" % (self.what, self.scalars,
                                self.interpreted, self.engine))


class EngineReport:
    """Outcome of one engine-differential session."""

    def __init__(self, name, opt_level, base_level, compare_latency):
        self.name = name
        self.opt_level = opt_level
        self.base_level = base_level
        self.compare_latency = compare_latency
        self.runs = 0
        self.skipped = 0
        self.mismatches = []
        self.interpreter_cycles = 0
        self.engine_cycles = 0

    @property
    def ok(self):
        return not self.mismatches and self.runs > 0

    def __repr__(self):
        return ("EngineReport(%s: engine -O%d vs interpreter -O%d, "
                "%d runs, %d mismatches)"
                % (self.name, self.opt_level, self.base_level,
                   self.runs, len(self.mismatches)))


def _interpret(design, scalars, memories, max_cycles):
    results, cycles, sim = design.run(
        max_cycles=max_cycles,
        memories={name: list(image) for name, image in memories.items()},
        **scalars)
    images = {
        name: [sim.peek_memory(name, addr) for addr in range(mem.depth)]
        for name, mem in design.spec.memory_params}
    return results, images, cycles


def _engine_run(kernel, scalars, memories, max_cycles):
    kernel.reset()
    results, cycles, _ = kernel.run(
        max_cycles=max_cycles,
        memories={name: list(image) for name, image in memories.items()},
        **scalars)
    images = {name: kernel.memory_image(name)
              for name, _ in kernel.spec.memory_params}
    return results, images, cycles


def engine_differential_check(fn, opt_level=0, base_level=None, runs=12,
                              seed="engine", max_cycles=200000,
                              input_factory=None):
    """Co-run *fn* on the engine at ``-Oopt_level`` and the interpreter
    at ``-Obase_level`` (default: the same level) over seeded random
    inputs.  Same-level runs also require identical cycle counts."""
    from repro.engine.compiler import compile_kernel
    from repro.kiwi.compiler import compile_function
    if base_level is None:
        base_level = opt_level
    compare_latency = base_level == opt_level
    reference = compile_function(fn, opt_level=base_level)
    kernel = compile_kernel(fn, opt_level=opt_level)
    report = EngineReport(reference.name, opt_level, base_level,
                          compare_latency)
    rng = random.Random("%s/%s" % (seed, reference.name))
    make_inputs = input_factory or \
        (lambda r: random_inputs(reference.spec, r))
    for _ in range(runs):
        scalars, memories = make_inputs(rng)
        try:
            interpreted = _interpret(reference, scalars, memories,
                                     max_cycles)
        except CompileError:
            report.skipped += 1
            continue
        try:
            engine = _engine_run(kernel, scalars, memories, max_cycles)
        except EngineError:
            report.mismatches.append(EngineMismatch(
                scalars, interpreted[:2], "timeout", "timeout"))
            continue
        report.runs += 1
        report.interpreter_cycles += interpreted[2]
        report.engine_cycles += engine[2]
        if interpreted[0] != engine[0]:
            report.mismatches.append(EngineMismatch(
                scalars, interpreted[0], engine[0], "results"))
        elif interpreted[1] != engine[1]:
            report.mismatches.append(EngineMismatch(
                scalars, "(memories)", "(memories)", "memories"))
        elif compare_latency and interpreted[2] != engine[2]:
            report.mismatches.append(EngineMismatch(
                scalars, interpreted[2], engine[2], "latency"))
    return report


class BatchReport:
    """Outcome of one batch-differential session (three legs: lockstep
    batched engine, scalar engine, interpreted netlist)."""

    def __init__(self, name, opt_level, batch):
        self.name = name
        self.opt_level = opt_level
        self.batch = batch
        self.batches = 0
        self.runs = 0
        self.skipped = 0
        self.mismatches = []
        #: Batches the SoA engine actually ran in lockstep (vs its
        #: scalar fallback) — callers assert this is > 0 so the check
        #: cannot silently pass by never engaging the batched code.
        self.lockstep_batches = 0
        self.fallback_batches = 0

    @property
    def ok(self):
        return not self.mismatches and self.runs > 0

    def __repr__(self):
        return ("BatchReport(%s: batch=%d at -O%d, %d batches / %d "
                "runs, %d lockstep, %d mismatches)"
                % (self.name, self.batch, self.opt_level, self.batches,
                   self.runs, self.lockstep_batches,
                   len(self.mismatches)))


def batch_differential_check(fn, opt_level=0, batch=8, batches=8,
                             seed="engine-batch", max_cycles=200000,
                             input_factory=None, deep_inputs=None):
    """Three-legged warm-stream differential proof for the lockstep
    SoA engine (:mod:`repro.engine.batch`).

    The same job stream runs through the batched engine (*batch* jobs
    per ``run_batch`` call, ragged final batch included), the scalar
    engine, and the warm interpreted netlist.  None of the legs reset
    between jobs, so the comparison covers warm-state parity across
    successive batches as well as per-lane results, per-lane cycle
    counts, and the final memory images after every batch.

    Even-numbered batches load every memory with a fresh full image
    (the lockstep-capable shape); odd-numbered batches load only a
    random subset of memories per job, leaving the rest warm — that
    shape exercises the engine's scalar-fallback path and warm-memory
    carry-over.  *deep_inputs* (a list of ``(scalars, memories)``
    jobs) is prepended to the random stream for crafted deep request
    paths; *input_factory(rng)* overrides the random generator.
    """
    from repro.engine.compiler import compile_kernel
    from repro.kiwi.compiler import compile_function
    reference = compile_function(fn, opt_level=opt_level)
    scalar = compile_kernel(fn, opt_level=opt_level)
    batched = compile_kernel(fn, opt_level=opt_level, batch=batch)
    report = BatchReport(reference.name, opt_level, batch)
    rng = random.Random("%s/%s" % (seed, reference.name))
    make_inputs = input_factory or \
        (lambda r: random_inputs(reference.spec, r))
    mem_names = [name for name, _ in reference.spec.memory_params]

    jobs = list(deep_inputs or [])
    while len(jobs) < batches * batch:
        jobs.append(make_inputs(rng))
    # A ragged final batch: drop a few jobs so the last run_batch call
    # is narrower than the configured width.
    if batch > 1 and len(jobs) > batch + 1:
        jobs = jobs[:len(jobs) - rng.randrange(1, batch)]

    sim = reference.simulator()

    def reset_legs():
        scalar.reset()
        batched.reset()
        return reference.simulator()

    for start in range(0, len(jobs), batch):
        chunk = jobs[start:start + batch]
        narrow = start // batch % 2 == 1
        prepared = []
        for scalars, memories in chunk:
            if narrow and len(mem_names) > 1:
                keep = [name for name in mem_names
                        if name in memories and rng.random() < 0.6]
                memories = {name: memories[name] for name in keep}
            prepared.append((scalars, memories))
        try:
            interp = []
            for scalars, memories in prepared:
                results, cycles, _ = reference.run_on(
                    sim, max_cycles=max_cycles,
                    memories={name: list(image)
                              for name, image in memories.items()},
                    **scalars)
                interp.append((results, cycles))
        except CompileError:
            report.skipped += len(chunk)
            sim = reset_legs()
            continue
        except EngineError:
            # Interpreter timeout: skip the batch on every leg so the
            # warm streams stay aligned.
            report.skipped += len(chunk)
            sim = reset_legs()
            continue
        try:
            scalar_out = []
            for scalars, memories in prepared:
                results, cycles, _ = scalar.run(
                    max_cycles=max_cycles,
                    memories={name: list(image)
                              for name, image in memories.items()},
                    **scalars)
                scalar_out.append((results, cycles))
            batch_out = batched.run_batch(
                [(scalars, memories) for scalars, memories in prepared],
                max_cycles=max_cycles)
        except EngineError:
            report.mismatches.append(EngineMismatch(
                "batch@%d" % start, interp, "timeout", "timeout"))
            sim = reset_legs()
            continue
        report.batches += 1
        report.runs += len(chunk)
        if batch_out != interp:
            report.mismatches.append(EngineMismatch(
                "batch@%d" % start, interp, batch_out,
                "batched-vs-interpreter"))
        if batch_out != scalar_out:
            report.mismatches.append(EngineMismatch(
                "batch@%d" % start, scalar_out, batch_out,
                "batched-vs-scalar"))
        for name, mem in reference.spec.memory_params:
            batched_image = batched.memory_image(name)
            if batched_image != scalar.memory_image(name):
                report.mismatches.append(EngineMismatch(
                    "batch@%d" % start, "(memories)", name,
                    "warm-memories-vs-scalar"))
                break
            interp_image = [sim.peek_memory(name, addr)
                            for addr in range(mem.depth)]
            if batched_image != interp_image:
                report.mismatches.append(EngineMismatch(
                    "batch@%d" % start, "(memories)", name,
                    "warm-memories-vs-interpreter"))
                break
    report.lockstep_batches = batched.lockstep_batches
    report.fallback_batches = batched.fallback_batches
    return report


def assert_batch_equivalent(fn, opt_level=0, batch=8, **kwargs):
    """Raise :class:`~repro.errors.EngineError` unless the batched
    engine matches the scalar engine and the interpreter on a warm
    job stream; returns the report otherwise."""
    report = batch_differential_check(fn, opt_level=opt_level,
                                      batch=batch, **kwargs)
    if not report.ok:
        detail = report.mismatches[0] if report.mismatches else \
            "no comparable runs"
        raise EngineError(
            "batched-engine verification failed for %r at -O%d "
            "(batch=%d): %r"
            % (report.name, opt_level, batch, detail))
    return report


class PipelineReport:
    """Outcome of one pipelined-differential session: the -O3
    multi-request-in-flight executor against the sequential -O0
    engine on one warm request stream."""

    def __init__(self, name, opt_level, depth):
        self.name = name
        self.opt_level = opt_level
        self.depth = depth
        self.runs = 0
        self.skipped = 0
        self.mismatches = []
        #: The schedule's initiation interval (None: kernel refused
        #: pipelining and the stream ran serially).
        self.achieved_ii = None
        #: Most requests simultaneously in flight — callers assert
        #: this is > 1 for pipelined kernels, so the check cannot
        #: silently pass without ever overlapping requests.
        self.peak_in_flight = 0
        self.measured_interval = None

    @property
    def ok(self):
        return not self.mismatches and self.runs > 0

    def __repr__(self):
        return ("PipelineReport(%s: depth=%d at -O%d, ii=%r, peak=%d, "
                "%d runs, %d mismatches)"
                % (self.name, self.depth, self.opt_level,
                   self.achieved_ii, self.peak_in_flight, self.runs,
                   len(self.mismatches)))


def pipeline_differential_check(fn, opt_level=3, depth=4, requests=24,
                                seed="engine-pipeline",
                                max_cycles=400000, input_factory=None,
                                deep_inputs=None, level_budget=None):
    """Differential proof for the pipelined executor
    (:mod:`repro.engine.pipelined`).

    One warm request stream runs through the sequential ``-O0`` engine
    and the ``-Oopt_level`` :class:`~repro.engine.pipelined.
    PipelinedKernel` with up to *depth* requests in flight.  Warm
    memories are seeded identically once, then each request carries
    its own scalars and a full image of the kernel's stream buffer
    (the ``frame``), exactly the per-request shape the cycle models
    use.  Per-request results, per-request reply bytes (the mutated
    stream buffer), and the final image of every memory must match;
    latencies are exempt (overlap legitimately changes them).

    The stream is split into two ``run_stream`` calls at an offset
    that is deliberately *not* a multiple of *depth*, so the pipeline
    drains mid-batch and restarts warm — the ragged-shutdown shape.
    """
    from repro.engine.compiler import compile_kernel
    from repro.engine.pipelined import PipelinedKernel
    from repro.kiwi.compiler import DEFAULT_LEVEL_BUDGET, compile_function
    design = compile_function(
        fn, opt_level=opt_level,
        level_budget=(DEFAULT_LEVEL_BUDGET if level_budget is None
                      else level_budget))
    sequential = compile_kernel(fn, opt_level=0)
    pipelined = PipelinedKernel(design, depth=depth)
    report = PipelineReport(design.name, opt_level, depth)
    schedule = pipelined.schedule
    if schedule is not None and schedule.feasible:
        report.achieved_ii = schedule.initiation_interval
    rng = random.Random("%s/%s" % (seed, design.name))
    make_inputs = input_factory or \
        (lambda r: random_inputs(design.spec, r))
    streams = set(pipelined.stream_memories)
    mem_params = list(design.spec.memory_params)

    # Identical warm seed for both legs, then per-request jobs that
    # reload only the stream buffers.
    warm_scalars, warm_memories = make_inputs(rng)
    jobs = []
    for _ in range(max(1, int(requests)) - len(list(deep_inputs or []))):
        scalars, memories = make_inputs(rng)
        jobs.append((scalars, {name: image
                               for name, image in memories.items()
                               if name in streams}))
    for scalars, memories in (deep_inputs or []):
        jobs.append((scalars, {name: image
                               for name, image in memories.items()
                               if name in streams}))

    def seed_leg(kernel):
        kernel.reset()
        for name, image in warm_memories.items():
            kernel.load_memory(name, list(image))

    # Sequential leg first; a timeout truncates the stream for both
    # legs so the warm comparison stays aligned.
    seed_leg(sequential)
    expected = []
    for index, (scalars, memories) in enumerate(jobs):
        try:
            results, _, _ = sequential.run(
                max_cycles=max_cycles,
                memories={name: list(image)
                          for name, image in memories.items()},
                **scalars)
        except EngineError:
            report.skipped += len(jobs) - index
            jobs = jobs[:index]
            break
        expected.append((results,
                         {name: sequential.memory_image(name)
                          for name in streams}))
    final_expected = {name: sequential.memory_image(name)
                      for name, _ in mem_params}

    seed_leg(pipelined)
    split = max(1, len(jobs) - max(1, depth // 2 + 1))
    try:
        got = list(pipelined.run_stream(jobs[:split],
                                        max_cycles=max_cycles))
        drained = pipelined.peak_in_flight
        got += list(pipelined.run_stream(jobs[split:],
                                         max_cycles=max_cycles))
    except EngineError as exc:
        report.mismatches.append(EngineMismatch(
            "stream", "completed", str(exc), "timeout"))
        return report
    report.peak_in_flight = max(drained, pipelined.peak_in_flight)
    report.measured_interval = pipelined.measured_interval()

    report.runs = len(jobs)
    for index, ((results, images), (p_results, _, p_images)) in \
            enumerate(zip(expected, got)):
        if results != p_results:
            report.mismatches.append(EngineMismatch(
                "request %d" % index, results, p_results, "results"))
        elif images != p_images:
            report.mismatches.append(EngineMismatch(
                "request %d" % index, "(reply bytes)", "(reply bytes)",
                "reply-bytes"))
    for name, _ in mem_params:
        if pipelined.memory_image(name) != final_expected[name]:
            report.mismatches.append(EngineMismatch(
                "final", "(memories)", name, "final-memories"))
            break
    return report


def assert_pipeline_equivalent(fn, opt_level=3, depth=4,
                               require_overlap=None, **kwargs):
    """Raise :class:`~repro.errors.EngineError` unless the pipelined
    executor matches the sequential ``-O0`` engine on a warm request
    stream.  *require_overlap* (default: automatic — required exactly
    when the kernel's schedule is feasible) additionally insists the
    stream genuinely had more than one request in flight."""
    report = pipeline_differential_check(fn, opt_level=opt_level,
                                         depth=depth, **kwargs)
    if not report.ok:
        detail = report.mismatches[0] if report.mismatches else \
            "no comparable runs"
        raise EngineError(
            "pipelined-engine verification failed for %r at -O%d "
            "(depth=%d): %r"
            % (report.name, opt_level, depth, detail))
    if require_overlap is None:
        require_overlap = report.achieved_ii is not None
    if require_overlap and report.peak_in_flight < 2:
        raise EngineError(
            "pipelined-engine verification for %r never overlapped "
            "requests (peak in flight %d)"
            % (report.name, report.peak_in_flight))
    return report


def assert_engine_equivalent(fn, opt_level=0, **kwargs):
    """Raise :class:`~repro.errors.EngineError` unless the engine
    matches the interpreter; returns the report otherwise."""
    report = engine_differential_check(fn, opt_level=opt_level, **kwargs)
    if not report.ok:
        detail = report.mismatches[0] if report.mismatches else \
            "no comparable runs"
        raise EngineError(
            "engine verification failed for %r at -O%d: %r"
            % (report.name, opt_level, detail))
    return report
