"""Differential equivalence: compiled engine vs interpreted simulator.

The engine's contract is stronger than the optimizer's: at the *same*
opt level it must reproduce the interpreter's results, final memory
contents, **and cycle count** exactly — same FSM, same semantics, so
any divergence is an engine miscompile.  Across levels (engine at
``-O2`` vs interpreter at ``-O0``) the machines differ by design, so
cycle counts are exempt and results + memories must still match —
this composes the engine proof with the optimizer's own differential
proof, closing the chain the ISSUE's acceptance criterion names.

Inputs come from the same seeded generators the optimizer's verifier
uses (uniform noise + protocol dictionary bytes), plus any crafted
``input_factory`` a service provides for its deep request paths.
"""

import random

from repro.errors import CompileError, EngineError
from repro.kiwi.opt.verify import random_inputs


class EngineMismatch:
    """One diverging run: the inputs and both observations."""

    def __init__(self, scalars, interpreted, engine, what):
        self.scalars = scalars
        self.interpreted = interpreted
        self.engine = engine
        self.what = what

    def __repr__(self):
        return ("EngineMismatch(%s: scalars=%r, interpreted=%r, "
                "engine=%r)" % (self.what, self.scalars,
                                self.interpreted, self.engine))


class EngineReport:
    """Outcome of one engine-differential session."""

    def __init__(self, name, opt_level, base_level, compare_latency):
        self.name = name
        self.opt_level = opt_level
        self.base_level = base_level
        self.compare_latency = compare_latency
        self.runs = 0
        self.skipped = 0
        self.mismatches = []
        self.interpreter_cycles = 0
        self.engine_cycles = 0

    @property
    def ok(self):
        return not self.mismatches and self.runs > 0

    def __repr__(self):
        return ("EngineReport(%s: engine -O%d vs interpreter -O%d, "
                "%d runs, %d mismatches)"
                % (self.name, self.opt_level, self.base_level,
                   self.runs, len(self.mismatches)))


def _interpret(design, scalars, memories, max_cycles):
    results, cycles, sim = design.run(
        max_cycles=max_cycles,
        memories={name: list(image) for name, image in memories.items()},
        **scalars)
    images = {
        name: [sim.peek_memory(name, addr) for addr in range(mem.depth)]
        for name, mem in design.spec.memory_params}
    return results, images, cycles


def _engine_run(kernel, scalars, memories, max_cycles):
    kernel.reset()
    results, cycles, _ = kernel.run(
        max_cycles=max_cycles,
        memories={name: list(image) for name, image in memories.items()},
        **scalars)
    images = {name: kernel.memory_image(name)
              for name, _ in kernel.spec.memory_params}
    return results, images, cycles


def engine_differential_check(fn, opt_level=0, base_level=None, runs=12,
                              seed="engine", max_cycles=200000,
                              input_factory=None):
    """Co-run *fn* on the engine at ``-Oopt_level`` and the interpreter
    at ``-Obase_level`` (default: the same level) over seeded random
    inputs.  Same-level runs also require identical cycle counts."""
    from repro.engine.compiler import compile_kernel
    from repro.kiwi.compiler import compile_function
    if base_level is None:
        base_level = opt_level
    compare_latency = base_level == opt_level
    reference = compile_function(fn, opt_level=base_level)
    kernel = compile_kernel(fn, opt_level=opt_level)
    report = EngineReport(reference.name, opt_level, base_level,
                          compare_latency)
    rng = random.Random("%s/%s" % (seed, reference.name))
    make_inputs = input_factory or \
        (lambda r: random_inputs(reference.spec, r))
    for _ in range(runs):
        scalars, memories = make_inputs(rng)
        try:
            interpreted = _interpret(reference, scalars, memories,
                                     max_cycles)
        except CompileError:
            report.skipped += 1
            continue
        try:
            engine = _engine_run(kernel, scalars, memories, max_cycles)
        except EngineError:
            report.mismatches.append(EngineMismatch(
                scalars, interpreted[:2], "timeout", "timeout"))
            continue
        report.runs += 1
        report.interpreter_cycles += interpreted[2]
        report.engine_cycles += engine[2]
        if interpreted[0] != engine[0]:
            report.mismatches.append(EngineMismatch(
                scalars, interpreted[0], engine[0], "results"))
        elif interpreted[1] != engine[1]:
            report.mismatches.append(EngineMismatch(
                scalars, "(memories)", "(memories)", "memories"))
        elif compare_latency and interpreted[2] != engine[2]:
            report.mismatches.append(EngineMismatch(
                scalars, interpreted[2], engine[2], "latency"))
    return report


def assert_engine_equivalent(fn, opt_level=0, **kwargs):
    """Raise :class:`~repro.errors.EngineError` unless the engine
    matches the interpreter; returns the report otherwise."""
    report = engine_differential_check(fn, opt_level=opt_level, **kwargs)
    if not report.ok:
        detail = report.mismatches[0] if report.mismatches else \
            "no comparable runs"
        raise EngineError(
            "engine verification failed for %r at -O%d: %r"
            % (report.name, opt_level, detail))
    return report
