"""The unified discrete-event runtime.

One virtual-time scheduler now underlies every layer that used to keep
its own ad-hoc clock: the network simulator's :class:`EventLoop
<repro.netsim.sim.EventLoop>` is a subclass, and the open-loop load
layer (:mod:`repro.engine.openloop`) builds its ingest→core→egress
overlap on the process/queue primitives here.

Three primitives:

* :class:`Scheduler` — a nanosecond-resolution virtual-time heap.
  Events at the same timestamp run in scheduling order (a monotonic
  sequence number breaks ties), so runs are deterministic by
  construction.
* processes — plain generators driven by :meth:`Scheduler.spawn`.
  A process yields :class:`Delay` (or a bare number of nanoseconds) to
  sleep, ``queue.get()`` to receive, and ``queue.put(item)`` to send.
* :class:`Queue` — a bounded FIFO with *back-pressure*: ``put`` blocks
  the producing process while the queue is full; ``try_put`` is the
  tail-drop variant hardware ingress FIFOs use (it counts ``drops``).
"""

import heapq
import itertools
from collections import deque

from repro.errors import EngineError


class Scheduler:
    """Nanosecond-resolution virtual-time event loop.

    Subclasses may override :attr:`error` to raise their own exception
    family (the network simulator raises ``NetSimError``) without
    duplicating the loop.
    """

    #: Exception class raised for scheduling mistakes and livelocks.
    error = EngineError

    def __init__(self):
        self._queue = []
        self._ids = itertools.count()
        self.now_ns = 0
        self.events_run = 0

    def schedule(self, delay_ns, action):
        """Run *action()* after *delay_ns* nanoseconds."""
        if delay_ns < 0:
            raise self.error("cannot schedule into the past")
        heapq.heappush(self._queue,
                       (self.now_ns + int(delay_ns), next(self._ids),
                        action))

    def run(self, until_ns=None, max_events=1_000_000):
        """Process events until the queue drains (or a time/count cap).

        *max_events* caps this call alone; ``events_run`` keeps the
        lifetime total, so repeated ``run()`` calls on one loop never
        trip the cap on old events.
        """
        events_this_call = 0
        while self._queue:
            when, _, action = self._queue[0]
            if until_ns is not None and when > until_ns:
                break
            heapq.heappop(self._queue)
            self.now_ns = when
            action()
            self.events_run += 1
            events_this_call += 1
            if events_this_call > max_events:
                raise self.error("event cap exceeded (livelock?)")
        if until_ns is not None:
            self.now_ns = max(self.now_ns, until_ns)

    @property
    def pending(self):
        return len(self._queue)

    # -- processes --------------------------------------------------------

    def spawn(self, generator):
        """Start a process (a generator yielding Delay/Get/Put).

        The first step runs as a zero-delay event, so spawning inside a
        running simulation keeps time order.  Returns the
        :class:`Process`.
        """
        process = Process(self, generator)
        self.schedule(0, lambda: process._resume(None))
        return process


class Process:
    """A scheduler-driven generator.  Created via :meth:`Scheduler.spawn`."""

    __slots__ = ("scheduler", "generator", "finished")

    def __init__(self, scheduler, generator):
        self.scheduler = scheduler
        self.generator = generator
        self.finished = False

    def _resume(self, value):
        if self.finished:
            return
        try:
            request = self.generator.send(value)
        except StopIteration:
            self.finished = True
            return
        if isinstance(request, (int, float)):
            request = Delay(request)
        request._arm(self.scheduler, self)

    def __repr__(self):
        return "Process(%s%s)" % (
            getattr(self.generator, "__name__", "gen"),
            ", finished" if self.finished else "")


class Delay:
    """Yielded by a process to sleep for *ns* virtual nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns):
        self.ns = ns

    def _arm(self, scheduler, process):
        scheduler.schedule(self.ns, lambda: process._resume(None))


class _Get:
    __slots__ = ("queue",)

    def __init__(self, queue):
        self.queue = queue

    def _arm(self, scheduler, process):
        queue = self.queue
        queue._bind(scheduler)
        queue._getters.append(process)
        queue._service()


class _Put:
    __slots__ = ("queue", "item")

    def __init__(self, queue, item):
        self.queue = queue
        self.item = item

    def _arm(self, scheduler, process):
        queue = self.queue
        queue._bind(scheduler)
        queue._putters.append((process, self.item))
        queue._service()


class Queue:
    """A bounded FIFO between processes, with back-pressure.

    * ``yield queue.put(item)`` — append; blocks the producer while the
      queue is at *capacity* (back-pressure), resuming in FIFO order as
      consumers drain it.
    * ``yield queue.get()`` — pop; blocks the consumer while empty.
    * ``try_put(item)`` — the non-blocking tail-drop variant: returns
      ``False`` (and counts a drop) when full, like a hardware ingress
      FIFO rejecting a frame.

    ``max_depth`` tracks the high-water mark of *waiting* items; an
    item being serviced by a consumer has already left the queue,
    matching how FIFO occupancy reads in the pipeline model.
    """

    def __init__(self, capacity=None, scheduler=None):
        if capacity is not None and capacity < 1:
            raise EngineError("queue capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._scheduler = scheduler
        self._items = deque()
        self._getters = deque()
        self._putters = deque()
        self.max_depth = 0
        self.total_enqueued = 0
        self.drops = 0

    # -- introspection ------------------------------------------------------

    @property
    def depth(self):
        return len(self._items)

    @property
    def full(self):
        return self.capacity is not None and \
            len(self._items) >= self.capacity

    # -- process-facing requests -------------------------------------------

    def get(self):
        """Request object for ``yield queue.get()``."""
        return _Get(self)

    def put(self, item):
        """Request object for ``yield queue.put(item)`` (blocking)."""
        return _Put(self, item)

    # -- non-blocking -------------------------------------------------------

    def try_put(self, item):
        """Append if there is space; otherwise count a drop."""
        if self.full:
            self.drops += 1
            return False
        self._append(item)
        if self._getters:
            self._service()
        return True

    def try_get(self):
        """``(True, item)`` if an item was waiting, else ``(False, None)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        if self._putters:
            self._service()
        return True, item

    def peek(self, limit=None):
        """The oldest *limit* waiting items (all when ``None``) without
        removing them — batched consumers look ahead at what they are
        about to drain while the items keep occupying their slots."""
        if limit is None:
            return list(self._items)
        return list(itertools.islice(self._items, max(0, limit)))

    # -- internals ----------------------------------------------------------

    def _bind(self, scheduler):
        if self._scheduler is None:
            self._scheduler = scheduler
        elif scheduler is not None and scheduler is not self._scheduler:
            raise EngineError("queue is bound to a different scheduler")

    def _append(self, item):
        self._items.append(item)
        self.total_enqueued += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def _service(self):
        """Match waiting putters with space and waiting getters with
        items; resumptions are zero-delay events so time order (and
        determinism) is preserved."""
        if self._scheduler is None:
            raise EngineError(
                "queue has blocked processes but no scheduler")
        schedule = self._scheduler.schedule
        moved = True
        while moved:
            moved = False
            while self._putters and not self.full:
                process, item = self._putters.popleft()
                self._append(item)
                schedule(0, lambda p=process: p._resume(None))
                moved = True
            while self._getters and self._items:
                process = self._getters.popleft()
                item = self._items.popleft()
                schedule(0, lambda p=process, i=item: p._resume(i))
                moved = True

    def __repr__(self):
        return "Queue(depth=%d%s, drops=%d)" % (
            self.depth,
            "" if self.capacity is None else "/%d" % self.capacity,
            self.drops)
