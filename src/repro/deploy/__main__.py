"""CLI demo driver: deploy any registered service on any backend.

    python -m repro.deploy --service memcached --backend fpga \\
        --opt 2 --requests 1000
    python -m repro.deploy --service memcached \\
        --serve 127.0.0.1:11211 --serve-duration 10
    python -m repro.deploy --service dns --backend cluster \\
        --serve 127.0.0.1:0 --loadgen qps=2000,duration=2
    python -m repro.deploy --list
    python -m repro.deploy --matrix --requests 32

Built entirely on :func:`repro.services.catalog` +
:class:`~repro.deploy.builder.Deployment` — the CLI contains no
target-specific code, which is the point.
"""

import argparse
import subprocess
import sys
import time

from repro.deploy.builder import deploy
from repro.deploy.conformance import run_matrix
from repro.errors import ServeError
from repro.harness.report import render_table
from repro.obs.slo import SloSpec
from repro.services.catalog import registry


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.deploy",
        description="Deploy a registered service on any backend and "
                    "drive its default workload through it.")
    parser.add_argument("--service", default="memcached",
                        help="registry name (see --list)")
    parser.add_argument("--backend", default="cpu",
                        help="cpu | fpga | multicore | cluster | netsim")
    parser.add_argument("--opt", type=int, default=None,
                        help="Kiwi opt level for compiled-kernel cycle "
                             "counting (0, 1, 2 or 3; 3 adds "
                             "initiation-interval pipelining, which "
                             "raises modeled max_qps)")
    parser.add_argument("--level-budget", type=int, default=None,
                        help="timing budget in logic levels per cycle "
                             "for -O2 fusion and -O3 pipelining "
                             "(default 48; tighter budgets block "
                             "fusion/pipelining rather than "
                             "mis-reporting timing)")
    parser.add_argument("--batch", type=int, default=None,
                        help="lockstep batch width for the compiled "
                             "engine (cycle models run N requests per "
                             "dispatch; open-loop servers drain their "
                             "queue in batches)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--arrivals", default=None,
                        choices=["poisson", "uniform"],
                        help="drive an open-loop arrival process "
                             "instead of the closed-loop replay")
    parser.add_argument("--qps", type=float, default=1_000_000.0,
                        help="open-loop arrival rate (with --arrivals)")
    parser.add_argument("--duration-ms", type=float, default=1.0,
                        help="open-loop run length in simulated "
                             "milliseconds (with --arrivals)")
    parser.add_argument("--capacity", type=int, default=None,
                        help="per-server ingest queue depth "
                             "(with --arrivals; default: the NetFPGA "
                             "ingress FIFO depth)")
    parser.add_argument("--serve", metavar="HOST:PORT", default=None,
                        help="serve the deployment behind a real "
                             "loopback socket (port 0 picks a free "
                             "one) instead of replaying a workload; "
                             "drive it with python -m "
                             "repro.serve.loadgen or any real client")
    parser.add_argument("--transport", default=None,
                        choices=["udp", "tcp"],
                        help="socket transport (with --serve; "
                             "default: the service's primary one)")
    parser.add_argument("--serve-duration", type=float, default=None,
                        help="serve for this many seconds then stop "
                             "(with --serve; default: until the "
                             "--loadgen run finishes, or until ^C)")
    parser.add_argument("--loadgen", metavar="K=V,...", default=None,
                        help="launch the external load generator as a "
                             "subprocess against the served socket, "
                             "e.g. 'qps=2000,duration=2,"
                             "tsv=/tmp/lat.tsv,json=/tmp/report.json' "
                             "(keys are repro.serve.loadgen flags; "
                             "with --serve); the loadgen verdict "
                             "becomes this command's exit code")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a virtual-time trace and write "
                             "Chrome trace JSON (Perfetto-loadable) "
                             "to PATH; PATH.tsv gets the flat export")
    parser.add_argument("--timeseries", metavar="PATH", default=None,
                        help="sample an open-loop run into a windowed "
                             "TSV time-series at PATH "
                             "(with --arrivals)")
    parser.add_argument("--window-us", type=float, default=100.0,
                        help="time-series window length "
                             "(with --timeseries)")
    parser.add_argument("--slo", metavar="SPEC", default=None,
                        help="judge the open-loop run against an SLO "
                             "spec: comma-separated objectives "
                             "'p99<=200us,errors<=0.01,"
                             "availability>=0.999' (with --arrivals); "
                             "prints the burn-rate verdict and alert "
                             "timeline")
    parser.add_argument("--slo-rule", metavar="SEV:BURN:FAST/SLOW",
                        action="append", default=None,
                        help="replace the default burn rules, e.g. "
                             "'page:14.4:5/60' (repeatable; "
                             "with --slo)")
    parser.add_argument("--alerts", metavar="PATH", default=None,
                        help="write the run's alert log as "
                             "deterministic JSON to PATH, and TSV to "
                             "PATH.tsv (with --slo)")
    parser.add_argument("--analyze", action="store_true",
                        help="print post-run trace analytics: "
                             "critical-path decomposition and "
                             "p50-vs-p99 tail attribution (implies "
                             "--trace recording; with --arrivals)")
    parser.add_argument("--profile", action="store_true",
                        help="attribute kernel cycles per FSM state "
                             "and print the hotspot table "
                             "(needs --opt)")
    parser.add_argument("--shards", type=int, default=8,
                        help="cluster backend width")
    parser.add_argument("--cores", type=int, default=4,
                        help="multicore backend width")
    parser.add_argument("--list", action="store_true",
                        help="list registered services and exit")
    parser.add_argument("--matrix", action="store_true",
                        help="print the backend-conformance matrix "
                             "and exit")
    return parser


def _list_services():
    specs = registry()
    rows = [[name, ", ".join(spec.backends), spec.description]
            for name, spec in sorted(specs.items())]
    return render_table(["Service", "Backends", "Description"], rows,
                        title="Registered services")


def _parse_slo(text, rule_args, window_us):
    """Build an :class:`SloSpec` from the CLI's declarative strings
    (``p99<=200us,errors<=0.01,availability>=0.999`` plus optional
    ``sev:burn:fast/slow`` rule overrides); raises ``ValueError`` with
    a usable message on malformed input."""
    spec = SloSpec("cli-slo", window_us=window_us)
    for part in text.split(","):
        part = part.strip()
        for separator in ("<=", ">=", "="):
            if separator in part:
                key, _, value = part.partition(separator)
                break
        else:
            raise ValueError("objective %r has no threshold "
                             "(want key<=value)" % (part,))
        key = key.strip().lower()
        value = value.strip().lower()
        if key in ("p99", "latency_p99", "p99_us"):
            if value.endswith("us"):
                value = value[:-2]
            spec.latency_p99(float(value))
        elif key in ("errors", "error_ratio", "drops"):
            spec.error_ratio(float(value))
        elif key in ("availability", "avail"):
            spec.availability(float(value))
        else:
            raise ValueError(
                "unknown objective %r (have: p99, errors, "
                "availability)" % (key,))
    for rule in rule_args or []:
        try:
            severity, burn, windows = rule.split(":")
            fast, slow = windows.split("/")
        except ValueError:
            raise ValueError("rule %r is not SEV:BURN:FAST/SLOW"
                             % (rule,))
        spec.rule(severity.strip(), float(burn), int(fast), int(slow))
    return spec


def _backend_kwargs(args):
    if args.backend == "cluster":
        return {"shards": args.shards}
    if args.backend == "multicore":
        return {"cores": args.cores}
    return {}


def main(argv=None):
    args = _parser().parse_args(argv)
    if args.list:
        print(_list_services())
        return 0
    if args.matrix:
        count = min(args.requests, 64)
        if count < args.requests:
            print("(--requests clamped to %d for the matrix; every "
                  "cell replays the full trace that many times)"
                  % count)
        _, text = run_matrix(count=count, seed=args.seed)
        print(text)
        return 0

    dep = deploy(args.service).on(args.backend,
                                  **_backend_kwargs(args))
    dep.with_seed(args.seed)
    if args.level_budget is not None and args.opt is None:
        print("--level-budget needs --opt (the budget bounds the "
              "compiled kernel's schedule)", file=sys.stderr)
        return 2
    if args.opt is not None:
        dep.with_opt(args.opt, level_budget=args.level_budget)
    if args.batch is not None:
        dep.with_batch(args.batch)
    if args.arrivals is not None:
        dep.with_arrivals(args.arrivals, qps=args.qps,
                          capacity=args.capacity)
    if args.trace is not None or args.analyze:
        dep.with_trace()
    if args.serve is not None and args.arrivals is not None:
        print("--serve and --arrivals are exclusive (a served "
              "deployment gets its load from the socket)",
              file=sys.stderr)
        return 2
    for flag, value in (("--loadgen", args.loadgen),
                        ("--transport", args.transport),
                        ("--serve-duration", args.serve_duration)):
        if value is not None and args.serve is None:
            print("%s needs --serve" % flag, file=sys.stderr)
            return 2
    if args.timeseries is not None:
        if args.arrivals is None and args.serve is None:
            print("--timeseries needs --arrivals or --serve (it "
                  "samples a running workload)", file=sys.stderr)
            return 2
        dep.with_timeseries(window_us=args.window_us)
    if args.alerts is not None and args.slo is None:
        print("--alerts needs --slo (it exports the alert log)",
              file=sys.stderr)
        return 2
    if args.analyze and args.arrivals is None:
        print("--analyze needs --arrivals (it decomposes the "
              "open-loop trace)", file=sys.stderr)
        return 2
    if args.slo is not None:
        if args.arrivals is None and args.serve is None:
            print("--slo needs --arrivals or --serve (objectives "
                  "stream over the run's windows)", file=sys.stderr)
            return 2
        try:
            spec = _parse_slo(args.slo, args.slo_rule, args.window_us)
        except ValueError as error:
            print("bad --slo/--slo-rule: %s" % error, file=sys.stderr)
            return 2
        dep.with_slo(spec)
    if args.profile:
        if args.opt is None:
            print("--profile needs --opt (per-state attribution runs "
                  "on the compiled kernel)", file=sys.stderr)
            return 2
        dep.with_profile()
    if args.serve is not None:
        # Fail the capability check BEFORE spinning up a backend, so
        # unservable services get a clear error instead of a hang.
        try:
            from repro.serve.spec import resolve_binding
            resolve_binding(dep.spec, args.transport)
        except ServeError as error:
            print("cannot serve: %s" % error, file=sys.stderr)
            return 2

    dep.start()
    print(dep.describe())
    print()

    if args.serve is not None:
        code = _run_serve(dep, args)
        dep.stop()
        return code

    if args.arrivals is not None:
        report = dep.run_open_loop(duration_ms=args.duration_ms)
        print(report.text())
        if dep.slo is not None:
            print()
            print(dep.slo.text())
        if args.analyze:
            print()
            print(dep.analysis().text())
        _finish_obs(dep, args)
        dep.stop()
        return 0

    dep.run(count=args.requests)
    snapshot = dep.stats()
    rows = [[key, snapshot[key]] for key in sorted(snapshot)
            if snapshot[key] is not None]
    print(render_table(["Metric", "Value"], rows,
                       title="Run: %d request(s) through %r"
                             % (args.requests, dep)))

    probe = dep.spec.client.request(seed=args.seed)
    emitted, latency_ns = dep.send(probe)
    if emitted:
        port, reply = emitted[0]
        line = "probe reply on port %d: %s" \
            % (port, dep.spec.client.summarize(reply))
        if latency_ns is not None:
            line += "  (%.0f ns)" % latency_ns
        print("\n" + line)
    else:
        print("\nprobe produced no reply (dropped)")
    _finish_obs(dep, args)
    dep.stop()
    return 0


def _parse_endpoint(text):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError("%r is not HOST:PORT" % (text,))
    return host, int(port)


def _loadgen_argv(spec_text, service, host, port):
    """Turn the ``--loadgen k=v,...`` shorthand into the external
    generator's command line (keys map 1:1 to its flags)."""
    argv = [sys.executable, "-m", "repro.serve.loadgen",
            "--service", service, "--host", host,
            "--port", str(port)]
    for pair in (spec_text or "").split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, separator, value = pair.partition("=")
        if not separator or not key.strip():
            raise ValueError("loadgen option %r is not key=value"
                             % (pair,))
        argv += ["--%s" % key.strip(), value.strip()]
    return argv


def _run_serve(dep, args):
    """The --serve flow: bind, optionally drive the external load
    generator, report, and propagate the loadgen verdict."""
    try:
        host, port = _parse_endpoint(args.serve)
    except ValueError as error:
        print("bad --serve: %s" % error, file=sys.stderr)
        return 2
    try:
        server = dep.serve(host, port, transport=args.transport,
                           capacity=args.capacity)
    except (ServeError, OSError) as error:
        print("cannot serve: %s" % error, file=sys.stderr)
        return 2
    code = 0
    try:
        bound_host, bound_port = server.address
        print("serving %s over %s on %s:%d"
              % (dep.spec.name, server.binding.transport,
                 bound_host, bound_port))
        if args.loadgen is not None:
            try:
                argv = _loadgen_argv(args.loadgen, dep.spec.name,
                                     bound_host, bound_port)
            except ValueError as error:
                print("bad --loadgen: %s" % error, file=sys.stderr)
                return 2
            if args.transport is not None:
                argv += ["--transport", args.transport]
            print("loadgen: %s" % " ".join(argv[2:]))
            code = subprocess.call(argv)
        elif args.serve_duration is not None:
            time.sleep(args.serve_duration)
        else:
            print("(^C to stop)")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
    finally:
        server.stop()
    print()
    print(server.report.text())
    if dep.slo is not None:
        print()
        print(dep.slo.text())
    _finish_obs(dep, args)
    return code


def _finish_obs(dep, args):
    """Export whatever observability the flags turned on."""
    if args.trace is not None and dep.tracer is not None:
        dep.tracer.write_json(args.trace)
        dep.tracer.write_tsv(args.trace + ".tsv")
        print("\ntrace: %d event(s) -> %s (+ .tsv)"
              % (len(dep.tracer), args.trace))
    if args.timeseries is not None and dep.timeseries is not None:
        dep.timeseries.write_tsv(args.timeseries)
        print("time-series: %d window(s) -> %s"
              % (len(dep.timeseries), args.timeseries))
    if args.alerts is not None and dep.alert_log is not None:
        dep.alert_log.write_json(args.alerts)
        dep.alert_log.write_tsv(args.alerts + ".tsv")
        print("alert log: %d event(s) -> %s (+ .tsv)"
              % (len(dep.alert_log), args.alerts))
    if args.profile:
        print()
        print(dep.kernel_profile().hotspot_table())


if __name__ == "__main__":
    sys.exit(main())
