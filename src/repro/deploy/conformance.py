"""Backend conformance: the same trace must get the same replies.

For each registered service, the shard-safe trace replays through
every backend the spec supports, and the replies are compared against
the CPU target (software semantics — the ground truth per §3.3).  The
comparison is exact: same number of replies per request, same output
ports (where the backend has the CPU target's port space), same reply
bytes.  Metrics snapshots are also checked for a consistent shape.

Used two ways:

* ``tests/deploy/test_conformance.py`` parametrizes over the matrix
  and asserts each cell;
* ``python -m repro.deploy --matrix`` prints the summary table (the
  CI non-gating job), via :func:`run_matrix`.
"""

from repro.deploy.builder import deploy
from repro.harness.report import render_table
from repro.services.catalog import registry

#: (label, backend name, builder-configuration kwargs, opt level)
BACKEND_CASES = [
    ("cpu", "cpu", {}, None),
    ("fpga -O0", "fpga", {}, 0),
    ("fpga -O2", "fpga", {}, 2),
    ("multicore x4", "multicore", {"cores": 4}, None),
    ("cluster x4", "cluster", {"shards": 4}, None),
    ("netsim", "netsim", {}, None),
]

#: netsim replies ride simulated wires whose latency model is the
#: link's, not the CPU target's port bitmap timing — ports and bytes
#: still must match exactly.
DEFAULT_COUNT = 32
DEFAULT_SEED = 7


def backend_cases(spec):
    """The matrix columns this spec participates in."""
    return [case for case in BACKEND_CASES if spec.supports(case[1])]


def reply_signature(results):
    """Canonical per-request reply list: ``[(port, bytes), ...]``.

    Latency is backend-specific by design; the *functional* reply —
    which ports, which bytes, in which order — is what conformance
    asserts.
    """
    signature = []
    for emitted, _latency in results:
        signature.append(tuple((port, bytes(frame.data))
                               for port, frame in emitted))
    return signature


def run_case(spec, label, backend_name, kwargs, opt_level,
             count=DEFAULT_COUNT, seed=DEFAULT_SEED):
    """Replay the spec's trace on one backend; returns
    ``(signature, deployment)``."""
    dep = deploy(spec).on(backend_name, **kwargs).with_seed(seed)
    if opt_level is not None:
        dep = dep.with_opt(opt_level)
    dep.start()
    results = [dep.send(frame.copy())
               for frame in spec.trace(count, seed)]
    return reply_signature(results), dep


def run_matrix(count=DEFAULT_COUNT, seed=DEFAULT_SEED, services=None):
    """Run every (service × backend) cell; returns ``(results, text)``.

    ``results[service][label]`` is ``"ok"``, ``"MISMATCH"``, or
    ``"skip"`` (spec does not support the backend).
    """
    specs = registry()
    names = sorted(specs) if services is None else list(services)
    results = {}
    for name in names:
        spec = specs[name]
        baseline = None
        row = {}
        for label, backend_name, kwargs, opt_level in BACKEND_CASES:
            if not spec.supports(backend_name):
                row[label] = "skip"
                continue
            signature, _ = run_case(spec, label, backend_name, kwargs,
                                    opt_level, count=count, seed=seed)
            if baseline is None:        # the cpu column comes first
                baseline = signature
                row[label] = "ok"
            else:
                row[label] = "ok" if signature == baseline \
                    else "MISMATCH"
        results[name] = row
    labels = [case[0] for case in BACKEND_CASES]
    rows = [[name] + [results[name][label] for label in labels]
            for name in names]
    text = render_table(
        ["Service"] + labels, rows,
        title="Backend conformance: replies vs the CPU target "
              "(%d requests, seed %d)" % (count, seed))
    return results, text
