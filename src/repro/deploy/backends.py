"""Backend adapters: one ``start/send/send_batch/stop/stats`` protocol
over every execution target.

Each adapter wraps one of the existing target layers — it does not
reimplement them.  The uniform surface is:

* ``start()``                  — build the underlying target(s);
* ``send(frame)``              — one request; always returns
  ``(emitted, latency_ns)`` where *emitted* is a ``(port, frame)``
  list and *latency_ns* is ``None`` on backends without a timing
  model (CPU) or for dropped frames;
* ``send_batch(frames)``       — a request list (backends with a
  native batched path use it; others loop);
* ``stop()``                   — release the target;
* ``stats()``                  — backend-specific counters, merged
  into the deployment's metrics snapshot;
* ``pop_cycles()``             — core-cycle counts recorded since the
  last call (feeds the metrics cycle histogram);
* ``max_qps(read, write, ratio)`` — the model-based throughput
  ceiling, where the target has one;
* ``attach_faults(plan)``      — wire a
  :class:`~repro.netsim.faults.FaultPlan` to whatever fault surface
  the backend has.  The injector's target is backend-specific: the
  ``ClusterTarget`` on the cluster backend (so ``plan.kill_shard``
  etc. work), the backend adapter itself on netsim (its fault verbs
  are ``partition(port)`` / ``heal(port)``).

Register new backends with :func:`register_backend`; the
:class:`~repro.deploy.builder.Deployment` builder resolves them by
name, so new execution substrates compose with every registered
service and workload without touching call sites.
"""

from repro.cluster.balancer import flow_key
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.target import REQUEST_TIMEOUT_NS, ClusterTarget
from repro.errors import TargetError
from repro.netsim import FaultInjector, Network
from repro.targets.cpu import CpuTarget
from repro.targets.fpga import FpgaTarget
from repro.targets.multicore import MultiCoreTarget

#: name -> Backend subclass
BACKENDS = {}


def register_backend(name):
    """Class decorator: make a backend constructible by name."""
    def decorate(cls):
        cls.name = name
        BACKENDS[name] = cls
        return cls
    return decorate


def backend_names():
    return sorted(BACKENDS)


def resolve_backend(name):
    try:
        return BACKENDS[name]
    except KeyError:
        raise TargetError("unknown backend %r (have: %s)"
                          % (name, ", ".join(backend_names())))


class Backend:
    """Adapter base: common config handling + default loops."""

    name = "?"

    def __init__(self, spec, config):
        self.spec = spec
        self.config = config
        self.target = None
        self._cycle_offsets = {}
        #: The opt level the running deployment actually honours;
        #: ``None`` on backends without a compiled-kernel cycle model
        #: (cpu, netsim) or when the service has no flat kernel.
        self.effective_opt = None

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        raise NotImplementedError

    def stop(self):
        self.target = None

    @property
    def started(self):
        return self.target is not None

    def _require_started(self):
        if not self.started:
            raise TargetError("backend %r is not started" % (self.name,))

    # -- dispatch -----------------------------------------------------------

    def send(self, frame):
        raise NotImplementedError

    def send_batch(self, frames):
        """Default: sequential sends (overridden where the target has
        a native batched path)."""
        return [self.send(frame) for frame in frames]

    # -- observability ------------------------------------------------------

    def _fpga_targets(self):
        """The FpgaTarget instances whose cycle counts feed metrics."""
        return []

    def pop_cycles(self):
        """Core-cycle counts recorded since the last call."""
        harvested = []
        for target in self._fpga_targets():
            key = id(target)
            offset = self._cycle_offsets.get(key, 0)
            counts = target.core_cycle_counts
            if offset < len(counts):
                harvested.extend(counts[offset:])
                self._cycle_offsets[key] = len(counts)
        return harvested

    def stats(self):
        return {}

    def describe_scale(self):
        """Short human string for the describe() table ("8 shards")."""
        return "1 device"

    def cycle_models(self):
        """The compiled-kernel cycle models this backend runs (empty on
        behavioural / no-timing backends) — the per-FSM-state profiling
        surface."""
        return [target.cycle_model for target in self._fpga_targets()
                if target.cycle_model is not None]

    def enable_profiling(self):
        """Turn on per-FSM-state cycle counting on every compiled
        kernel this backend runs; returns how many kernels are
        profiling (raises when there are none — behavioural counting
        has no states to attribute)."""
        models = self.cycle_models()
        if not models:
            raise TargetError(
                "backend %r has no compiled kernels to profile "
                "(needs with_opt(level) and a service with a flat "
                "kernel)" % (self.name,))
        for model in models:
            model.enable_profiling()
        return len(models)

    def kernel_profile(self):
        """The merged :class:`~repro.obs.profiler.KernelProfile`
        across this backend's kernels (cores / shards run identical
        compiled shapes, so their counts fold)."""
        from repro.obs.profiler import merge_profiles
        models = self.cycle_models()
        if not models:
            raise TargetError(
                "backend %r has no compiled kernels to profile"
                % (self.name,))
        return merge_profiles([model.profile() for model in models])

    def attach_tracer(self, tracer):
        """Hand *tracer*'s instant-event hooks to whatever fault /
        health surfaces this backend has (default: nothing to hook);
        returns the tracer."""
        return tracer

    def open_loop_server_names(self):
        """Human track names for the open-loop tracer, one per
        :meth:`open_loop_servers` server."""
        count, _ = self.open_loop_servers()
        if count == 1:
            return [self.name]
        return ["%s%d" % (self.name, index) for index in range(count)]

    def open_loop_trace_detail(self, frame):
        """Per-request routing detail attached to traced spans
        (cluster: owning shard; multicore: serving core)."""
        return {}

    # -- open-loop load (the engine's queueing model) -----------------------

    def open_loop_servers(self):
        """``(count, route)``: how many parallel service engines this
        backend runs and which one a frame occupies.  Default: one
        server, everything routes to it."""
        return 1, (lambda frame: 0)

    def open_loop_profile(self, frame):
        """Process one admitted arrival; returns ``(emitted,
        service_ns, overhead_ns)``.

        *service_ns* is the time the request occupies its server (the
        queueing resource); *overhead_ns* is the constant wire/PHY time
        that pipelines perfectly and is simply added to the recorded
        latency.  Backends without a timing model report zero service
        time (no queueing) and their measured latency, if any, as
        overhead.
        """
        emitted, latency_ns = self.send(frame)
        return emitted, 0.0, float(latency_ns or 0.0)

    def open_loop_profile_batch(self, frames):
        """Batched :meth:`open_loop_profile` — one ``(emitted,
        service_ns, overhead_ns)`` per frame, in order.  Default: the
        per-frame loop; backends whose target has a native lockstep
        burst path (fpga) override it.
        """
        return [self.open_loop_profile(frame) for frame in frames]

    def _profile_via(self, fpga_target, send):
        """Shared fpga-shaped profile: *send* runs the request, the
        occupancy comes from the target's recorded service time."""
        before = len(fpga_target.service_times_ns)
        emitted, latency_ns = send()
        if len(fpga_target.service_times_ns) > before:
            service_ns = fpga_target.service_times_ns[-1]
        else:
            service_ns = 0.0
        overhead_ns = 0.0
        if latency_ns is not None:
            overhead_ns = max(0.0, latency_ns - service_ns)
        return emitted, service_ns, overhead_ns

    # -- models / faults ----------------------------------------------------

    def max_qps(self, read_frame, write_frame=None, write_ratio=0.0):
        raise TargetError("backend %r has no throughput model"
                          % (self.name,))

    def attach_faults(self, plan):
        """Wire a fault plan; returns a FaultInjector or raises."""
        raise TargetError("backend %r has no fault surface"
                          % (self.name,))

    def _effective_opt(self, service):
        """The opt level this service can honour (the table-4 fallback:
        services without a flat kernel keep behavioural counting)."""
        opt_level = self.config.opt_level
        if opt_level is not None and \
                not hasattr(service, "kernel_cycle_model"):
            return None
        return opt_level

    def _effective_opt_for_factory(self):
        """Like :meth:`_effective_opt` for factory-based targets
        (multicore/cluster build their own instances): probes one
        instance for the kernel hook, and only when an opt level was
        actually requested — the common unoptimized path builds
        nothing extra."""
        if self.config.opt_level is None:
            return None
        return self._effective_opt(self.spec.build())

    def _effective_batch(self):
        """The lockstep batch width compiled cycle models are built
        with — only meaningful when an opt level is honoured (without
        one there is no compiled kernel to batch)."""
        if self.effective_opt is None:
            return None
        return self.config.batch

    def _effective_level_budget(self):
        """The timing budget (logic levels per cycle) compiled cycle
        models are built with — only meaningful when an opt level is
        honoured (without one nothing is compiled)."""
        if self.effective_opt is None:
            return None
        return self.config.level_budget


@register_backend("cpu")
class CpuBackend(Backend):
    """Workflow A: software semantics, no timing model."""

    def start(self):
        self.target = CpuTarget(self.spec.build(),
                                num_ports=self.config.get("ports", 4),
                                seed=self.config.seed)
        return self

    def send(self, frame):
        self._require_started()
        return self.target.send(frame), None

    def stats(self):
        self._require_started()
        return {"frames_processed": self.target.frames_processed}

    def describe_scale(self):
        return "%d ports" % self.config.get("ports", 4)


@register_backend("fpga")
class FpgaBackend(Backend):
    """One NetFPGA SUME device (cycle/latency/throughput model)."""

    def start(self):
        service = self.spec.build()
        self.effective_opt = self._effective_opt(service)
        self.target = FpgaTarget(service,
                                 num_ports=self.config.get("ports", 4),
                                 seed=self.config.seed,
                                 opt_level=self.effective_opt,
                                 batch=self._effective_batch(),
                                 level_budget=self._effective_level_budget())
        return self

    def send(self, frame):
        self._require_started()
        return self.target.send(frame)

    def send_batch(self, frames):
        self._require_started()
        return self.target.send_batch(frames)

    def open_loop_profile(self, frame):
        self._require_started()
        return self._profile_via(self.target,
                                 lambda: self.target.send(frame))

    def open_loop_profile_batch(self, frames):
        """Native burst profile: the target measures the whole batch's
        core cycles in one lockstep run; the per-frame statistics are
        identical to the scalar path (see FpgaTarget.send_batch)."""
        self._require_started()
        target = self.target
        before = len(target.service_times_ns)
        outcomes = target.send_batch(frames)
        service_times = target.service_times_ns[before:]
        results = []
        for (emitted, latency_ns), service_ns in zip(outcomes,
                                                     service_times):
            overhead_ns = 0.0 if latency_ns is None \
                else max(0.0, latency_ns - service_ns)
            results.append((emitted, service_ns, overhead_ns))
        return results

    def _fpga_targets(self):
        return [self.target] if self.target else []

    def max_qps(self, read_frame, write_frame=None, write_ratio=0.0):
        self._require_started()
        read_qps = self.target.max_qps(read_frame.copy())
        if write_frame is None or write_ratio <= 0.0:
            return read_qps
        write_qps = self.target.max_qps(write_frame.copy())
        return 1.0 / (write_ratio / write_qps +
                      (1.0 - write_ratio) / read_qps)

    def stats(self):
        self._require_started()
        pipeline = self.target.pipeline
        return {"frames_in": pipeline.frames_in,
                "frames_out": pipeline.frames_out,
                "dropped_ingress": pipeline.frames_dropped_ingress,
                "opt_level": self.effective_opt}

    def describe_scale(self):
        return "%d ports" % self.config.get("ports", 4)


@register_backend("multicore")
class MultiCoreBackend(Backend):
    """N Emu cores, one per port, with write replication (§5.4)."""

    def start(self):
        self.effective_opt = self._effective_opt_for_factory()
        self.target = MultiCoreTarget(
            self.spec.factory,
            num_cores=self.config.get("cores", 4),
            seed=self.config.seed,
            is_write=self.config.get("is_write", self.spec.is_write),
            opt_level=self.effective_opt,
            batch=self._effective_batch(),
            level_budget=self._effective_level_budget())
        self._pending_cycles = []
        return self

    def send(self, frame):
        self._require_started()
        serving_core = self.target.serving_core(frame)
        result = self.target.send(frame)
        # Harvest per send, not per pop: a batch spreads requests over
        # different serving cores, and only the serving core's count
        # is a request cost — a replicated write also runs on every
        # other core, but those replica applies are background work,
        # exactly like the cluster backend's (which records none).
        # One cycle sample per request on every backend, batch or not.
        for index, core in enumerate(self.target.cores):
            key = id(core)
            offset = self._cycle_offsets.get(key, 0)
            counts = core.core_cycle_counts
            if offset < len(counts):
                if index == serving_core:
                    self._pending_cycles.extend(counts[offset:])
                self._cycle_offsets[key] = len(counts)
        return result

    def open_loop_servers(self):
        self._require_started()
        return self.target.num_cores, self.target.serving_core

    def open_loop_server_names(self):
        self._require_started()
        return ["core%d" % index
                for index in range(self.target.num_cores)]

    def open_loop_trace_detail(self, frame):
        return {"core": self.target.serving_core(frame)}

    def open_loop_profile(self, frame):
        self._require_started()
        serving = self.target.cores[self.target.serving_core(frame)]
        # Route through self.send so the per-send cycle harvest keeps
        # its one-sample-per-request invariant; occupancy is the
        # serving core's (replica applies are background work).
        return self._profile_via(serving, lambda: self.send(frame))

    def _fpga_targets(self):
        return self.target.cores if self.target else []

    def pop_cycles(self):
        pending, self._pending_cycles = self._pending_cycles, []
        return pending

    def max_qps(self, read_frame, write_frame=None, write_ratio=0.0):
        self._require_started()
        if write_frame is None:
            write_frame = read_frame
        return self.target.max_qps(read_frame, write_frame, write_ratio)

    def stats(self):
        self._require_started()
        return {"cores": self.target.num_cores,
                "opt_level": self.effective_opt}

    def describe_scale(self):
        return "%d cores" % self.config.get("cores", 4)


@register_backend("cluster")
class ClusterBackend(Backend):
    """N sharded devices behind a consistent-hash ring (scale-out)."""

    def start(self):
        self.effective_opt = self._effective_opt_for_factory()
        config = self.config
        self.target = ClusterTarget(
            self.spec.factory,
            num_shards=config.get("shards", 8),
            policy=config.get("policy"),
            is_write=config.get("is_write", self.spec.is_write),
            key_fn=config.get("key_fn", self.spec.key_fn or flow_key),
            vnodes=config.get("vnodes", DEFAULT_VNODES),
            seed=config.seed,
            suspect_after=config.get("suspect_after", 3),
            opt_level=self.effective_opt,
            batch=self._effective_batch(),
            level_budget=self._effective_level_budget())
        return self

    def send(self, frame):
        self._require_started()
        return self.target.send(frame)

    def send_batch(self, frames):
        self._require_started()
        return self.target.send_batch(frames)

    def open_loop_servers(self):
        self._require_started()
        target = self.target
        count = max(1, target.num_shards)
        # Pin shard -> queue index for the whole run.  The live
        # _shard_index re-sorts on membership changes, so reading it
        # from the route closure would silently remap a surviving
        # shard onto the *evicted* shard's queue (and trace track)
        # mid-run — rerouted keys must land on their new owner's own
        # queue instead.
        index_of = {shard_id: index for index, shard_id
                    in enumerate(target._shard_order)}

        def route(frame):
            index = index_of.get(target.owner_of(frame))
            return 0 if index is None else index % count
        return count, route

    def open_loop_server_names(self):
        self._require_started()
        return list(self.target._shard_order)

    def open_loop_trace_detail(self, frame):
        owner = self.target.owner_of(frame)
        return {} if owner is None else {"shard": owner}

    def attach_tracer(self, tracer):
        """Cluster membership changes (kills, evictions, rejoins,
        replica applies, timeouts) become instant events on track 0."""
        self._require_started()
        self.target.event_hook = tracer.hook(cat="cluster")
        return tracer

    def open_loop_profile(self, frame):
        self._require_started()
        owner = self.target.owner_of(frame)
        shard = self.target.shards.get(owner)
        if shard is None:
            # No routable key: the balancer has nowhere to send it —
            # no reply, no shard occupied (closed-loop send() raises
            # here; an open-loop run records a drop and moves on).
            return [], 0.0, 0.0
        if owner in self.target._down:
            # A crashed-but-not-yet-evicted shard eats the request:
            # send() runs the failure detector (and the eventual
            # eviction), and the client burns the full timeout on the
            # dead shard's queue — the same REQUEST_TIMEOUT_NS the
            # closed-loop availability harness charges, so timed-out
            # requests show up in the trace as the 50 us tail spans
            # they are instead of instant failures.
            emitted, _ = self.target.send(frame)
            return emitted, float(REQUEST_TIMEOUT_NS), 0.0
        return self._profile_via(shard,
                                 lambda: self.target.send(frame))

    def _fpga_targets(self):
        if not self.target:
            return []
        return list(self.target.shards.values())

    def max_qps(self, read_frame, write_frame=None, write_ratio=0.0):
        self._require_started()
        if write_frame is None:
            write_frame = read_frame
        return self.target.max_qps(read_frame, write_frame, write_ratio)

    def attach_faults(self, plan):
        self._require_started()
        return FaultInjector(plan, self.target)

    def stats(self):
        self._require_started()
        target = self.target
        return {"shards": target.num_shards,
                "writes": target.writes,
                "replica_applies": target.replica_applies,
                "failed_requests": target.failed_requests,
                "failovers": target.failovers,
                "load_imbalance": target.load_imbalance()
                if target.requests else None,
                "opt_level": self.effective_opt}

    def describe_scale(self):
        return "%d shards" % self.config.get("shards", 8)


@register_backend("netsim")
class NetsimBackend(Backend):
    """The Mininet role: the service on a simulated wire.

    The service node gets one simulated host per port (the deploy
    trace's ``src_port`` picks the injecting host), so multi-port
    semantics — NAT's LAN→WAN forwarding, the switch's flooding —
    survive intact: replies come back as ``(port, frame)`` exactly
    like the CPU target's emission list, plus wire latency.
    """

    def start(self):
        config = self.config
        num_ports = config.get("ports", 4)
        self.net = Network()
        service = self.spec.build()
        self.node = self.net.add_service("dut", service,
                                         num_ports=num_ports)
        self.hosts = []
        self.links = []
        for port in range(num_ports):
            host = self.net.add_host("host%d" % port)
            faults = dict(config.get("faults") or {})
            faults.setdefault("seed", config.seed + port)
            self.links.append(self.net.connect(
                host, 0, self.node, port,
                latency_ns=config.get("link_latency_ns", 1000),
                bandwidth_bps=config.get("bandwidth_bps",
                                         10_000_000_000),
                faults=faults))
            self.hosts.append(host)
        self.target = self.node
        return self

    # -- fault verbs (the FaultPlan target on this backend) -----------------

    def partition(self, port):
        """Cut the wire between the simulated host on *port* and the
        service (the ``plan.partition(when, port)`` verb)."""
        self._require_started()
        self.links[int(port)].take_down()

    def heal(self, port):
        self._require_started()
        self.links[int(port)].bring_up()

    def send(self, frame):
        self._require_started()
        if not 0 <= frame.src_port < len(self.hosts):
            raise TargetError("no simulated host on port %d"
                              % frame.src_port)
        start_ns = self.net.now_ns
        self.hosts[frame.src_port].send(frame.copy())
        self.net.run()
        emitted = []
        latest_ns = None
        for port, host in enumerate(self.hosts):
            for reply in host.drain():
                emitted.append((port, reply))
                if latest_ns is None or reply.timestamp_ns > latest_ns:
                    latest_ns = reply.timestamp_ns
        latency_ns = None if latest_ns is None else latest_ns - start_ns
        return emitted, latency_ns

    def attach_faults(self, plan):
        """Arm *plan* on the simulator's event loop (times are loop
        nanoseconds).  The injector's target is this backend: plans use
        its :meth:`partition` / :meth:`heal` port verbs (there are no
        shards here — shard-verb plans belong on the cluster backend
        or the :mod:`repro.cluster.topology` builders)."""
        self._require_started()
        injector = FaultInjector(plan, self)
        injector.arm(self.net.loop)
        return injector

    def stats(self):
        self._require_started()
        return {"frames_handled": self.node.frames_handled,
                "frames_dropped": self.node.frames_dropped,
                "sim_time_ns": self.net.now_ns}

    def describe_scale(self):
        return "%d simulated hosts" % self.config.get("ports", 4)
