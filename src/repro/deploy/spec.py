"""``ServiceSpec``: everything a deployment needs to know about a
service, in one declarative object.

The repo's targets all consume the same three ingredients — a way to
build the service, a way to build request frames for it, and a way to
interpret what comes back — but before this package they were scattered
across every harness module as ad-hoc factory/workload tuples.  A spec
bundles them:

* ``factory``     — zero-argument callable returning a fresh service
  instance (each backend instantiates its own copies: one for the CPU
  target, one per core, one per shard);
* ``client``      — a :class:`ProtocolClient`: builds single probe
  requests and summarizes replies (used by the CLI and the tests);
* ``workload``    — ``workload(count, seed, **options)`` returning an
  iterator of request :class:`~repro.net.packet.Frame` objects (the
  service's default benchmark traffic);
* ``trace``       — like ``workload`` but guaranteed *shard-safe*: the
  conformance suite replays it through every backend and demands
  byte-identical replies, so a stateful service's trace must route all
  causally-related frames to one shard (defaults to ``workload``);
* ``is_write``    — classifier for write replication (multicore and
  cluster backends); ``None`` means no frame is a write;
* ``key_fn``      — cluster routing key extractor (defaults to the
  balancer's flow key);
* ``host_wrapper``— the Table 4 host-stack baseline, if one exists;
* ``backends``    — which deploy backends can faithfully run the
  service (port-semantics services like the learning switch flood to
  multiple physical ports, which the 1-port-per-core scale-out
  backends cannot represent);
* ``serve``       — the real-socket serving capability (a
  :class:`~repro.serve.spec.ServeSpec` with per-transport bindings,
  ``None`` for services that explicitly cannot sit behind a socket,
  or :data:`UNDECLARED` when the author never considered it — the
  conformance suite requires every registry entry to pick a side).
"""

from repro.errors import TargetError

#: Every backend name the deploy layer registers.
ALL_BACKENDS = ("cpu", "fpga", "multicore", "cluster", "netsim")


class _Undeclared:
    """Sentinel for "this spec never declared its socket capability".

    Distinct from ``None``, which is an *explicit* declaration that the
    service cannot be served over a socket (netsim-only port-semantics
    services).  Falsy so ``if spec.serve:`` reads naturally.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self):
        return False

    def __repr__(self):
        return "<serve capability undeclared>"


#: The one sentinel instance (see :class:`_Undeclared`).
UNDECLARED = _Undeclared()


class ProtocolClient:
    """Builds request frames and interprets replies for one service.

    *request* is ``request(seed, **options) -> Frame`` (one
    representative probe).  *summarize* is ``summarize(reply_frame) ->
    str`` (a one-line human reading of a reply, e.g. the memcached
    status line); the default shows length and first bytes.
    """

    def __init__(self, name, request, summarize=None):
        self.name = name
        self._request = request
        self._summarize = summarize

    def request(self, seed=1, **options):
        """A single representative request frame."""
        return self._request(seed, **options)

    def summarize(self, reply):
        """One human-readable line about a reply frame."""
        if self._summarize is not None:
            return self._summarize(reply)
        data = bytes(reply.data)
        return "%d bytes: %s..." % (len(data), data[:16].hex())

    def __repr__(self):
        return "ProtocolClient(%r)" % (self.name,)


class ServiceSpec:
    """A deployable service: factory + protocol client + workloads."""

    def __init__(self, name, factory, client=None, workload=None,
                 trace=None, is_write=None, key_fn=None,
                 host_wrapper=None, has_kernel=False,
                 backends=ALL_BACKENDS, description="",
                 serve=UNDECLARED):
        if not callable(factory):
            raise TargetError("spec %r needs a callable factory" % name)
        self.name = name
        self.factory = factory
        self.client = client or ProtocolClient(name, _no_probe(name))
        self._workload = workload
        self._trace = trace
        self.is_write = is_write
        self.key_fn = key_fn
        self.host_wrapper = host_wrapper
        self.has_kernel = has_kernel
        self.backends = tuple(backends)
        self.description = description
        self.serve = serve

    def build(self):
        """A fresh service instance."""
        return self.factory()

    def workload(self, count, seed=3, **options):
        """The service's default request stream."""
        if self._workload is None:
            raise TargetError("spec %r has no default workload"
                              % (self.name,))
        return self._workload(count, seed, **options)

    def trace(self, count, seed=3, **options):
        """A shard-safe trace for backend-conformance replay."""
        maker = self._trace if self._trace is not None else self._workload
        if maker is None:
            raise TargetError("spec %r has no conformance trace"
                              % (self.name,))
        return maker(count, seed, **options)

    def supports(self, backend_name):
        return backend_name in self.backends

    # -- socket-serving capability (see repro.serve) -------------------------

    @property
    def declares_serve(self):
        """Whether the spec took a position on socket serving at all
        (``serve=None`` counts: it *declares* "not servable")."""
        return self.serve is not UNDECLARED

    @property
    def transports(self):
        """The declared socket transports, e.g. ``("udp", "tcp")`` —
        empty for unservable or undeclared services."""
        if not self.serve:
            return ()
        return self.serve.transports

    @property
    def transport(self):
        """The primary socket transport (``None`` when unservable)."""
        transports = self.transports
        return transports[0] if transports else None

    @property
    def frame_decoder(self):
        """The stream-framing decoder factory of the service's TCP
        binding (``None`` for datagram-only or unservable services)."""
        if not self.serve:
            return None
        return self.serve.frame_decoder

    @classmethod
    def adhoc(cls, name, factory, **kwargs):
        """A spec for a one-off service (harness-local factories that
        are not worth a registry entry, e.g. a DirectedService wrap)."""
        return cls(name, factory, **kwargs)

    def __repr__(self):
        return "ServiceSpec(%r, backends=%r)" % (self.name,
                                                 self.backends)


def _no_probe(name):
    def request(seed=1, **options):
        raise TargetError("service %r has no protocol client probe"
                          % (name,))
    return request
