"""``repro.deploy`` — one deployment API over every backend.

The paper's core claim is "one service codebase, heterogeneous
targets" (§3.3).  This package is that claim as an API: a service
described once (:class:`~repro.deploy.spec.ServiceSpec`, one per
entry in :func:`repro.services.registry`, defined in
:mod:`repro.services.catalog`) deploys onto any registered backend
through one fluent builder::

    from repro.deploy import deploy

    dep = deploy("memcached").on("cluster", shards=8) \\
                             .with_opt(2).with_seed(7).start()
    replies = dep.send_batch(frames)
    print(dep.metrics.snapshot())
    print(dep.describe())

Backends (``cpu``, ``fpga``, ``multicore``, ``cluster``, ``netsim``)
are adapters over the existing target layers — registered by name, so
new substrates, services, and chaos scripts compose without touching
call sites.  Every deployment gets the same
:class:`~repro.deploy.metrics.Metrics` for free, and the
backend-conformance suite (:mod:`repro.deploy.conformance`) proves
the replies are identical everywhere.

Try it: ``python -m repro.deploy --service memcached --backend fpga
--opt 2 --requests 1000``.
"""

from repro.deploy.backends import (
    BACKENDS, Backend, backend_names, register_backend, resolve_backend,
)
from repro.deploy.builder import Deployment, DeploymentConfig, deploy
from repro.deploy.metrics import Metrics
from repro.deploy.spec import ALL_BACKENDS, ProtocolClient, ServiceSpec

__all__ = [
    "ALL_BACKENDS", "BACKENDS", "Backend", "Deployment",
    "DeploymentConfig", "Metrics", "ProtocolClient", "ServiceSpec",
    "backend_names", "deploy", "register_backend", "resolve_backend",
]
