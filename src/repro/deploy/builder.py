"""The fluent deployment builder — the package's front door.

    from repro.deploy import deploy

    dep = (deploy("memcached")
           .on("cluster", shards=8, policy=PrimaryReplica(1))
           .with_opt(2)
           .with_seed(7)
           .with_faults(plan)
           .start())
    dep.send_batch(frames)
    print(dep.metrics.snapshot(), dep.describe())

``deploy()`` accepts a registry name, a :class:`ServiceSpec`, or a
bare service factory (wrapped into an ad-hoc spec), so harnesses with
one-off service variants use the same API as registry services.  All
configuration happens before :meth:`Deployment.start`; after it the
deployment is live and ``send``/``send_batch``/``run`` feed a uniform
:class:`~repro.deploy.metrics.Metrics`.
"""

from repro.deploy.backends import resolve_backend
from repro.deploy.metrics import Metrics
from repro.deploy.spec import ServiceSpec
from repro.engine.openloop import ArrivalSpec, run_open_loop
from repro.errors import TargetError
from repro.harness.report import render_table
from repro.obs.analyze import analyze_trace
from repro.obs.series import TimeSeries
from repro.obs.slo import SloMonitor, SloSpec
from repro.obs.trace import TraceRecorder

VALID_OPT_LEVELS = (None, 0, 1, 2, 3)


class DeploymentConfig:
    """Resolved configuration handed to the backend adapter."""

    def __init__(self, seed=1, opt_level=None, fault_plan=None,
                 backend_kwargs=None, batch=None, level_budget=None):
        self.seed = seed
        self.opt_level = opt_level
        self.fault_plan = fault_plan
        self.backend_kwargs = dict(backend_kwargs or {})
        self.batch = batch
        self.level_budget = level_budget

    def get(self, key, default=None):
        return self.backend_kwargs.get(key, default)


class Deployment:
    """One service on one backend, configured fluently."""

    def __init__(self, spec):
        self.spec = spec
        self._backend_name = "cpu"
        self._backend_kwargs = {}
        self._opt_level = None
        self._level_budget = None
        self._batch = None
        self._seed = 1
        self._fault_plan = None
        self._arrivals = None
        self._profile = False
        self._series_window_ns = None
        self.backend = None
        self.injector = None
        self.metrics = Metrics()
        #: The last :class:`~repro.engine.openloop.OpenLoopReport`
        #: produced by :meth:`run_open_loop`.
        self.open_loop = None
        #: The :class:`~repro.obs.trace.TraceRecorder` installed by
        #: :meth:`with_trace` (``None`` = tracing off, zero cost).
        self.tracer = None
        #: The :class:`~repro.obs.series.TimeSeries` of the last
        #: :meth:`run_open_loop` when :meth:`with_timeseries` is on.
        self.timeseries = None
        self._slo_spec = None
        #: The :class:`~repro.obs.slo.SloMonitor` of the last
        #: :meth:`run_open_loop` when :meth:`with_slo` is on.
        self.slo = None
        #: The monitor's :class:`~repro.obs.slo.AlertLog` (same run).
        self.alert_log = None
        #: The :class:`~repro.serve.server.SocketServer` of the last
        #: :meth:`serve` call (``None`` until served).
        self.server = None

    # -- fluent configuration ----------------------------------------------

    def _require_not_started(self):
        if self.backend is not None:
            raise TargetError("deployment is already started")

    def on(self, backend_name, **backend_kwargs):
        """Choose the backend (cpu / fpga / multicore / cluster /
        netsim) and its scale knobs (``shards=``, ``cores=``,
        ``ports=``, ``policy=``, ...)."""
        self._require_not_started()
        resolve_backend(backend_name)        # fail fast on typos
        if not self.spec.supports(backend_name):
            raise TargetError(
                "service %r does not support backend %r (supported: %s)"
                % (self.spec.name, backend_name,
                   ", ".join(self.spec.backends)))
        self._backend_name = backend_name
        self._backend_kwargs = dict(backend_kwargs)
        return self

    def with_opt(self, opt_level, level_budget=None):
        """Kiwi middle-end level for compiled-kernel cycle counting.

        ``-O3`` adds the initiation-interval pipelining analysis: the
        backend's ``max_qps`` and open-loop service model then use the
        kernel's achieved II as the sustained service interval.
        *level_budget* overrides the timing budget (logic levels per
        cycle, default 48) that bounds -O2 state fusion and gates -O3
        pipelining — a tighter budget makes the middle-end *refuse*
        those transforms rather than mis-report timing."""
        self._require_not_started()
        if opt_level not in VALID_OPT_LEVELS:
            raise TargetError("opt_level must be one of %r"
                              % (VALID_OPT_LEVELS,))
        if level_budget is not None:
            level_budget = int(level_budget)
            if level_budget < 1:
                raise TargetError("level_budget must be >= 1 (or None)")
        self._opt_level = opt_level
        self._level_budget = level_budget
        return self

    def with_batch(self, batch):
        """Lockstep batch width N for the compiled engine: the
        backend's cycle models run up to N requests per dispatch
        through the SoA engine (:mod:`repro.engine.batch`), and
        :meth:`run_open_loop` servers drain their ingest queue up to N
        requests at a time.  Per-request cycle counts, replies, and
        queue/drop behaviour are identical to scalar execution — only
        the wall clock changes.  Needs :meth:`with_opt` to affect
        cycle measurement (without a compiled kernel only the
        open-loop drain is batched)."""
        self._require_not_started()
        if batch is not None:
            batch = int(batch)
            if batch < 1:
                raise TargetError("batch must be >= 1 (or None)")
        self._batch = batch
        return self

    def with_seed(self, seed):
        """The single source of randomness, threaded to every adapter
        (arbiter jitter, per-core/per-shard streams, fault links)."""
        self._require_not_started()
        self._seed = int(seed)
        return self

    def with_arrivals(self, process="poisson", qps=1_000_000.0,
                      capacity=None):
        """Open-loop arrival process for :meth:`run_open_loop`:
        ``"poisson"`` (seeded exponential gaps) or ``"uniform"``
        (fixed gaps) at *qps*, with per-server ingest queues of
        *capacity* (default: the NetFPGA pipeline's ingress FIFO
        depth, so model and pipeline agree on where tail-drop
        starts)."""
        self._require_not_started()
        if capacity is None:
            from repro.targets.pipeline import INPUT_QUEUE_DEPTH
            capacity = INPUT_QUEUE_DEPTH
        self._arrivals = ArrivalSpec(process, qps, capacity=capacity)
        return self

    def with_faults(self, plan):
        """A :class:`~repro.netsim.faults.FaultPlan` to wire at start
        (cluster: a window-pumped injector on ``.injector``; netsim:
        armed on the simulator's event loop)."""
        self._require_not_started()
        self._fault_plan = plan
        return self

    def with_trace(self, tracer=None):
        """Record a virtual-time trace: request spans from open-loop
        runs, fault/health/membership instant events from the backend,
        on one :class:`~repro.obs.trace.TraceRecorder` (provided or
        created here; on ``self.tracer``, export with
        ``tracer.write_json(path)``)."""
        self._require_not_started()
        self.tracer = tracer if tracer is not None \
            else TraceRecorder(process=self.spec.name)
        return self

    def with_timeseries(self, window_us=100.0):
        """Sample open-loop runs into a windowed time-series
        (qps, window p50/p99, live queue depths, drops) every
        *window_us* of virtual time; the series of the last run lands
        on ``self.timeseries``."""
        self._require_not_started()
        window_ns = int(window_us * 1000)
        if window_ns <= 0:
            raise TargetError("time-series window must be positive")
        self._series_window_ns = window_ns
        return self

    def with_slo(self, spec):
        """Judge every open-loop run against an
        :class:`~repro.obs.slo.SloSpec`: a streaming
        :class:`~repro.obs.slo.SloMonitor` consumes each closed
        time-series window (one is sampled at ``spec.window_us`` when
        :meth:`with_timeseries` is not already on), burn-rate alerts
        land in ``self.alert_log``, and — when :meth:`with_trace` is
        also on — every alert transition is mirrored as an instant
        event on the trace timeline."""
        self._require_not_started()
        if not isinstance(spec, SloSpec):
            raise TargetError("with_slo wants an SloSpec, got %r"
                              % (spec,))
        if not spec.objectives:
            raise TargetError("SLO spec %r declares no objectives"
                              % (spec.name,))
        self._slo_spec = spec
        return self

    def with_profile(self):
        """Attribute kernel cycles per FSM state: every compiled
        kernel the backend builds runs its counting twin, and
        :meth:`kernel_profile` renders the hotspot table.  Requires
        :meth:`with_opt` and a service with a flat kernel (start()
        fails fast otherwise)."""
        self._require_not_started()
        self._profile = True
        return self

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        """Instantiate the backend; returns the live deployment."""
        self._require_not_started()
        config = DeploymentConfig(seed=self._seed,
                                  opt_level=self._opt_level,
                                  fault_plan=self._fault_plan,
                                  backend_kwargs=self._backend_kwargs,
                                  batch=self._batch,
                                  level_budget=self._level_budget)
        backend_cls = resolve_backend(self._backend_name)
        self.backend = backend_cls(self.spec, config)
        self.backend.start()
        if self._profile:
            self.backend.enable_profiling()
        if self.tracer is not None:
            self.backend.attach_tracer(self.tracer)
        if self._fault_plan is not None:
            self.injector = self.backend.attach_faults(self._fault_plan)
            if self.tracer is not None:
                self.injector.tracer = self.tracer
        return self

    def inject_faults(self, plan):
        """Attach a fault plan to a *live* deployment — the post-start
        twin of :meth:`with_faults`, for plans that need the built
        target first (e.g. picking a victim from the actual shard
        ids).  Returns the injector (also on ``.injector``)."""
        self._require_started()
        self._fault_plan = plan
        self.injector = self.backend.attach_faults(plan)
        if self.tracer is not None:
            self.injector.tracer = self.tracer
        return self.injector

    def stop(self):
        """Release the backend (the deployment can be restarted)."""
        if self.backend is not None:
            self.backend.stop()
            self.backend = None
            self.injector = None

    @property
    def started(self):
        return self.backend is not None

    def _require_started(self):
        if self.backend is None:
            raise TargetError("deployment is not started "
                              "(call .start() first)")

    @property
    def target(self):
        """The underlying target object (for target-specific surface:
        shard membership, ring statistics, pipeline counters)."""
        self._require_started()
        return self.backend.target

    # -- dispatch -----------------------------------------------------------

    def send(self, frame):
        """One request; returns ``(emitted, latency_ns)`` uniformly."""
        self._require_started()
        emitted, latency_ns = self.backend.send(frame)
        for cycles in self.backend.pop_cycles():
            self.metrics.core_cycles.append(cycles)
        self.metrics.record(emitted, latency_ns)
        return emitted, latency_ns

    def send_batch(self, frames):
        """A request list; backends with a native batched path use it."""
        self._require_started()
        results = self.backend.send_batch(list(frames))
        for cycles in self.backend.pop_cycles():
            self.metrics.core_cycles.append(cycles)
        for emitted, latency_ns in results:
            self.metrics.record(emitted, latency_ns)
        self.metrics.record_batch()
        return results

    def run(self, frames=None, count=256, seed=None, **options):
        """Drive a workload (default: the spec's) through the backend;
        returns the populated :class:`Metrics`."""
        self._require_started()
        if frames is None:
            frames = self.spec.workload(
                count, seed if seed is not None else self._seed,
                **options)
        for frame in frames:
            self.send(frame.copy())
        return self.metrics

    def run_open_loop(self, duration_ms=1.0, frames=None, seed=None,
                      **options):
        """Drive the configured arrival process for *duration_ms* of
        virtual time; returns the
        :class:`~repro.engine.openloop.OpenLoopReport` (also kept on
        ``self.open_loop``).

        Arrivals are independent of completions (open loop), so queues
        form in front of the backend's service engines and the report's
        p50/p99 come from actual waiting — overload shows up as queue
        depth and tail-drops, not as a stretched closed-form average.
        Requests come from the spec's default workload unless *frames*
        is given.
        """
        self._require_started()
        if self._arrivals is None:
            raise TargetError(
                "no arrival process configured; call "
                ".with_arrivals(process, qps=...) before start()")
        duration_ns = int(duration_ms * 1e6)
        if duration_ns <= 0:
            raise TargetError("duration must be positive")
        seed = self._seed if seed is None else seed
        if frames is None:
            frames = (lambda count:
                      self.spec.workload(count, seed, **options)
                      if count else [])
        series = None
        window_ns = self._series_window_ns
        if window_ns is None and self._slo_spec is not None:
            window_ns = int(self._slo_spec.window_us * 1000)
        if window_ns is not None:
            series = TimeSeries(window_ns=window_ns)
            self.timeseries = series
        if self._slo_spec is not None:
            self.slo = SloMonitor(self._slo_spec, tracer=self.tracer)
            self.alert_log = self.slo.alert_log
            series.observers.append(self.slo.on_window)
        self.open_loop = run_open_loop(
            self.backend, self._arrivals, frames, duration_ns,
            seed=seed, tracer=self.tracer, series=series,
            injector=self.injector, batch=self._batch)
        return self.open_loop

    def serve(self, host="127.0.0.1", port=0, transport=None,
              capacity=None, batch=None):
        """Put the started deployment behind a real loopback socket.

        Binds the service's declared transport (see the registry
        ``serve=`` capability) on *host*:*port* (``port=0`` picks a
        free one) and returns the running
        :class:`~repro.serve.server.SocketServer` — drive it with
        ``python -m repro.serve.loadgen`` or any real client, then
        call ``server.stop()``.  The observability toggles compose
        exactly as for :meth:`run_open_loop`: :meth:`with_trace`
        records the same admit→queue→dispatch→reply span families,
        :meth:`with_timeseries` / :meth:`with_slo` run windowed
        metrics and burn-rate alerting over the socket traffic.
        """
        self._require_started()
        from repro.serve.server import SocketServer
        series = None
        window_ns = self._series_window_ns
        if window_ns is None and self._slo_spec is not None:
            window_ns = int(self._slo_spec.window_us * 1000)
        if window_ns is not None:
            series = TimeSeries(window_ns=window_ns)
            self.timeseries = series
        if self._slo_spec is not None:
            self.slo = SloMonitor(self._slo_spec, tracer=self.tracer)
            self.alert_log = self.slo.alert_log
            series.observers.append(self.slo.on_window)
        kwargs = {}
        if capacity is not None:
            kwargs["capacity"] = capacity
        if batch is not None:
            kwargs["batch"] = batch
        elif self._batch is not None:
            kwargs["batch"] = self._batch
        server = SocketServer(self, host=host, port=port,
                              transport=transport, series=series,
                              **kwargs)
        server.start()
        self.server = server
        return server

    def kernel_profile(self):
        """The merged per-FSM-state cycle profile across the backend's
        compiled kernels (:meth:`with_profile` must be on)."""
        self._require_started()
        return self.backend.kernel_profile()

    def analysis(self):
        """Post-run trace analytics
        (:class:`~repro.obs.analyze.TraceAnalysis`): per-request
        critical-path decomposition, p50-vs-p99 tail attribution, and
        — when :meth:`with_profile` is on — the FSM-state flamegraph.
        Needs :meth:`with_trace` plus a traced :meth:`run_open_loop`."""
        if self.tracer is None:
            raise TargetError(
                "nothing to analyze: record a trace first "
                "(.with_trace() before start, then run_open_loop)")
        profile = None
        if self._profile and self.backend is not None:
            profile = self.backend.kernel_profile()
        return analyze_trace(self.tracer, profile=profile)

    # -- models -------------------------------------------------------------

    def max_qps(self, read_frame, write_frame=None, write_ratio=0.0):
        """Model-based sustainable throughput for a read/write mix."""
        self._require_started()
        return self.backend.max_qps(read_frame, write_frame, write_ratio)

    def stats(self):
        """Uniform metrics snapshot + backend-specific counters."""
        self._require_started()
        merged = self.metrics.snapshot()
        merged["backend"] = self._backend_name
        merged["service"] = self.spec.name
        merged.update(self.backend.stats())
        return merged

    # -- description --------------------------------------------------------

    def describe(self):
        """An aligned table of what this deployment actually runs —
        harness logs print it so chaos/scaling runs are self-naming."""
        fault_plan = self._fault_plan
        rows = [
            ["service", self.spec.name],
            ["backend", self._backend_name],
            ["scale", self.backend.describe_scale()
             if self.backend else self._static_scale()],
            ["opt level", self._describe_opt()],
            ["seed", str(self._seed)],
            ["fault plan", "%d timed event(s)" % len(fault_plan.events)
             if fault_plan is not None else "none"],
            ["state", "started" if self.started else "configured"],
        ]
        if self._batch is not None:
            rows.insert(4, ["batch", "%d-wide lockstep" % self._batch])
        policy = self._backend_kwargs.get("policy")
        if policy is not None:
            rows.insert(3, ["policy", type(policy).__name__])
        if self._arrivals is not None:
            rows.insert(-1, ["arrivals", "%s @ %.0f qps"
                             % (self._arrivals.process,
                                self._arrivals.qps)])
        if self._slo_spec is not None:
            rows.insert(-1, ["slo", "%s (%d objective(s))"
                             % (self._slo_spec.name,
                                len(self._slo_spec.objectives))])
        return render_table(["Parameter", "Value"], rows,
                            title="Deployment: %s on %s"
                                  % (self.spec.name, self._backend_name))

    def _describe_opt(self):
        """What actually runs, not just what was asked for: a started
        backend may not honour the requested level — the service has
        no flat kernel, or the backend (cpu, netsim) has no compiled-
        kernel cycle model at all."""
        if self._opt_level is None:
            return "behavioural"
        if self.backend is not None and self.backend.effective_opt \
                is None:
            return "-O%d (not applied: behavioural)" % self._opt_level
        return "-O%d" % self._opt_level

    def _static_scale(self):
        kwargs = self._backend_kwargs
        for key, unit in (("shards", "shards"), ("cores", "cores"),
                          ("ports", "ports")):
            if key in kwargs:
                return "%d %s" % (kwargs[key], unit)
        return "default"

    def __repr__(self):
        bits = ["%s on %s" % (self.spec.name, self._backend_name)]
        scale = self._static_scale()
        if scale != "default":
            bits.append(scale)
        if self._opt_level is not None:
            bits.append("-O%d" % self._opt_level)
        bits.append("seed=%d" % self._seed)
        if self._fault_plan is not None:
            bits.append("faults=%d" % len(self._fault_plan.events))
        bits.append("started" if self.started else "configured")
        return "<Deployment %s>" % ", ".join(bits)


def deploy(service, name=None):
    """Start building a deployment.

    *service* is a registry name (``"memcached"``), a
    :class:`ServiceSpec`, or a bare service factory (wrapped into an
    ad-hoc spec named *name*).
    """
    if isinstance(service, ServiceSpec):
        return Deployment(service)
    if isinstance(service, str):
        from repro.services.catalog import registry
        specs = registry()
        if service not in specs:
            raise TargetError("unknown service %r (registry has: %s)"
                              % (service, ", ".join(sorted(specs))))
        return Deployment(specs[service])
    if callable(service):
        return Deployment(ServiceSpec.adhoc(
            name or getattr(service, "__name__", "service"), service))
    raise TargetError("deploy() wants a registry name, a ServiceSpec, "
                      "or a service factory; got %r" % (service,))
