"""Uniform per-deployment observability.

Every backend adapter feeds the same :class:`Metrics` object through
the same code path (:meth:`Metrics.record`, called once per request by
the deployment), so request/reply/drop accounting, the latency
histogram, and the core-cycle histogram mean the same thing on every
backend — replacing the ad-hoc per-harness counters that used to be
reinvented next to every experiment loop.

Latency is only meaningful where the backend has a timing model (fpga,
multicore, cluster, netsim); the CPU target's software semantics record
``None`` latencies, which simply don't enter the histogram.  The shapes
stay consistent: every snapshot has every key, empty where a backend
has nothing to report.
"""

from repro.net.dag import LatencyCapture
from repro.obs.metrics import MetricsRegistry


class Metrics:
    """Request/reply/drop counters + latency and cycle histograms.

    Since the observability layer landed, this class is a *view* over a
    :class:`~repro.obs.metrics.MetricsRegistry`: the counters live as
    labelled registry instruments and each recorded latency also feeds
    a registry histogram, so ``metrics.registry.snapshot()`` shows the
    same numbers as :meth:`snapshot` in Prometheus-ish text form and
    deployment metrics can be aggregated with any other registry user.
    The raw-sample :class:`~repro.net.dag.LatencyCapture` stays — exact
    percentiles beat bucketed ones when all samples fit in memory.
    """

    def __init__(self, registry=None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._requests = self.registry.counter("requests")
        self._replies = self.registry.counter("replies")
        self._drops = self.registry.counter("drops")
        self._batches = self.registry.counter("batches")
        self._latency_us = self.registry.histogram("latency_us")
        self.latency = LatencyCapture()
        self.core_cycles = []
        self.elapsed_ns = 0.0          # sum of recorded latencies

    # -- counter views (read like the plain ints they once were) ------------

    @property
    def requests(self):
        return self._requests.value

    @property
    def replies(self):
        return self._replies.value

    @property
    def drops(self):
        return self._drops.value

    @property
    def batches(self):
        return self._batches.value

    # -- recording (one path for every backend) -----------------------------

    def record(self, emitted, latency_ns, core_cycles=None):
        """Account one request's outcome (called by the deployment)."""
        self._requests.inc()
        if emitted:
            self._replies.inc(len(emitted))
        else:
            self._drops.inc()
        if latency_ns is not None:
            self.latency.record(latency_ns)
            self._latency_us.observe(latency_ns / 1000.0)
            self.elapsed_ns += latency_ns
        if core_cycles is not None:
            self.core_cycles.append(core_cycles)

    def record_batch(self):
        self._batches.inc()

    # -- derived ------------------------------------------------------------

    @property
    def reply_rate(self):
        """Fraction of requests that produced at least one reply."""
        if self.requests == 0:
            return 0.0
        return 1.0 - self.drops / self.requests

    def average_latency_us(self):
        return self.latency.average_us() if self.latency.count else None

    def p99_latency_us(self):
        return self.latency.p99_us() if self.latency.count else None

    def p999_latency_us(self):
        """The 99.9th percentile — linear interpolation over the raw
        samples (never bucket-bound snapping), same as p99."""
        return self.latency.percentile_us(99.9) if self.latency.count \
            else None

    def average_core_cycles(self):
        if not self.core_cycles:
            return None
        return sum(self.core_cycles) / len(self.core_cycles)

    def qps(self):
        """Serial-replay throughput: requests over summed latency
        (a lower bound — the paper's targets pipeline better than
        this; the model-based ceiling is ``Deployment.max_qps``)."""
        if self.elapsed_ns <= 0:
            return None
        return self.requests * 1e9 / self.elapsed_ns

    def latency_histogram(self, bins=8):
        """``[(low_us, high_us, count)]`` over the recorded samples."""
        return _histogram([s / 1000.0 for s in self.latency.samples_ns],
                          bins)

    def cycle_histogram(self, bins=8):
        """``[(low, high, count)]`` over recorded core-cycle counts."""
        return _histogram(self.core_cycles, bins)

    def snapshot(self):
        """A dict with a consistent shape on every backend."""
        return {
            "requests": self.requests,
            "replies": self.replies,
            "drops": self.drops,
            "batches": self.batches,
            "reply_rate": self.reply_rate,
            "avg_latency_us": self.average_latency_us(),
            "p99_latency_us": self.p99_latency_us(),
            "p999_latency_us": self.p999_latency_us(),
            "avg_core_cycles": self.average_core_cycles(),
            "qps": self.qps(),
            "latency_samples": self.latency.count,
            "cycle_samples": len(self.core_cycles),
        }

    def __repr__(self):
        return ("Metrics(requests=%d, replies=%d, drops=%d, "
                "latency_samples=%d)" % (self.requests, self.replies,
                                         self.drops, self.latency.count))


def _histogram(samples, bins):
    if not samples:
        return []
    low, high = min(samples), max(samples)
    if high == low:
        return [(low, high, len(samples))]
    width = (high - low) / bins
    counts = [0] * bins
    for sample in samples:
        index = min(int((sample - low) / width), bins - 1)
        counts[index] += 1
    return [(low + i * width, low + (i + 1) * width, counts[i])
            for i in range(bins)]
