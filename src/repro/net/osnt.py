"""OSNT stand-in: trace replay and maximum-throughput search (§5.2).

"OSNT replays real traffic traces while modifying traffic rate to find
the maximum throughput (e.g. queries per second)."  The same method is
used here: offer a request stream at increasing rates and binary-search
the highest rate the device sustains without loss.
"""

from repro.errors import TargetError


class OsntTrafficGenerator:
    """Rate search against any device exposing a service-rate limit.

    The device model is a callable ``service_rate_qps(frame)`` (for
    model-based devices) or an object with ``max_qps``; the generator
    performs the search the physical OSNT performed empirically.
    """

    def __init__(self, loss_tolerance=0.0, resolution_qps=1000.0):
        self.loss_tolerance = loss_tolerance
        self.resolution_qps = resolution_qps

    def find_max_qps(self, offered_probe, low_qps=1000.0,
                     high_qps=100_000_000.0):
        """Binary-search the max lossless rate.

        *offered_probe(rate_qps)* must return the fraction of requests
        lost at that offered rate.
        """
        if offered_probe(low_qps) > self.loss_tolerance:
            raise TargetError("device loses traffic even at %g qps"
                              % low_qps)
        while high_qps - low_qps > self.resolution_qps:
            mid = (low_qps + high_qps) / 2.0
            if offered_probe(mid) > self.loss_tolerance:
                high_qps = mid
            else:
                low_qps = mid
        return low_qps

    def probe_for_service_rate(self, sustainable_qps):
        """Build an ideal loss probe for a device with a known service
        rate (an M/D/1 saturation test: loss appears past the rate)."""
        def probe(offered_qps):
            if offered_qps <= sustainable_qps:
                return 0.0
            return 1.0 - sustainable_qps / offered_qps
        return probe

    def measure(self, device, frame):
        """Full OSNT methodology against a target with ``max_qps``."""
        sustainable = device.max_qps(frame) \
            if _wants_frame(device.max_qps) else device.max_qps()
        probe = self.probe_for_service_rate(sustainable)
        return self.find_max_qps(probe, high_qps=max(2e6, sustainable * 4))


def _wants_frame(fn):
    try:
        from inspect import signature
        return len(signature(fn).parameters) >= 1
    except (TypeError, ValueError):
        return True


class TraceReplayer:
    """Replay a list of frames at a nominal rate (functional tests)."""

    def __init__(self, frames, rate_pps=1_000_000):
        self.frames = list(frames)
        self.rate_pps = rate_pps

    def replay_into(self, device_send):
        """Send every frame; returns per-frame results with timestamps."""
        interval_ns = 1e9 / self.rate_pps
        results = []
        for index, frame in enumerate(self.frames):
            stamped = frame.copy()
            stamped.timestamp_ns = int(index * interval_ns)
            results.append(device_send(stamped))
        return results
