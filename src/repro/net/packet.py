"""Frames and address helpers.

A :class:`Frame` is a mutable Ethernet frame plus the sideband metadata
the NetFPGA datapath carries next to ``tdata``: the source port it
arrived on and the one-hot destination-port bitmap chosen by the logical
core (``Set_Output_Port`` / ``Broadcast`` in Fig. 6 manipulate exactly
this metadata).
"""

from repro.errors import ParseError

MIN_FRAME_BYTES = 60        # 64 on the wire minus the 4-byte FCS
MAX_FRAME_BYTES = 1514


def mac_to_int(text):
    """``"aa:bb:cc:dd:ee:ff"`` → 48-bit integer."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ParseError("bad MAC address %r" % text)
    try:
        value = 0
        for part in parts:
            byte = int(part, 16)
            if not 0 <= byte <= 0xFF:
                raise ValueError
            value = (value << 8) | byte
        return value
    except ValueError:
        raise ParseError("bad MAC address %r" % text)


def int_to_mac(value):
    """48-bit integer → ``"aa:bb:cc:dd:ee:ff"``."""
    return ":".join("%02x" % ((value >> shift) & 0xFF)
                    for shift in range(40, -8, -8))


def ip_to_int(text):
    """``"10.0.0.1"`` → 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ParseError("bad IPv4 address %r" % text)
    try:
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError
            value = (value << 8) | octet
        return value
    except ValueError:
        raise ParseError("bad IPv4 address %r" % text)


def int_to_ip(value):
    """32-bit integer → dotted quad."""
    return ".".join(str((value >> shift) & 0xFF)
                    for shift in range(24, -8, -8))


class Frame:
    """An Ethernet frame plus dataplane metadata.

    ``data`` is the frame bytes (a :class:`bytearray`, shared with the
    protocol wrappers); ``src_port`` is the physical port of arrival;
    ``dst_ports`` is the one-hot output bitmap (bit *i* = send on port
    *i*); ``timestamp_ns`` carries the arrival time for measurement.
    """

    __slots__ = ("data", "src_port", "dst_ports", "timestamp_ns")

    def __init__(self, data=b"", src_port=0, dst_ports=0, timestamp_ns=0):
        self.data = bytearray(data)
        self.src_port = src_port
        self.dst_ports = dst_ports
        self.timestamp_ns = timestamp_ns

    def copy(self):
        return Frame(bytes(self.data), self.src_port, self.dst_ports,
                     self.timestamp_ns)

    def pad(self, minimum=MIN_FRAME_BYTES):
        """Pad with zero bytes up to the Ethernet minimum."""
        if len(self.data) < minimum:
            self.data.extend(b"\x00" * (minimum - len(self.data)))
        return self

    def output_ports(self, num_ports=4):
        """Decode ``dst_ports`` into a list of port numbers."""
        return [p for p in range(num_ports) if self.dst_ports & (1 << p)]

    def set_output(self, port):
        self.dst_ports = 1 << port

    def broadcast(self, num_ports=4, exclude_source=True):
        mask = (1 << num_ports) - 1
        if exclude_source:
            mask &= ~(1 << self.src_port)
        self.dst_ports = mask

    def drop(self):
        self.dst_ports = 0

    @property
    def dropped(self):
        return self.dst_ports == 0

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        return "Frame(%d bytes, src_port=%d, dst_ports=0x%x)" % (
            len(self.data), self.src_port, self.dst_ports)
