"""Request-stream generators for the evaluation workloads (§5.2, §5.4).

* :func:`memaslap_mix` — the memaslap benchmark configuration: 90% GET /
  10% SET with random keys (the paper's Memcached workload).
* :func:`dns_query_stream` — uniformly random queries over a name table
  (with a configurable miss ratio).
* :func:`ping_flood` / :func:`tcp_syn_stream` — the latency workloads,
  100K packets by default as in §5.4.
"""

import random

from repro.core.protocols.dns import build_dns_query
from repro.core.protocols.icmp import build_icmp_echo_request
from repro.core.protocols.memcached import (
    build_ascii_get, build_ascii_set, build_binary_get, build_binary_set,
    build_udp_frame_header,
)
from repro.core.protocols.tcp import TCPFlags, build_tcp
from repro.core.protocols.udp import build_udp
from repro.net.packet import Frame

DEFAULT_MACS = (0x02_00_00_00_00_01, 0x02_00_00_00_00_AA)


def ping_flood(dst_ip, src_ip, count=100_000, payload=b"x" * 26,
               macs=DEFAULT_MACS, src_port=0):
    """ICMP echo requests (default payload sizes a 64-byte frame)."""
    dst_mac, src_mac = macs
    for sequence in range(count):
        frame = Frame(build_icmp_echo_request(
            dst_mac, src_mac, src_ip, dst_ip, identifier=1,
            sequence=sequence & 0xFFFF, payload=payload),
            src_port=src_port)
        yield frame.pad()


def tcp_syn_stream(dst_ip, src_ip, dst_port=7, count=100_000,
                   macs=DEFAULT_MACS, src_port=0, seed=7):
    """SYN probes from random ephemeral ports."""
    dst_mac, src_mac = macs
    rng = random.Random(seed)
    for index in range(count):
        frame = Frame(build_tcp(
            dst_mac, src_mac, src_ip, dst_ip,
            rng.randint(32768, 60999), dst_port, TCPFlags.SYN,
            seq=index & 0xFFFFFFFF), src_port=src_port)
        yield frame.pad()


def dns_query_stream(dst_ip, src_ip, names, count=100_000, miss_ratio=0.0,
                     macs=DEFAULT_MACS, src_port=0, seed=11):
    """A-record queries drawn uniformly from *names*."""
    dst_mac, src_mac = macs
    rng = random.Random(seed)
    names = list(names)
    for index in range(count):
        if miss_ratio and rng.random() < miss_ratio:
            name = "miss%d.invalid" % rng.randint(0, 1 << 20)
        else:
            name = rng.choice(names)
        query = build_dns_query(index & 0xFFFF, name)
        frame = Frame(build_udp(dst_mac, src_mac, src_ip, dst_ip,
                                rng.randint(32768, 60999), 53, query),
                      src_port=src_port)
        yield frame.pad()


def memaslap_mix(dst_ip, src_ip, count=100_000, get_ratio=0.9,
                 key_bytes=6, value_bytes=8, protocol="ascii",
                 key_space=1024, macs=DEFAULT_MACS, src_port=0, seed=13):
    """The memaslap workload: *get_ratio* GETs, the rest SETs.

    Keys are random (fixed width); values are deterministic functions of
    the key so responses can be validated.
    """
    dst_mac, src_mac = macs
    rng = random.Random(seed)
    for index in range(count):
        key = ("k%0*d" % (key_bytes - 1,
                          rng.randint(0, key_space - 1)))[:key_bytes]
        key = key.encode("ascii")
        value = _value_for(key, value_bytes)
        if rng.random() < get_ratio:
            body = build_ascii_get(key) if protocol == "ascii" \
                else build_binary_get(key, opaque=index & 0xFFFFFFFF)
        else:
            body = build_ascii_set(key, value) if protocol == "ascii" \
                else build_binary_set(key, value,
                                      opaque=index & 0xFFFFFFFF)
        payload = build_udp_frame_header(index & 0xFFFF) + body
        frame = Frame(build_udp(dst_mac, src_mac, src_ip, dst_ip,
                                rng.randint(32768, 60999), 11211, payload),
                      src_port=src_port)
        yield frame.pad()


def _value_for(key, value_bytes):
    """Deterministic value derived from the key (for validation)."""
    seed = sum(key) & 0xFF
    return bytes((seed + i) & 0xFF for i in range(value_bytes)) \
        .replace(b"\r", b"\x00").replace(b"\n", b"\x00")
