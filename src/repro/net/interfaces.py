"""Virtual network interfaces (tap-device stand-ins).

"Layers of abstraction between the .NET runtime and the OS provide
virtual/physical network interfaces.  By using virtual interfaces,
developers can test network functions in a simulator." (§3.3)
"""

from repro.errors import NetSimError


class VirtualInterface:
    """A bidirectional queue pair: RX into the service, TX out of it."""

    def __init__(self, name):
        self.name = name
        self._rx = []
        self._tx = []
        self.peer = None
        self.rx_count = 0
        self.tx_count = 0

    def connect(self, peer):
        """Wire this interface to another (veth-pair style)."""
        if not isinstance(peer, VirtualInterface):
            raise NetSimError("peer must be a VirtualInterface")
        self.peer = peer
        peer.peer = self

    def inject(self, frame):
        """Deliver a frame into this interface's RX queue."""
        self._rx.append(frame)
        self.rx_count += 1

    def transmit(self, frame):
        """Send a frame out: to the connected peer, else onto TX."""
        self.tx_count += 1
        if self.peer is not None:
            self.peer.inject(frame)
        else:
            self._tx.append(frame)

    def drain_rx(self):
        frames, self._rx = self._rx, []
        return frames

    def drain_tx(self):
        frames, self._tx = self._tx, []
        return frames

    def __repr__(self):
        return "VirtualInterface(%s, rx=%d, tx=%d)" % (
            self.name, self.rx_count, self.tx_count)
