"""DAG-card stand-in: baseline-corrected DUT-only latency capture (§5.2).

"All traffic is captured by the DAG card and used to measure the latency
of the device-under-test (DUT) alone.  The latency of the setup itself
is measured first and deducted from all subsequent measurements."
"""

import math

from repro.errors import HostModelError


class LatencyCapture:
    """Collects per-request latencies and reports the Table 4 columns."""

    def __init__(self, setup_baseline_ns=0.0):
        self.setup_baseline_ns = setup_baseline_ns
        self.samples_ns = []

    def calibrate(self, baseline_samples_ns):
        """Measure the setup alone; its median is deducted afterwards."""
        if not baseline_samples_ns:
            raise HostModelError("baseline needs at least one sample")
        self.setup_baseline_ns = _percentile(sorted(baseline_samples_ns),
                                             50.0)

    def record(self, latency_ns):
        self.samples_ns.append(latency_ns - self.setup_baseline_ns)

    def record_us(self, latency_us):
        self.record(latency_us * 1000.0)

    @property
    def count(self):
        return len(self.samples_ns)

    def average_us(self):
        self._need_samples()
        return sum(self.samples_ns) / len(self.samples_ns) / 1000.0

    def percentile_us(self, pct):
        self._need_samples()
        return _percentile(sorted(self.samples_ns), pct) / 1000.0

    def median_us(self):
        return self.percentile_us(50.0)

    def p99_us(self):
        return self.percentile_us(99.0)

    def tail_to_average(self):
        """The paper's predictability metric (1.02–1.04 for Emu,
        1.09–2.98 for hosts)."""
        return self.p99_us() / self.average_us()

    def stddev_us(self):
        self._need_samples()
        mean = sum(self.samples_ns) / len(self.samples_ns)
        var = sum((s - mean) ** 2 for s in self.samples_ns) / \
            len(self.samples_ns)
        return math.sqrt(var) / 1000.0

    def _need_samples(self):
        if not self.samples_ns:
            raise HostModelError("no latency samples recorded")


def _percentile(sorted_values, pct):
    """Linear-interpolation percentile over pre-sorted data."""
    if not sorted_values:
        raise HostModelError("empty sample set")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (pct / 100.0) * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] * (1 - fraction) + \
        sorted_values[high] * fraction
