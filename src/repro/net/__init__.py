"""Network substrate: frames, virtual interfaces, measurement equipment.

This package provides what surrounded the NetFPGA in the paper's testbed:

* :mod:`repro.net.packet`      — Ethernet frames + dataplane metadata.
* :mod:`repro.net.interfaces`  — virtual NICs / tap-style ports.
* :mod:`repro.net.osnt`        — Open Source Network Tester stand-in:
  trace replay and max-throughput rate search (§5.2).
* :mod:`repro.net.dag`         — Endace DAG stand-in: baseline-corrected
  DUT-only latency capture (§5.2).
* :mod:`repro.net.workloads`   — request generators (memaslap-style
  90/10 GET/SET mix, DNS query streams, ping floods).
"""

from repro.net.packet import Frame, mac_to_int, int_to_mac, ip_to_int, \
    int_to_ip

__all__ = ["Frame", "mac_to_int", "int_to_mac", "ip_to_int", "int_to_ip"]
