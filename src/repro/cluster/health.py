"""Failure detection for the self-healing cluster layer.

Two detectors, matched to the two ways the cluster observes a shard:

* :class:`PhiAccrualDetector` — the φ-accrual detector (Hayashibara et
  al.) over heartbeat inter-arrival times, used where there *is* a
  clock: the :class:`~repro.cluster.balancer.ShardBalancerService`
  treats every reply a shard sends as a heartbeat and computes, at each
  health check, how implausible the current silence is.
* :class:`MissCountDetector` — a timeout-style detector for
  request/response probing without a clock: *k* consecutive unanswered
  requests mark the peer dead.  The
  :class:`~repro.cluster.target.ClusterTarget` uses one per shard, so a
  crashed shard is evicted after a bounded number of timed-out
  requests, never on a single loss.

Both are deterministic: fed the same observation sequence they make the
same call, which is what lets chaos runs assert exact behaviour.
"""

import math
from collections import deque

from repro.errors import ClusterError

#: φ above which a silent peer is declared dead.  φ = 8 means the
#: observed silence had odds of about 10^-8 under the heartbeat
#: history — the classic production setting.
DEFAULT_PHI_THRESHOLD = 8.0


class PhiAccrualDetector:
    """φ-accrual failure detection over heartbeat arrivals.

    Inter-arrival times are modelled exponentially with the windowed
    mean interval; then ``φ(now) = -log10 P(silence >= now - last)``
    grows linearly with silence, scaled by how chatty the peer
    normally is.  No heartbeat history → φ stays 0 (never suspect a
    peer that was never alive to begin with).
    """

    def __init__(self, threshold=DEFAULT_PHI_THRESHOLD, window=32,
                 min_interval_ns=1.0, bootstrap_interval_ns=1_000_000.0):
        if threshold <= 0:
            raise ClusterError("phi threshold must be positive")
        if window < 1:
            raise ClusterError("need a positive heartbeat window")
        if bootstrap_interval_ns <= 0:
            raise ClusterError("bootstrap interval must be positive")
        self.threshold = threshold
        self.min_interval_ns = min_interval_ns
        #: Assumed mean interval until two heartbeats have been seen —
        #: the classic φ-accrual bootstrap.  Without it a peer that
        #: spoke exactly once and died could never be suspected (no
        #: interval history → no model → φ pinned to 0).
        self.bootstrap_interval_ns = bootstrap_interval_ns
        self._intervals = deque(maxlen=window)
        self._last_ns = None

    def heartbeat(self, now_ns):
        """Record a sign of life at *now_ns*."""
        if self._last_ns is not None and now_ns > self._last_ns:
            self._intervals.append(now_ns - self._last_ns)
        self._last_ns = now_ns

    @property
    def heartbeats_seen(self):
        return self._last_ns is not None

    @property
    def last_heartbeat_ns(self):
        return self._last_ns

    def mean_interval_ns(self):
        if self._last_ns is None:
            return None
        if not self._intervals:
            return self.bootstrap_interval_ns
        return max(sum(self._intervals) / len(self._intervals),
                   self.min_interval_ns)

    def phi(self, now_ns):
        """Suspicion level at *now_ns* (0 = just heard from it)."""
        mean = self.mean_interval_ns()
        if mean is None:
            return 0.0
        elapsed = max(0.0, now_ns - self._last_ns)
        # -log10(exp(-t/mean)) = (t/mean) * log10(e)
        return (elapsed / mean) * math.log10(math.e)

    def is_suspect(self, now_ns):
        return self.phi(now_ns) >= self.threshold

    def reset(self):
        """Forget history (a peer that rejoined starts fresh)."""
        self._intervals.clear()
        self._last_ns = None


class MissCountDetector:
    """Timeout-style detection: *k* consecutive misses = dead.

    Clockless: callers report each probe outcome and the detector
    declares the peer suspect after ``suspect_after`` consecutive
    misses.  A single success wipes the miss streak.
    """

    def __init__(self, suspect_after=3):
        if suspect_after < 1:
            raise ClusterError("suspect_after must be >= 1")
        self.suspect_after = suspect_after
        self.misses = 0
        self.probes = 0

    def record_ok(self):
        self.probes += 1
        self.misses = 0

    def record_miss(self):
        """Report an unanswered probe; returns True when the streak
        crosses the threshold (the caller should evict)."""
        self.probes += 1
        self.misses += 1
        return self.is_suspect()

    def is_suspect(self):
        return self.misses >= self.suspect_after

    def reset(self):
        self.misses = 0
