"""Consistent-hash shard ring with virtual nodes.

Scaling *out* (many devices) rather than *up* (more cores in one
device, §5.4) needs a stable key → shard mapping that survives shard
arrival and departure: a consistent-hash ring.  Each shard owns many
*virtual nodes* — pseudo-random positions on a 32-bit circle — and a
key belongs to the first virtual node clockwise from its own position.
Removing a shard only reassigns the keys it owned (~1/N of the space);
every other key keeps its shard, which is what makes live rebalancing
cheap.

Positions come from the same Pearson construction the balancer uses in
the dataplane (:mod:`repro.ip.pearson`), finished with a 32-bit
avalanche mix: the raw multi-lane Pearson digest correlates across
inputs that differ in one byte (exactly what ``shard3#41`` vs
``shard3#42`` labels do), and the mix restores uniform vnode spread.
"""

import bisect

from repro.errors import ClusterError
from repro.ip.pearson import pearson_hash_wide

#: Default virtual nodes per shard.  Chosen empirically: keeps the
#: max/mean shard-load imbalance under ~1.3 for 4-16 shards on the
#: memaslap key distribution (see tests/cluster/test_ring.py).
DEFAULT_VNODES = 192

RING_BITS = 32
RING_SIZE = 1 << RING_BITS


def _mix32(value):
    """32-bit avalanche finisher (MurmurHash3-style)."""
    value &= 0xFFFFFFFF
    value ^= value >> 16
    value = (value * 0x85EBCA6B) & 0xFFFFFFFF
    value ^= value >> 13
    value = (value * 0xC2B2AE35) & 0xFFFFFFFF
    value ^= value >> 16
    return value


def ring_position(data):
    """Map bytes (or str) to a position on the 32-bit hash circle."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return _mix32(pearson_hash_wide(data, width=RING_BITS))


def max_over_mean(counts):
    """Max/mean load imbalance over per-shard *counts* (1.0 = even).

    The shared imbalance metric for the ring, the cluster target, and
    the balancer's dispatch counters.
    """
    counts = list(counts)
    if not counts:
        raise ClusterError("no shards to measure imbalance over")
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 1.0
    return max(counts) / mean


class RemapStats:
    """What a ring change did to a sample of keys."""

    def __init__(self, moved, total):
        self.moved = moved
        self.total = total

    @property
    def fraction(self):
        return self.moved / self.total if self.total else 0.0

    def __repr__(self):
        return "RemapStats(moved=%d/%d, %.1f%%)" % (
            self.moved, self.total, 100.0 * self.fraction)


class HashRing:
    """Consistent-hash ring mapping keys to shard ids.

    Shard ids are arbitrary hashable labels (strings or ints); keys are
    bytes.  ``vnodes`` virtual nodes per shard smooth the load.
    """

    def __init__(self, shards=(), vnodes=DEFAULT_VNODES):
        if vnodes < 1:
            raise ClusterError("need at least one virtual node per shard")
        self.vnodes = vnodes
        self._ring = []            # sorted [(position, shard_id)]
        self._positions = []       # positions only (for bisect)
        self._shards = set()
        for shard in shards:
            self.add_shard(shard)

    # -- membership ---------------------------------------------------------

    def add_shard(self, shard_id):
        """Insert a shard's virtual nodes into the ring."""
        if shard_id in self._shards:
            raise ClusterError("shard %r already in ring" % (shard_id,))
        self._shards.add(shard_id)
        for index in range(self.vnodes):
            position = ring_position("%s#%d" % (shard_id, index))
            entry = (position, shard_id)
            at = bisect.bisect_left(self._ring, entry)
            self._ring.insert(at, entry)
            self._positions.insert(at, position)

    def remove_shard(self, shard_id):
        """Remove a shard; its keys fall to the clockwise successors."""
        if shard_id not in self._shards:
            raise ClusterError("shard %r not in ring" % (shard_id,))
        self._shards.discard(shard_id)
        kept = [(pos, sid) for pos, sid in self._ring if sid != shard_id]
        self._ring = kept
        self._positions = [pos for pos, _ in kept]

    @property
    def shards(self):
        return sorted(self._shards, key=str)

    def __len__(self):
        return len(self._shards)

    def __contains__(self, shard_id):
        return shard_id in self._shards

    # -- lookup -------------------------------------------------------------

    def lookup(self, key):
        """Shard id owning *key* (bytes or str)."""
        if not self._ring:
            raise ClusterError("ring is empty")
        index = bisect.bisect_right(self._positions, ring_position(key))
        if index == len(self._ring):
            index = 0              # wrap past the top of the circle
        return self._ring[index][1]

    def assignments(self, keys):
        """``{key: shard_id}`` for every key in *keys*."""
        return {key: self.lookup(key) for key in keys}

    # -- statistics ---------------------------------------------------------

    def load_counts(self, keys):
        """Keys owned per shard (shards owning none included as 0)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def imbalance(self, keys):
        """Max/mean shard load over *keys* (1.0 = perfectly even)."""
        return max_over_mean(self.load_counts(keys).values())

    def remap_stats(self, other, keys):
        """How many of *keys* map differently on ring *other*."""
        keys = list(keys)
        moved = sum(1 for key in keys
                    if self.lookup(key) != other.lookup(key))
        return RemapStats(moved, len(keys))
