"""Scale-out clustering: shards, replication, and in-dataplane balancing.

§5.4 scales one Emu device to four cores; this package scales the same
services across *many* devices.  The pieces:

* :mod:`repro.cluster.ring`        — consistent-hash ring (virtual
  nodes, shard add/remove, remap statistics).
* :mod:`repro.cluster.health`      — failure detectors (φ-accrual and
  miss-count) behind the self-healing paths.
* :mod:`repro.cluster.replication` — pluggable write-replication
  policies plus per-service write classifiers.
* :mod:`repro.cluster.balancer`    — the L4 load balancer, itself an
  :class:`~repro.services.base.EmuService`.
* :mod:`repro.cluster.target`      — :class:`ClusterTarget`, the
  many-device analogue of ``MultiCoreTarget`` (batched dispatch,
  aggregate throughput model).
* :mod:`repro.cluster.topology`    — star and leaf-spine builders over
  :mod:`repro.netsim` for latency-realistic runs.

Any existing :class:`~repro.services.base.EmuService` (memcached,
kvcache, DNS, NAT) drops in unchanged: the cluster layer only needs a
service factory, a flow-key extractor, and optionally an ``is_write``
classifier.
"""

from repro.cluster.balancer import (
    ShardBalancerService, five_tuple_key, flow_key, memcached_key,
)
from repro.cluster.health import (
    MissCountDetector, PhiAccrualDetector,
)
from repro.cluster.replication import (
    NoReplication, PrimaryReplica, ReadOneWriteAll, ReplicationPolicy,
    memcached_is_write,
)
from repro.cluster.ring import HashRing, RemapStats, ring_position
from repro.cluster.target import REQUEST_TIMEOUT_NS, ClusterTarget
from repro.cluster.topology import (
    ClusterNetwork, build_leaf_spine, build_star,
)

__all__ = [
    "ClusterNetwork", "ClusterTarget", "HashRing", "MissCountDetector",
    "NoReplication", "PhiAccrualDetector", "PrimaryReplica",
    "REQUEST_TIMEOUT_NS", "ReadOneWriteAll", "RemapStats",
    "ReplicationPolicy", "ShardBalancerService", "build_leaf_spine",
    "build_star", "five_tuple_key", "flow_key", "memcached_is_write",
    "memcached_key", "ring_position",
]
