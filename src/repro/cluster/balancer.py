"""The shard balancer: an L4 load balancer that is itself an Emu program.

The cluster's front door is not a magic dispatcher — it is an
:class:`~repro.services.base.EmuService` like every other service in
this repo, so it runs on the CPU target, in :mod:`repro.netsim`, or as
the main logical core of an FPGA, and its cycle cost is measurable the
same way (§3.3's single-codebase claim extended to the balancing tier).

Requests arrive on the uplink port; the balancer extracts a flow key —
the memcached key when the frame is memcached-over-UDP (so GET and SET
of the same key always reach the same shard despite memaslap's random
ephemeral source ports), the 5-tuple otherwise — walks it through the
Pearson construction (:mod:`repro.ip.pearson`, Fig. 5's hash core), and
emits the frame on the ring owner's port.  Frames arriving on shard
ports are replies and are forwarded back up the uplink.

Balancers compose hierarchically: a spine balancer hashing over leaf
ids and per-leaf balancers hashing over local shard ids give the
leaf-spine dataplane of :mod:`repro.cluster.topology`.
"""

from repro.core import netfpga as NetFPGA
from repro.core.protocols.ethernet import EtherTypes
from repro.core.protocols.ipv4 import IPProtocols, IPv4Wrapper
from repro.core.protocols.memcached import (
    BinaryMagic, MemcachedBinaryWrapper, parse_ascii_command,
    split_udp_frame,
)
from repro.core.protocols.udp import UDPWrapper
from repro.cluster.health import DEFAULT_PHI_THRESHOLD, PhiAccrualDetector
from repro.cluster.ring import DEFAULT_VNODES, HashRing, max_over_mean
from repro.errors import ClusterError, ParseError
from repro.kiwi.runtime import pause
from repro.services.base import EmuService
from repro.utils.bitutil import BitUtil

MEMCACHED_PORT = 11211

#: Fixed header-parse cycles before the hash walk begins (ethernet +
#: IPv4 + UDP field extraction in the request pipeline).
PARSE_CYCLES = 12
#: Consistent-hash ring lookup once the digest is ready (BRAM walk).
LOOKUP_CYCLES = 4


def memcached_key(buf):
    """The memcached key carried by *buf*, or ``None`` if not memcached."""
    try:
        if len(buf) < 14 or BitUtil.get16(buf, 12) != EtherTypes.IPV4:
            return None
        ip = IPv4Wrapper(buf)
        if ip.protocol != IPProtocols.UDP:
            return None
        udp = UDPWrapper(buf)
        if udp.destination_port != MEMCACHED_PORT:
            return None
        _, body = split_udp_frame(udp.payload())
        if body[:1] and body[0] == BinaryMagic.REQUEST:
            return MemcachedBinaryWrapper(body).key()
        return parse_ascii_command(body).key
    except ParseError:
        return None


def five_tuple_key(buf):
    """``src_ip·dst_ip·proto·sport·dport`` as bytes (L4 flow identity)."""
    try:
        if len(buf) < 14 or BitUtil.get16(buf, 12) != EtherTypes.IPV4:
            return bytes(buf[:14]) or None
        ip = IPv4Wrapper(buf)
        proto = ip.protocol
        ports = b"\x00\x00\x00\x00"
        if proto in (IPProtocols.TCP, IPProtocols.UDP):
            offset = ip.payload_offset()
            if len(buf) >= offset + 4:
                ports = bytes(buf[offset:offset + 4])
        return (int(ip.source_ip_address).to_bytes(4, "big") +
                int(ip.destination_ip_address).to_bytes(4, "big") +
                bytes([proto]) + ports)
    except ParseError:
        return bytes(buf[:14]) or None


def flow_key(buf):
    """Default key extractor: memcached key, else the 5-tuple."""
    key = memcached_key(buf)
    if key is not None:
        return key
    return five_tuple_key(buf)


class ShardBalancerService(EmuService):
    """Hash the flow key, emit on the owning shard's port."""

    name = "shard-balancer"

    def __init__(self, shard_ports, uplink_port=0, ring=None,
                 vnodes=DEFAULT_VNODES, key_fn=flow_key,
                 phi_threshold=DEFAULT_PHI_THRESHOLD):
        """*shard_ports* maps shard id → output port (a list of ports
        auto-names shards ``shard0..N-1``)."""
        if not isinstance(shard_ports, dict):
            shard_ports = {"shard%d" % index: port
                           for index, port in enumerate(shard_ports)}
        if not shard_ports:
            raise ClusterError("balancer needs at least one shard port")
        if uplink_port in shard_ports.values():
            raise ClusterError("uplink port %d collides with a shard port"
                               % uplink_port)
        self.shard_ports = dict(shard_ports)
        self.uplink_port = uplink_port
        self.ring = ring if ring is not None else \
            HashRing(sorted(shard_ports), vnodes=vnodes)
        self.key_fn = key_fn
        self.dispatched = {shard: 0 for shard in self.shard_ports}
        self.replies_forwarded = 0
        self.unroutable = 0
        # -- health: every shard reply doubles as a heartbeat ------------
        self._shard_by_port = {port: shard
                               for shard, port in self.shard_ports.items()}
        self.health = {shard: PhiAccrualDetector(threshold=phi_threshold)
                       for shard in self.shard_ports}
        self.down = set()               # shards evicted from the ring
        #: Control-plane clock (callable → now_ns); set by the netsim
        #: wiring so heartbeats can be timestamped.  Without a clock the
        #: balancer routes but never suspects anyone.
        self.clock = None
        self.evictions = 0
        self.restores = 0
        #: Optional ``callable(label, args=None)`` — the observability
        #: layer's instant-event hook (``TraceRecorder.hook()``);
        #: detector state transitions emit through it so this module
        #: never imports the tracing package.
        self.event_hook = None

    def on_frame(self, dataplane):
        if dataplane.src_port != self.uplink_port:
            # Reply path: anything from a shard goes back up — and is a
            # free heartbeat for the failure detector.
            self.replies_forwarded += 1
            shard = self._shard_by_port.get(dataplane.src_port)
            if shard is not None and self.clock is not None:
                self.health[shard].heartbeat(self.clock())
            NetFPGA.set_output_port(dataplane, self.uplink_port)
            return
        key = self.key_fn(dataplane.tdata)
        yield pause()
        if key is None:
            self.unroutable += 1
            NetFPGA.drop(dataplane)
            return
        shard = self.ring.lookup(key)
        yield pause()
        port = self.shard_ports.get(shard)
        if port is None:
            self.unroutable += 1
            NetFPGA.drop(dataplane)
            return
        self.dispatched[shard] += 1
        NetFPGA.set_output_port(dataplane, port)

    # -- health-driven membership -------------------------------------------

    def check_health(self, now_ns=None):
        """Evict every shard whose φ crossed the threshold at *now_ns*.

        Suspicion is judged at the moment the *most recently heard*
        shard last spoke, not at ``now_ns`` raw: silence is only
        evidence of death while someone else is still talking.  An
        idle cluster (workload drained, every shard quiet) therefore
        never evicts anyone — heartbeats here are reply-driven, and
        idle is not dead.

        Returns the shards evicted by this check.  The last live shard
        is never evicted (an empty ring would make every key
        unroutable, which is strictly worse than routing into a
        suspected partition).
        """
        if now_ns is None:
            if self.clock is None:
                raise ClusterError("check_health needs a clock or now_ns")
            now_ns = self.clock()
        heard = [detector.last_heartbeat_ns
                 for detector in self.health.values()
                 if detector.heartbeats_seen]
        reference = min(now_ns, max(heard)) if heard else now_ns
        evicted = []
        for shard in self.shard_ports:
            if shard in self.down or len(self.ring) <= 1:
                continue
            if self.health[shard].is_suspect(reference):
                if self.event_hook is not None:
                    self.event_hook(
                        "phi-suspect:%s" % shard,
                        {"shard": shard,
                         "phi": round(self.health[shard].phi(reference),
                                      3)})
                self.mark_down(shard)
                evicted.append(shard)
        return evicted

    def mark_down(self, shard):
        """Evict *shard* from the ring; its keys fall to the survivors."""
        if shard not in self.shard_ports:
            raise ClusterError("no shard %r" % (shard,))
        if shard in self.down:
            return
        if len(self.ring) <= 1:
            raise ClusterError("cannot evict the last live shard")
        self.ring.remove_shard(shard)
        self.down.add(shard)
        self.evictions += 1
        if self.event_hook is not None:
            self.event_hook("mark-down:%s" % shard, {"shard": shard})

    def mark_up(self, shard):
        """Re-admit a recovered shard.  Its detector history is
        discarded — with no heartbeats φ stays 0, so stale silence
        cannot instantly re-evict it, and no synthetic heartbeat is
        injected (that would make the restored shard look like live
        traffic and re-arm suspicion of genuinely idle peers)."""
        if shard not in self.shard_ports:
            raise ClusterError("no shard %r" % (shard,))
        if shard not in self.down:
            return
        self.ring.add_shard(shard)
        self.down.discard(shard)
        self.health[shard].reset()
        self.restores += 1
        if self.event_hook is not None:
            self.event_hook("mark-up:%s" % shard, {"shard": shard})

    # -- cycle model ---------------------------------------------------------

    def datapath_extra_cycles(self, frame):
        """Byte-serial Pearson walk over the flow key.

        The multi-lane hash (one lane per digest byte) runs its lanes
        in parallel in hardware, so the walk costs one cycle per key
        byte, bracketed by a fixed header parse and the ring lookup.
        A frame with no routable key still pays the parse that
        discovered that.
        """
        key = self.key_fn(frame.data)
        key_bytes = len(key) if key is not None else 0
        return PARSE_CYCLES + key_bytes + LOOKUP_CYCLES

    def dispatch_imbalance(self):
        """Max/mean dispatch count across shards (1.0 = perfectly even)."""
        return max_over_mean(self.dispatched.values())

    def reset(self):
        self.dispatched = {shard: 0 for shard in self.shard_ports}
        self.replies_forwarded = 0
        self.unroutable = 0
