"""Instantiate the cluster on :mod:`repro.netsim` for latency-real runs.

Two builders:

* :func:`build_star` — client, one balancer, N shards on point-to-point
  links: the smallest topology that exercises the whole dataplane.
* :func:`build_leaf_spine` — the datacenter shape: a spine balancer
  hashes each key to a leaf; each leaf runs its *own*
  :class:`~repro.cluster.balancer.ShardBalancerService` over its local
  shards.  Because the balancer is just an Emu service, the two tiers
  are the same program with different rings — hierarchical consistent
  hashing with no new mechanism.

Every wire is a real :class:`~repro.netsim.link.Link` (latency +
serialization), so round trips include the fabric, not just the
service: a request crosses client→spine→leaf→shard and the reply walks
back the same way.
"""

from repro.cluster.balancer import ShardBalancerService, flow_key
from repro.cluster.ring import DEFAULT_VNODES
from repro.errors import ClusterError
from repro.netsim import Network

#: Intra-rack copper vs inter-rack fiber: leaf links are shorter.
SPINE_LINK_NS = 1500
LEAF_LINK_NS = 500
CLIENT_LINK_NS = 2000


class ClusterNetwork:
    """A built cluster: the netsim network plus named handles."""

    def __init__(self, net, client, spine, leaves, shards):
        self.net = net
        self.client = client
        self.spine = spine             # ServiceNode running the balancer
        self.leaves = leaves           # [ServiceNode] (empty for star)
        self.shards = shards           # {shard_id: ServiceNode}

    @property
    def balancer(self):
        """The spine's balancer service."""
        return self.spine.service

    def shard_services(self):
        return {shard_id: node.service
                for shard_id, node in self.shards.items()}

    def run_requests(self, frames, max_events=1_000_000):
        """Send *frames* from the client, run to quiescence, and return
        the replies that made it back."""
        for frame in frames:
            self.client.send(frame.copy())
        self.net.run(max_events=max_events)
        return self.client.drain()

    def dispatch_counts(self):
        """Requests each shard handled (from the shard nodes)."""
        return {shard_id: node.frames_handled
                for shard_id, node in self.shards.items()}


def build_star(service_factory, num_shards=4, key_fn=flow_key,
               vnodes=DEFAULT_VNODES, client_latency_ns=CLIENT_LINK_NS,
               shard_latency_ns=LEAF_LINK_NS,
               bandwidth_bps=10_000_000_000):
    """Client — balancer — N shards, one hop each."""
    if num_shards < 1:
        raise ClusterError("need at least one shard")
    net = Network()
    client = net.add_host("client")
    shard_ids = ["shard%d" % index for index in range(num_shards)]
    balancer = ShardBalancerService(
        {shard_id: 1 + index for index, shard_id in enumerate(shard_ids)},
        uplink_port=0, vnodes=vnodes, key_fn=key_fn)
    spine = net.add_service("lb", balancer, num_ports=1 + num_shards)
    net.connect(client, 0, spine, 0, latency_ns=client_latency_ns,
                bandwidth_bps=bandwidth_bps)
    shards = {}
    for index, shard_id in enumerate(shard_ids):
        node = net.add_service(shard_id, service_factory(), num_ports=1)
        net.connect(spine, 1 + index, node, 0,
                    latency_ns=shard_latency_ns,
                    bandwidth_bps=bandwidth_bps)
        shards[shard_id] = node
    return ClusterNetwork(net, client, spine, [], shards)


def build_leaf_spine(service_factory, num_shards=8, shards_per_leaf=4,
                     key_fn=flow_key, vnodes=DEFAULT_VNODES,
                     client_latency_ns=CLIENT_LINK_NS,
                     spine_latency_ns=SPINE_LINK_NS,
                     leaf_latency_ns=LEAF_LINK_NS,
                     bandwidth_bps=10_000_000_000):
    """Client — spine balancer — leaf balancers — shards."""
    if num_shards < 1:
        raise ClusterError("need at least one shard")
    if shards_per_leaf < 1:
        raise ClusterError("need at least one shard per leaf")
    net = Network()
    client = net.add_host("client")

    shard_ids = ["shard%d" % index for index in range(num_shards)]
    groups = [shard_ids[start:start + shards_per_leaf]
              for start in range(0, num_shards, shards_per_leaf)]

    # Spine: hashes the same flow key, but over leaf labels.
    spine_svc = ShardBalancerService(
        {"leaf%d" % index: 1 + index for index in range(len(groups))},
        uplink_port=0, vnodes=vnodes, key_fn=key_fn)
    spine = net.add_service("spine", spine_svc,
                            num_ports=1 + len(groups))
    net.connect(client, 0, spine, 0, latency_ns=client_latency_ns,
                bandwidth_bps=bandwidth_bps)

    leaves = []
    shards = {}
    for leaf_index, group in enumerate(groups):
        leaf_svc = ShardBalancerService(
            {shard_id: 1 + slot for slot, shard_id in enumerate(group)},
            uplink_port=0, vnodes=vnodes, key_fn=key_fn)
        leaf = net.add_service("leaf%d" % leaf_index, leaf_svc,
                               num_ports=1 + len(group))
        net.connect(spine, 1 + leaf_index, leaf, 0,
                    latency_ns=spine_latency_ns,
                    bandwidth_bps=bandwidth_bps)
        leaves.append(leaf)
        for slot, shard_id in enumerate(group):
            node = net.add_service(shard_id, service_factory(),
                                   num_ports=1)
            net.connect(leaf, 1 + slot, node, 0,
                        latency_ns=leaf_latency_ns,
                        bandwidth_bps=bandwidth_bps)
            shards[shard_id] = node
    return ClusterNetwork(net, client, spine, leaves, shards)
