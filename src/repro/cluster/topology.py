"""Instantiate the cluster on :mod:`repro.netsim` for latency-real runs.

Two builders:

* :func:`build_star` — client, one balancer, N shards on point-to-point
  links: the smallest topology that exercises the whole dataplane.
* :func:`build_leaf_spine` — the datacenter shape: a spine balancer
  hashes each key to a leaf; each leaf runs its *own*
  :class:`~repro.cluster.balancer.ShardBalancerService` over its local
  shards.  Because the balancer is just an Emu service, the two tiers
  are the same program with different rings — hierarchical consistent
  hashing with no new mechanism.

Every wire is a real :class:`~repro.netsim.link.Link` (latency +
serialization), so round trips include the fabric, not just the
service: a request crosses client→spine→leaf→shard and the reply walks
back the same way.
"""

from repro.cluster.balancer import ShardBalancerService, flow_key
from repro.cluster.health import DEFAULT_PHI_THRESHOLD
from repro.cluster.ring import DEFAULT_VNODES
from repro.errors import ClusterError
from repro.netsim import Network, schedule_health_checks

#: Intra-rack copper vs inter-rack fiber: leaf links are shorter.
SPINE_LINK_NS = 1500
LEAF_LINK_NS = 500
CLIENT_LINK_NS = 2000


class ClusterNetwork:
    """A built cluster: the netsim network plus named handles.

    Shard (and spine—leaf) wires are
    :class:`~repro.netsim.faults.FaultyLink` instances, so any member
    can be partitioned — :meth:`kill_shard` / :meth:`partition` — and
    restored; the balancer's failure detector notices through the
    missing reply heartbeats once :meth:`enable_health_checks` arms the
    probe ticker.
    """

    def __init__(self, net, client, spine, leaves, shards,
                 shard_links=None, leaf_links=None):
        self.net = net
        self.client = client
        self.spine = spine             # ServiceNode running the balancer
        self.leaves = leaves           # [ServiceNode] (empty for star)
        self.shards = shards           # {shard_id: ServiceNode}
        self.shard_links = shard_links or {}   # shard_id -> FaultyLink
        self.leaf_links = leaf_links or {}     # leaf name -> FaultyLink

    @property
    def balancer(self):
        """The spine's balancer service."""
        return self.spine.service

    def balancers(self):
        """Every balancer tier: the spine plus any leaf balancers."""
        return [self.spine.service] + [leaf.service
                                       for leaf in self.leaves]

    def shard_services(self):
        return {shard_id: node.service
                for shard_id, node in self.shards.items()}

    # -- fault verbs (the FaultPlan vocabulary) -----------------------------

    def _link_for(self, name):
        link = self.shard_links.get(name) or self.leaf_links.get(name)
        if link is None:
            raise ClusterError("no faultable link for %r" % (name,))
        return link

    def kill_shard(self, shard_id):
        """Crash a shard: its uplink goes dark mid-flight."""
        self._link_for(shard_id).take_down()

    def restore_shard(self, shard_id):
        self.heal(shard_id)

    def partition(self, name):
        """Cut the named shard's or leaf's uplink."""
        self._link_for(name).take_down()

    def heal(self, name):
        """Bring the named uplink back *and* re-admit the member on
        any balancer tier that health-evicted it — an evicted member
        receives no traffic, so it can never heartbeat its own way
        back into the ring."""
        self._link_for(name).bring_up()
        for balancer in self.balancers():
            if name in getattr(balancer, "down", ()):
                balancer.mark_up(name)

    # -- health wiring ------------------------------------------------------

    def enable_health_checks(self, every_ns=20_000, until_ns=1_000_000_000):
        """Arm periodic ``check_health`` ticks on every balancer tier
        (each balancer monitors the shards behind its own ports)."""
        for balancer in self.balancers():
            schedule_health_checks(self.net.loop, balancer, every_ns,
                                   until_ns)

    # -- workload drivers ---------------------------------------------------

    def run_requests(self, frames, max_events=1_000_000):
        """Send *frames* from the client, run to quiescence, and return
        the replies that made it back."""
        for frame in frames:
            self.client.send(frame.copy())
        self.net.run(max_events=max_events)
        return self.client.drain()

    def run_paced(self, frames, gap_ns=1000, max_events=5_000_000):
        """Send one frame every *gap_ns* (so faults land mid-workload
        rather than after an instantaneous burst), run to quiescence,
        and return the replies."""
        for index, frame in enumerate(frames):
            copy = frame.copy()
            self.net.loop.schedule(
                index * gap_ns,
                lambda frame=copy: self.client.send(frame))
        self.net.run(max_events=max_events)
        return self.client.drain()

    def dispatch_counts(self):
        """Requests each shard handled (from the shard nodes)."""
        return {shard_id: node.frames_handled
                for shard_id, node in self.shards.items()}


def _shard_fault_args(shard_faults, fault_seed, index):
    """Per-link FaultyLink kwargs: shared impairments, distinct seed."""
    faults = dict(shard_faults or {})
    faults.setdefault("seed", fault_seed + index)
    return faults


def build_star(service_factory, num_shards=4, key_fn=flow_key,
               vnodes=DEFAULT_VNODES, client_latency_ns=CLIENT_LINK_NS,
               shard_latency_ns=LEAF_LINK_NS,
               bandwidth_bps=10_000_000_000, shard_faults=None,
               fault_seed=101, phi_threshold=DEFAULT_PHI_THRESHOLD):
    """Client — balancer — N shards, one hop each.

    Shard wires are always :class:`~repro.netsim.faults.FaultyLink`
    (impaired per *shard_faults*, ideal by default) so chaos plans can
    kill and restore members.
    """
    if num_shards < 1:
        raise ClusterError("need at least one shard")
    net = Network()
    client = net.add_host("client")
    shard_ids = ["shard%d" % index for index in range(num_shards)]
    balancer = ShardBalancerService(
        {shard_id: 1 + index for index, shard_id in enumerate(shard_ids)},
        uplink_port=0, vnodes=vnodes, key_fn=key_fn,
        phi_threshold=phi_threshold)
    spine = net.add_service("lb", balancer, num_ports=1 + num_shards)
    net.connect(client, 0, spine, 0, latency_ns=client_latency_ns,
                bandwidth_bps=bandwidth_bps)
    shards = {}
    shard_links = {}
    for index, shard_id in enumerate(shard_ids):
        node = net.add_service(shard_id, service_factory(), num_ports=1)
        shard_links[shard_id] = net.connect(
            spine, 1 + index, node, 0, latency_ns=shard_latency_ns,
            bandwidth_bps=bandwidth_bps,
            faults=_shard_fault_args(shard_faults, fault_seed, index))
        shards[shard_id] = node
    return ClusterNetwork(net, client, spine, [], shards,
                          shard_links=shard_links)


def build_leaf_spine(service_factory, num_shards=8, shards_per_leaf=4,
                     key_fn=flow_key, vnodes=DEFAULT_VNODES,
                     client_latency_ns=CLIENT_LINK_NS,
                     spine_latency_ns=SPINE_LINK_NS,
                     leaf_latency_ns=LEAF_LINK_NS,
                     bandwidth_bps=10_000_000_000, shard_faults=None,
                     fault_seed=101,
                     phi_threshold=DEFAULT_PHI_THRESHOLD):
    """Client — spine balancer — leaf balancers — shards."""
    if num_shards < 1:
        raise ClusterError("need at least one shard")
    if shards_per_leaf < 1:
        raise ClusterError("need at least one shard per leaf")
    net = Network()
    client = net.add_host("client")

    shard_ids = ["shard%d" % index for index in range(num_shards)]
    groups = [shard_ids[start:start + shards_per_leaf]
              for start in range(0, num_shards, shards_per_leaf)]

    # Spine: hashes the same flow key, but over leaf labels.
    spine_svc = ShardBalancerService(
        {"leaf%d" % index: 1 + index for index in range(len(groups))},
        uplink_port=0, vnodes=vnodes, key_fn=key_fn,
        phi_threshold=phi_threshold)
    spine = net.add_service("spine", spine_svc,
                            num_ports=1 + len(groups))
    net.connect(client, 0, spine, 0, latency_ns=client_latency_ns,
                bandwidth_bps=bandwidth_bps)

    leaves = []
    shards = {}
    shard_links = {}
    leaf_links = {}
    for leaf_index, group in enumerate(groups):
        leaf_svc = ShardBalancerService(
            {shard_id: 1 + slot for slot, shard_id in enumerate(group)},
            uplink_port=0, vnodes=vnodes, key_fn=key_fn,
            phi_threshold=phi_threshold)
        leaf_name = "leaf%d" % leaf_index
        leaf = net.add_service(leaf_name, leaf_svc,
                               num_ports=1 + len(group))
        leaf_links[leaf_name] = net.connect(
            spine, 1 + leaf_index, leaf, 0, latency_ns=spine_latency_ns,
            bandwidth_bps=bandwidth_bps,
            faults=_shard_fault_args(None, fault_seed + 1000,
                                     leaf_index))
        leaves.append(leaf)
        for slot, shard_id in enumerate(group):
            node = net.add_service(shard_id, service_factory(),
                                   num_ports=1)
            shard_links[shard_id] = net.connect(
                leaf, 1 + slot, node, 0, latency_ns=leaf_latency_ns,
                bandwidth_bps=bandwidth_bps,
                faults=_shard_fault_args(
                    shard_faults, fault_seed,
                    leaf_index * shards_per_leaf + slot))
            shards[shard_id] = node
    return ClusterNetwork(net, client, spine, leaves, shards,
                          shard_links=shard_links, leaf_links=leaf_links)
