"""``ClusterTarget``: N sharded Emu devices behind one `send()`.

Where :class:`~repro.targets.multicore.MultiCoreTarget` scales *up*
(one device, one core per port), this target scales *out*: every shard
is a full :class:`~repro.targets.fpga.FpgaTarget` (its own device), a
consistent-hash ring routes each request to the shard owning its key,
and a :class:`~repro.cluster.replication.ReplicationPolicy` decides
where writes are additionally applied.

The API matches the existing targets — ``send(frame)`` returns
``(emitted, latency_ns)`` and ``max_qps`` gives sustainable throughput
— plus ``send_batch(frames)``, which groups a frame list by owning
shard before dispatching so the per-frame Python overhead (ring lookup
machinery, attribute chasing) is amortized across each shard's run.
"""

from repro.cluster.balancer import flow_key
from repro.cluster.replication import NoReplication
from repro.cluster.ring import DEFAULT_VNODES, HashRing, max_over_mean
from repro.errors import ClusterError
from repro.targets.fpga import FpgaTarget, line_rate_pps


class ClusterTarget:
    """N sharded service instances behind a consistent-hash ring."""

    def __init__(self, service_factory, num_shards=8, policy=None,
                 is_write=None, key_fn=flow_key, vnodes=DEFAULT_VNODES,
                 seed=1):
        if num_shards < 1:
            raise ClusterError("need at least one shard")
        self._factory = service_factory
        self._seed = seed
        self.policy = policy if policy is not None else NoReplication()
        self.key_fn = key_fn
        self._is_write = is_write or (lambda frame: False)
        self.shards = {}               # shard_id -> FpgaTarget
        self.ring = HashRing(vnodes=vnodes)
        self._next_shard = 0
        self._shard_order = []         # sorted ids + index, cached for
        self._shard_index = {}         # the per-write replica planner
        # Stats.
        self.requests = 0
        self.writes = 0
        self.replica_applies = 0
        self.batches = 0
        self.shard_loads = {}
        self._pending = []             # queued async replica applies
        for _ in range(num_shards):
            self.add_shard()

    # -- membership ---------------------------------------------------------

    @property
    def num_shards(self):
        return len(self.shards)

    @property
    def shard_ids(self):
        return self.ring.shards

    def add_shard(self):
        """Bring up a new shard device and join it to the ring."""
        shard_number = self._next_shard
        self._next_shard += 1
        shard_id = "shard%d" % shard_number
        # Seed by the never-reused shard number, so a shard added after
        # a removal does not duplicate a live shard's jitter stream.
        self.shards[shard_id] = FpgaTarget(
            self._factory(), num_ports=1,
            seed=self._seed + shard_number)
        self.ring.add_shard(shard_id)
        self.shard_loads[shard_id] = 0
        self._reindex()
        return shard_id

    def _reindex(self):
        self._shard_order = self.ring.shards
        self._shard_index = {shard_id: index for index, shard_id
                             in enumerate(self._shard_order)}

    def remove_shard(self, shard_id, sample_keys=None):
        """Drain a shard: rehome its stored entries, leave the ring.

        Entries are migrated by re-applying them to their new ring
        owners through the service's store API (duck-typed:
        ``_store``/``store_set``, the memcached/kvcache shape); services
        without that shape just lose the shard's soft state, like a
        cache node going away.  Returns
        :class:`~repro.cluster.ring.RemapStats` over *sample_keys*
        (default: every key stored anywhere in the cluster, so the
        fraction reflects the whole key population, not just the
        departing shard's).
        """
        if shard_id not in self.shards:
            raise ClusterError("no shard %r" % (shard_id,))
        if len(self.shards) == 1:
            raise ClusterError("cannot remove the last shard")
        if sample_keys is None:
            sample_keys = [key for shard in self.shards.values()
                           for key in getattr(shard.service, "_store",
                                              ())]
        before = self.ring
        departing = self.shards.pop(shard_id)
        self.ring = HashRing(before.shards, vnodes=before.vnodes)
        self.ring.remove_shard(shard_id)
        self.shard_loads.pop(shard_id, None)
        self._reindex()

        store = getattr(departing.service, "_store", None)
        if store:
            for key, entry in store.items():
                if before.lookup(key) != shard_id:
                    continue     # a replica copy; the owner's is fresher
                owner = self.ring.lookup(key)
                service = self.shards[owner].service
                if hasattr(service, "store_set"):
                    value, flags = entry if isinstance(entry, tuple) \
                        else (entry, 0)
                    service.store_set(key, value, flags)

        return before.remap_stats(self.ring, sample_keys) \
            if sample_keys else None

    # -- dispatch -----------------------------------------------------------

    def _owner(self, frame):
        key = self.key_fn(frame.data)
        if key is None:
            raise ClusterError("frame has no routable key")
        return self.ring.lookup(key)

    def _apply_replicas(self, frame, owner_id):
        shard_ids = self._shard_order
        owner_index = self._shard_index[owner_id]
        replicas = self.policy.replica_indices(owner_index,
                                               len(shard_ids))
        for index in replicas:
            replica_id = shard_ids[index]
            if self.policy.synchronous_apply:
                self._apply_one(replica_id, frame)
            else:
                self._pending.append((replica_id, frame.copy()))

    def _apply_one(self, shard_id, frame):
        """Replica apply: store update only, no latency recording."""
        replica = frame.copy()
        replica.src_port = 0
        self.shards[shard_id].service.process(replica)
        self.replica_applies += 1

    def send(self, frame):
        """Route one request to its shard; returns (emitted, latency_ns)."""
        owner = self._owner(frame)
        self.requests += 1
        self.shard_loads[owner] += 1
        local = frame.copy()
        local.src_port = 0
        result = self.shards[owner].send(local)
        if self._is_write(frame):
            self.writes += 1
            self._apply_replicas(frame, owner)
        return result

    def send_batch(self, frames):
        """Dispatch a frame list, grouped by shard, preserving order.

        Grouping turns N interleaved shard switches into one pass per
        shard: the shard target, its ``send`` bound method, and the
        stat counters are resolved once per run instead of once per
        frame.  Results come back in input order.  Replies are
        identical to sequential ``send()`` — a key's reads and writes
        land in one shard's batch, so their relative order (the only
        order replies depend on) is preserved.
        """
        frames = list(frames)
        by_shard = {}
        for position, frame in enumerate(frames):
            by_shard.setdefault(self._owner(frame), []).append(
                (position, frame))
        results = [None] * len(frames)
        is_write = self._is_write
        for owner, batch in by_shard.items():
            shard_send = self.shards[owner].send
            writes = []
            for position, frame in batch:
                local = frame.copy()
                local.src_port = 0
                results[position] = shard_send(local)
                if is_write(frame):
                    writes.append(frame)
            self.requests += len(batch)
            self.shard_loads[owner] += len(batch)
            self.writes += len(writes)
            for frame in writes:
                self._apply_replicas(frame, owner)
        self.batches += 1
        return results

    def flush_replication(self):
        """Apply queued async replica writes; returns how many ran."""
        pending, self._pending = self._pending, []
        for shard_id, frame in pending:
            if shard_id in self.shards:        # shard may have left
                self._apply_one(shard_id, frame)
        return len(pending)

    @property
    def pending_replication(self):
        return len(self._pending)

    # -- statistics ---------------------------------------------------------

    def load_imbalance(self):
        """Max/mean requests routed per shard (1.0 = perfectly even)."""
        return max_over_mean(self.shard_loads.values())

    def latencies_ns(self):
        """All recorded per-request latencies across shards."""
        merged = []
        for shard in self.shards.values():
            merged.extend(shard.latencies_ns)
        return merged

    # -- throughput model ---------------------------------------------------

    def max_qps(self, read_frame, write_frame, write_ratio,
                imbalance=None):
        """Aggregate throughput for a read/write mix.

        The hottest shard saturates first, so the per-shard budget is
        scaled by the ring's load *imbalance* (measured from routed
        traffic unless given).  At aggregate rate R each shard handles
        its (imbalanced) share of full requests plus its share of the
        policy's replica applies — the §5.4 write-replication asymmetry
        generalized to N shards:

            R·L/N · [(1-w)/G + w/W] + R·w·a/N · β/W = 1

        with G/W the single-shard read/write rates, a the policy's
        replica applies per write, β the replica-apply cost fraction.
        """
        if imbalance is None:
            imbalance = self.load_imbalance()
        any_shard = next(iter(self.shards.values()))
        read_qps = any_shard.max_qps(read_frame.copy())
        write_qps = any_shard.max_qps(write_frame.copy())
        n = len(self.shards)
        applies = self.policy.replicas_per_write(n)
        beta = self.policy.REPLICA_APPLY_FRACTION
        per_shard = (imbalance / n) * ((1.0 - write_ratio) / read_qps +
                                       write_ratio / write_qps) + \
            (write_ratio * applies / n) * beta / write_qps
        aggregate = 1.0 / per_shard
        line = n * line_rate_pps(len(read_frame.data))
        return min(aggregate, line)
