"""``ClusterTarget``: N sharded Emu devices behind one `send()`.

Where :class:`~repro.targets.multicore.MultiCoreTarget` scales *up*
(one device, one core per port), this target scales *out*: every shard
is a full :class:`~repro.targets.fpga.FpgaTarget` (its own device), a
consistent-hash ring routes each request to the shard owning its key,
and a :class:`~repro.cluster.replication.ReplicationPolicy` decides
where writes are additionally applied.

The API matches the existing targets — ``send(frame)`` returns
``(emitted, latency_ns)`` and ``max_qps`` gives sustainable throughput
— plus ``send_batch(frames)``, which groups a frame list by owning
shard before dispatching so the per-frame Python overhead (ring lookup
machinery, attribute chasing) is amortized across each shard's run.
"""

from repro.cluster.balancer import flow_key
from repro.cluster.health import MissCountDetector
from repro.cluster.replication import NoReplication
from repro.cluster.ring import DEFAULT_VNODES, HashRing, max_over_mean
from repro.errors import ClusterError
from repro.targets.fpga import FpgaTarget, line_rate_pps

#: Client-side timeout charged per request attempt that a crashed
#: shard never answered — the probe interval of the failure detector.
REQUEST_TIMEOUT_NS = 50_000.0


class ClusterTarget:
    """N sharded service instances behind a consistent-hash ring."""

    def __init__(self, service_factory, num_shards=8, policy=None,
                 is_write=None, key_fn=flow_key, vnodes=DEFAULT_VNODES,
                 seed=1, suspect_after=3, opt_level=None, batch=None,
                 level_budget=None):
        if num_shards < 1:
            raise ClusterError("need at least one shard")
        self._factory = service_factory
        self._seed = seed
        self.opt_level = opt_level
        self.batch = batch
        self.level_budget = level_budget
        self.policy = policy if policy is not None else NoReplication()
        self.key_fn = key_fn
        self._is_write = is_write or (lambda frame: False)
        self.shards = {}               # shard_id -> FpgaTarget
        self.ring = HashRing(vnodes=vnodes)
        self._next_shard = 0
        self._shard_order = []         # sorted ids + index, cached for
        self._shard_index = {}         # the per-write replica planner
        # Failure handling.
        self.suspect_after = suspect_after
        self._down = set()             # crashed, not yet evicted
        self.failed_shards = {}        # shard_id -> evicted FpgaTarget
        self.detectors = {}            # shard_id -> MissCountDetector
        # Stats.
        self.requests = 0
        self.writes = 0
        self.replica_applies = 0
        self.batches = 0
        self.shard_loads = {}
        self.failed_requests = 0       # attempts a dead shard ate
        self.failovers = 0
        self.rejoins = 0
        self.handoff_replays = 0       # queued writes promoted on evict
        self._pending = []             # queued async replica applies
        #: Optional ``callable(label, args=None)`` — the observability
        #: layer's instant-event hook (``TraceRecorder.hook()``); this
        #: module stays ignorant of the tracing package.
        self.event_hook = None
        for _ in range(num_shards):
            self.add_shard()

    # -- membership ---------------------------------------------------------

    @property
    def num_shards(self):
        return len(self.shards)

    @property
    def shard_ids(self):
        return self.ring.shards

    @property
    def live_shards(self):
        """Shard ids answering requests (in the ring and not crashed)."""
        return [shard_id for shard_id in self.ring.shards
                if shard_id not in self._down]

    def add_shard(self):
        """Bring up a new shard device and join it to the ring."""
        shard_number = self._next_shard
        self._next_shard += 1
        shard_id = "shard%d" % shard_number
        # Seed by the never-reused shard number, so a shard added after
        # a removal does not duplicate a live shard's jitter stream.
        self.shards[shard_id] = FpgaTarget(
            self._factory(), num_ports=1,
            seed=self._seed + shard_number, opt_level=self.opt_level,
            batch=self.batch, level_budget=self.level_budget)
        self.ring.add_shard(shard_id)
        self.shard_loads[shard_id] = 0
        self.detectors[shard_id] = MissCountDetector(self.suspect_after)
        self._reindex()
        return shard_id

    def _reindex(self):
        self._shard_order = self.ring.shards
        self._shard_index = {shard_id: index for index, shard_id
                             in enumerate(self._shard_order)}

    def remove_shard(self, shard_id, sample_keys=None):
        """Drain a shard: rehome its stored entries, leave the ring.

        Entries are migrated by re-applying them to their new ring
        owners through the service's store API (duck-typed:
        ``_store``/``store_set``, the memcached/kvcache shape); services
        without that shape just lose the shard's soft state, like a
        cache node going away.  Returns
        :class:`~repro.cluster.ring.RemapStats` over *sample_keys*
        (default: every key stored anywhere in the cluster, so the
        fraction reflects the whole key population, not just the
        departing shard's).
        """
        if shard_id not in self.shards:
            raise ClusterError("no shard %r" % (shard_id,))
        if shard_id in self._down:
            raise ClusterError("shard %r has crashed; evict_shard() "
                               "fails it over instead" % (shard_id,))
        if len(self.shards) == 1:
            raise ClusterError("cannot remove the last shard")
        if sample_keys is None:
            sample_keys = self._stored_keys()
        before = self.ring
        departing = self.shards.pop(shard_id)
        self.ring = HashRing(before.shards, vnodes=before.vnodes)
        self.ring.remove_shard(shard_id)
        self.shard_loads.pop(shard_id, None)
        self._reindex()

        store = getattr(departing.service, "_store", None)
        if store:
            self._rehome_entries(store, before, shard_id)

        return before.remap_stats(self.ring, sample_keys) \
            if sample_keys else None

    def _stored_keys(self):
        """Every key stored on any live shard (the default remap
        sample, so fractions reflect the whole key population)."""
        return [key for shard in self.shards.values()
                for key in getattr(shard.service, "_store", ())]

    def _rehome_entries(self, store, before, departed_id):
        """Re-apply *store*'s entries that ring *before* assigned to
        *departed_id* onto their new ring owners (duck-typed through
        the ``store_set`` shape); returns how many moved."""
        moved = 0
        for key, entry in list(store.items()):
            if before.lookup(key) != departed_id:
                continue     # a replica copy; the owner's is fresher
            owner = self.ring.lookup(key)
            service = self.shards[owner].service
            if hasattr(service, "store_set"):
                value, flags = entry if isinstance(entry, tuple) \
                    else (entry, 0)
                service.store_set(key, value, flags)
                moved += 1
        return moved

    # -- failure handling ---------------------------------------------------

    def kill_shard(self, shard_id):
        """Crash a shard: it stops answering but stays in the ring
        until the failure detector evicts it (no graceful drain — the
        difference between this and :meth:`remove_shard` is the whole
        point of the fault model)."""
        if shard_id not in self.shards:
            raise ClusterError("no shard %r" % (shard_id,))
        if len(self.shards) - len(self._down) <= 1:
            raise ClusterError("cannot kill the last live shard")
        self._down.add(shard_id)
        if self.event_hook is not None:
            self.event_hook("kill:%s" % shard_id,
                            {"shard": shard_id})

    def evict_shard(self, shard_id):
        """Fail a crashed shard out of the ring (failover).

        Three steps, in order:

        1. the ring drops the shard, so its keys fall to their
           clockwise successors;
        2. queued (hinted) replica writes are replayed: any write whose
           primary was the dead shard exists only in the queue, so it
           is promoted onto the key's new ring owner — this is what
           makes "no acknowledged write lost" hold under
           :class:`~repro.cluster.replication.PrimaryReplica`;
        3. replica copies already applied on survivors are re-homed to
           the new ring owners, so post-failover reads hit.
        """
        if shard_id not in self.shards:
            raise ClusterError("no shard %r" % (shard_id,))
        if len(self.shards) == 1:
            raise ClusterError("cannot evict the last shard")
        before = self.ring
        self.failed_shards[shard_id] = self.shards.pop(shard_id)
        self._down.discard(shard_id)
        self.ring = HashRing(before.shards, vnodes=before.vnodes)
        self.ring.remove_shard(shard_id)
        self.shard_loads.pop(shard_id, None)
        self._reindex()

        # Hinted handoff: a queued write whose primary just died is the
        # only surviving copy of an acknowledged write — promote it to
        # the key's new ring owner now.  Hints owed *to* the dead shard
        # need no work here: they resolve to the live successor at
        # flush time.
        pending, self._pending = self._pending, []
        for owner_id, offset, frame in pending:
            if owner_id == shard_id:
                key = self.key_fn(frame.data)
                if key is not None:
                    self._apply_one(self.ring.lookup(key), frame)
                    self.handoff_replays += 1
            else:
                self._pending.append((owner_id, offset, frame))

        # Promote replica copies that were already applied: entries the
        # dead shard owned live on its replicas; re-home them.
        for survivor in list(self.shards.values()):
            store = getattr(survivor.service, "_store", None)
            if store:
                self._rehome_entries(store, before, shard_id)
        self.failovers += 1
        if self.event_hook is not None:
            self.event_hook("evict:%s" % shard_id,
                            {"shard": shard_id,
                             "replays": self.handoff_replays})

    def restore_shard(self, shard_id, sample_keys=None):
        """Rejoin a crashed shard after repair.

        A crash loses soft state, so the shard comes back empty and is
        warmed with the keys the new ring assigns it *before* traffic
        shifts — no acknowledged write is lost and only ~1/N of keys
        remap (the bounded-rejoin guarantee).  Stale copies left on the
        previous owners are shadowed by the ring, not deleted — cache
        semantics.  Returns :class:`~repro.cluster.ring.RemapStats`
        over *sample_keys* (default: every stored key), or ``None`` for
        a shard that was killed but never evicted.
        """
        if shard_id in self._down:
            # Killed but the detector never fired: it simply answers
            # again (its store never went anywhere).
            self._down.discard(shard_id)
            self.detectors[shard_id].reset()
            return None
        if shard_id not in self.failed_shards:
            raise ClusterError("shard %r is not failed" % (shard_id,))
        target = self.failed_shards.pop(shard_id)
        target.service.reset()
        if sample_keys is None:
            sample_keys = self._stored_keys()
        before = self.ring
        self.ring = HashRing(before.shards, vnodes=before.vnodes)
        self.ring.add_shard(shard_id)
        self.shards[shard_id] = target
        self.shard_loads[shard_id] = 0
        self.detectors[shard_id].reset()
        self._reindex()

        # Warm the rejoining shard with the keys it now owns, pulled
        # from their pre-rejoin owners.
        service = target.service
        if hasattr(service, "store_set"):
            for owner_id, node in self.shards.items():
                if owner_id == shard_id:
                    continue
                store = getattr(node.service, "_store", None)
                if not store:
                    continue
                for key, entry in list(store.items()):
                    if self.ring.lookup(key) != shard_id:
                        continue
                    value, flags = entry if isinstance(entry, tuple) \
                        else (entry, 0)
                    service.store_set(key, value, flags)
        self.rejoins += 1
        if self.event_hook is not None:
            self.event_hook("rejoin:%s" % shard_id,
                            {"shard": shard_id})
        return before.remap_stats(self.ring, sample_keys) \
            if sample_keys else None

    # -- dispatch -----------------------------------------------------------

    def owner_of(self, frame):
        """The shard id the ring routes *frame* to (``None`` when the
        frame has no routable key).  Public so the deploy backend and
        the open-loop load layer share the exact routing the cluster
        uses, rather than re-deriving it."""
        key = self.key_fn(frame.data)
        if key is None:
            return None
        return self.ring.lookup(key)

    def _owner(self, frame):
        owner = self.owner_of(frame)
        if owner is None:
            raise ClusterError("frame has no routable key")
        return owner

    def _apply_replicas(self, frame, owner_id):
        shard_ids = self._shard_order
        owner_index = self._shard_index[owner_id]
        replicas = self.policy.replica_indices(owner_index,
                                               len(shard_ids))
        for index in replicas:
            if self.policy.synchronous_apply:
                self._apply_one(shard_ids[index], frame)
            else:
                # Queue a *hint* — (owner, replica offset), resolved to
                # a concrete shard only at flush time, so membership
                # changes between enqueue and flush retarget the apply
                # instead of orphaning it.
                offset = (index - owner_index) % len(shard_ids)
                self._pending.append((owner_id, offset, frame.copy()))

    def _apply_one(self, shard_id, frame):
        """Replica apply: store update only, no latency recording."""
        replica = frame.copy()
        replica.src_port = 0
        self.shards[shard_id].service.process(replica)
        self.replica_applies += 1
        if self.event_hook is not None:
            self.event_hook("replica-apply:%s" % shard_id,
                            {"shard": shard_id})

    def send(self, frame):
        """Route one request to its shard; returns (emitted, latency_ns).

        A request routed to a crashed shard times out — ``([], None)``,
        never acknowledged — and feeds that shard's failure detector;
        when the detector trips, the shard is failed over
        (:meth:`evict_shard`) so subsequent requests for its keys reach
        the promoted owner.
        """
        owner = self._owner(frame)
        if owner in self._down:
            return self._send_timed_out(frame, owner)
        self.requests += 1
        self.shard_loads[owner] += 1
        local = frame.copy()
        local.src_port = 0
        result = self.shards[owner].send(local)
        self.detectors[owner].record_ok()
        if self._is_write(frame):
            self.writes += 1
            self._apply_replicas(frame, owner)
        return result

    def _send_timed_out(self, frame, owner):
        """A request hit a crashed shard: count the timeout, feed the
        detector, and fail over once the miss streak trips it."""
        self.requests += 1
        self.failed_requests += 1
        if self.event_hook is not None:
            self.event_hook("timeout:%s" % owner,
                            {"shard": owner,
                             "misses": self.detectors[owner].misses + 1})
        if self.detectors[owner].record_miss():
            self.evict_shard(owner)
        return [], None

    def send_batch(self, frames):
        """Dispatch a frame list, grouped by shard, preserving order.

        Grouping turns N interleaved shard switches into one pass per
        shard: the shard target, its ``send`` bound method, and the
        stat counters are resolved once per run instead of once per
        frame.  Results come back in input order.  Replies are
        identical to sequential ``send()`` — a key's reads and writes
        land in one shard's batch, so their relative order (the only
        order replies depend on) is preserved.
        """
        frames = list(frames)
        by_shard = {}
        for position, frame in enumerate(frames):
            by_shard.setdefault(self._owner(frame), []).append(
                (position, frame))
        results = [None] * len(frames)
        is_write = self._is_write
        for owner, batch in by_shard.items():
            if owner in self._down or owner not in self.shards:
                # Fault path: per-frame dispatch, so the failure
                # detector sees the same miss sequence as sequential
                # send() and re-routes the rest after failover.
                # (Consistent hashing keeps every *other* group's
                # owner valid: eviction only moves the dead shard's
                # keys.)
                for position, frame in batch:
                    results[position] = self.send(frame)
                continue
            shard_send = self.shards[owner].send
            detector = self.detectors[owner]
            writes = []
            for position, frame in batch:
                local = frame.copy()
                local.src_port = 0
                results[position] = shard_send(local)
                detector.record_ok()
                if is_write(frame):
                    writes.append(frame)
            self.requests += len(batch)
            self.shard_loads[owner] += len(batch)
            self.writes += len(writes)
            for frame in writes:
                self._apply_replicas(frame, owner)
        self.batches += 1
        return results

    def flush_replication(self):
        """Apply queued async replica writes; returns how many ran.

        Each queued hint is resolved against the *current* shard order:
        a replica slot whose shard has since died lands on the live
        successor, and a hint whose owner has left the cluster is
        dropped (its data was promoted during the eviction or migrated
        by the graceful drain).
        """
        pending, self._pending = self._pending, []
        order = self._shard_order
        applied = 0
        for owner_id, offset, frame in pending:
            owner_index = self._shard_index.get(owner_id)
            if owner_index is None:
                continue
            replica_id = order[(owner_index + offset) % len(order)]
            if replica_id != owner_id:         # cluster may have shrunk
                self._apply_one(replica_id, frame)
                applied += 1
        return applied

    @property
    def pending_replication(self):
        return len(self._pending)

    # -- statistics ---------------------------------------------------------

    def load_imbalance(self):
        """Max/mean requests routed per shard (1.0 = perfectly even)."""
        return max_over_mean(self.shard_loads.values())

    def latencies_ns(self):
        """All recorded per-request latencies across shards."""
        merged = []
        for shard in self.shards.values():
            merged.extend(shard.latencies_ns)
        return merged

    # -- throughput model ---------------------------------------------------

    def max_qps(self, read_frame, write_frame, write_ratio,
                imbalance=None):
        """Aggregate throughput for a read/write mix.

        The hottest shard saturates first, so the per-shard budget is
        scaled by the ring's load *imbalance* (measured from routed
        traffic unless given).  At aggregate rate R each shard handles
        its (imbalanced) share of full requests plus its share of the
        policy's replica applies — the §5.4 write-replication asymmetry
        generalized to N shards:

            R·L/N · [(1-w)/G + w/W] + R·w·a/N · β/W = 1

        with G/W the single-shard read/write rates, a the policy's
        replica applies per write, β the replica-apply cost fraction.
        """
        if imbalance is None:
            imbalance = self.load_imbalance()
        any_shard = next(iter(self.shards.values()))
        read_qps = any_shard.max_qps(read_frame.copy())
        write_qps = any_shard.max_qps(write_frame.copy())
        n = len(self.shards)
        applies = self.policy.replicas_per_write(n)
        beta = self.policy.REPLICA_APPLY_FRACTION
        per_shard = (imbalance / n) * ((1.0 - write_ratio) / read_qps +
                                       write_ratio / write_qps) + \
            (write_ratio * applies / n) * beta / write_qps
        aggregate = 1.0 / per_shard
        line = n * line_rate_pps(len(read_frame.data))
        return min(aggregate, line)
