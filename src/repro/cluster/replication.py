"""Pluggable replication policies for the sharded cluster.

§5.4's four-core experiment hard-wires one policy — every write is
applied to every instance, reads are served locally
(:class:`repro.targets.multicore.MultiCoreTarget`).  At cluster scale
that is just one point in a spectrum, so the policy is a first-class
object the :class:`~repro.cluster.target.ClusterTarget` consults per
request:

* :class:`NoReplication` — pure sharding: each key lives on exactly the
  shard the ring assigns it.  Writes scale with N; losing a shard loses
  its keys.
* :class:`ReadOneWriteAll` — the §5.4 scheme generalized to N shards:
  reads are served by the ring owner alone, writes are applied to every
  shard, so any shard can answer any read if the ring is bypassed.
* :class:`PrimaryReplica` — writes run synchronously on the ring owner
  and are queued for *asynchronous* apply on the next *k* shards
  (flushed by :meth:`ClusterTarget.flush_replication`), trading read
  freshness on replicas for write latency.

A policy only decides *where requests go*; what counts as a write is a
per-service classifier (``is_write``) such as :func:`memcached_is_write`.
"""

from repro.core.protocols.memcached import memcached_is_write
from repro.errors import ClusterError
from repro.targets.multicore import MultiCoreTarget

__all__ = ["NoReplication", "PrimaryReplica", "ReadOneWriteAll",
           "ReplicationPolicy", "memcached_is_write"]


class ReplicationPolicy:
    """Base policy: where a write goes beyond its ring owner."""

    name = "none"

    #: Applying a replicated write on a non-owner shard skips request
    #: parsing and response generation; only the store update runs —
    #: the same calibration as the §5.4 multi-core model.
    REPLICA_APPLY_FRACTION = MultiCoreTarget.REPLICA_APPLY_FRACTION

    #: Replica applies run inline with ``send()`` (True) or are queued
    #: until ``flush_replication()`` (False).
    synchronous_apply = True

    def replica_indices(self, owner_index, num_shards):
        """Shard indices that receive a replica apply of this write."""
        return ()

    def replicas_per_write(self, num_shards):
        """How many replica applies one write generates (for the
        throughput model)."""
        return len(tuple(self.replica_indices(0, num_shards)))


class NoReplication(ReplicationPolicy):
    """Pure sharding: a write touches only its ring owner."""

    name = "sharded"


class ReadOneWriteAll(ReplicationPolicy):
    """§5.4 write replication, generalized from ports to shards."""

    name = "read-one-write-all"
    synchronous_apply = True

    def replica_indices(self, owner_index, num_shards):
        return tuple(index for index in range(num_shards)
                     if index != owner_index)


class PrimaryReplica(ReplicationPolicy):
    """Primary applies synchronously; *k* successors apply lazily."""

    name = "primary-replica"
    synchronous_apply = False

    def __init__(self, num_replicas=1):
        if num_replicas < 0:
            raise ClusterError("num_replicas must be >= 0")
        self.num_replicas = num_replicas

    def replica_indices(self, owner_index, num_shards):
        count = min(self.num_replicas, num_shards - 1)
        return tuple((owner_index + offset) % num_shards
                     for offset in range(1, count + 1))
