"""The five host baselines of Table 4, configured mechanistically.

Each host service wraps the *same functional logic* as its Emu
counterpart; only timing differs.  Each path is fixed per-stage costs
(constants in the spirit of the Emu paper's own reference [50], which
attributes 10s of microseconds to the host stack) plus one lognormal
*contention* stage — scheduler/memory/queueing noise is multiplicative,
which is what produces the paper's tail-to-average ratios of 1.09–2.98
(against ~1.02 for the FPGA).

The lognormal parameters are (median_us, sigma); mean ≈ median ·
exp(sigma²/2), p99 ≈ median · exp(2.33·sigma).
"""

from repro.hoststack.model import HostService, Stage


def host_icmp_echo(service, seed=2):
    """Kernel-resident ICMP echo: interrupt + softirq + icmp_rcv + tx.
    No socket/syscall stages — which is why it is the *fastest* host
    service, yet still an order of magnitude behind the FPGA."""
    stages = [
        Stage("nic_dma_irq", 2.4),
        Stage("softirq_netrx", 2.0),
        Stage("icmp_rx_reply", 1.6),
        Stage("ip_tx", 1.1),
        Stage("qdisc_nic_tx", 0.9),
        Stage("irq_sched_contention", 0.0, "lognormal", 3.6, 0.58),
    ]
    return HostService("icmp_echo", service, stages,
                       cpu_us_per_request=3.75, kernel_only=True,
                       seed=seed)


def host_tcp_ping(service, seed=2):
    """SYN handling: the standard stack plus SYN-queue/minisock work;
    listen-socket lock contention gives TCP the heaviest relative tail
    (the paper's host TCP ping: 21.8 µs average, 65 µs 99th)."""
    stages = [
        Stage("tcp_syn_processing", 1.4),
        Stage("syn_queue_minisock", 0.8),
        Stage("listen_lock_contention", 0.0, "lognormal", 2.6, 1.2),
    ]
    return HostService("tcp_ping", service, stages,
                       cpu_us_per_request=3.95, seed=seed)


def host_dns(service, seed=2):
    """A BIND-style resolver process: decode, tree walk, malloc churn
    and response assembly are ~100 µs of user-space work that dwarfs
    the stack — so the *relative* tail is the smallest (1.09x)."""
    stages = [
        Stage("dns_decode", 12.0),
        Stage("resolver_tree_walk", 50.0),
        Stage("response_assembly", 24.0),
        Stage("heap_cache_contention", 0.0, "lognormal", 25.9, 0.09),
    ]
    return HostService("dns", service, stages,
                       cpu_us_per_request=17.7, seed=seed)


def host_nat(service, seed=2):
    """Netfilter/conntrack forwarding under gateway load: latency is
    dominated by millisecond-scale queueing in the forwarding path
    (Table 4: ~2.4 ms average, ~6.2 ms 99th)."""
    stages = [
        Stage("nic_dma_irq", 2.1),
        Stage("conntrack_lookup", 3.6),
        Stage("ip_forward_tx", 1.9),
        Stage("forwarding_queue", 52.0, "lognormal", 2160.0, 0.45),
    ]
    return HostService("nat", service, stages,
                       cpu_us_per_request=3.85, kernel_only=True,
                       seed=seed)


def host_memcached(service, seed=2):
    """memcached, 4 worker threads over UDP: quick hash + slab work on
    top of the standard stack; modest contention tail (1.18x)."""
    stages = [
        Stage("event_loop_dispatch", 2.1),
        Stage("hash_slab_work", 1.5),
        Stage("worker_contention", 0.0, "lognormal", 6.1, 0.163),
    ]
    return HostService("memcached", service, stages,
                       cpu_us_per_request=4.55, seed=seed)
