"""Staged host-stack latency/throughput model.

A request's host-side latency is the sum of pipeline *stages*; each
stage has a fixed cost plus an optional jitter source:

* ``exp``       — exponential queueing/interrupt delay (softirq backlog,
  IRQ coalescing);
* ``lognormal`` — multiplicative contention (memory hierarchy, loaded
  forwarding paths);
* ``spike``     — rare scheduler preemption: with small probability the
  request eats a timeslice-scale delay.

Throughput is CPU-bound: ``cores / cpu_us_per_request``, capped by NIC
packet rate — the model behind "the server is configured to achieve
maximum throughput (e.g. using multiple CPU cores)" (§5.2).
"""

import math
import random

from repro.errors import HostModelError


class Stage:
    """One stage of the host path."""

    __slots__ = ("name", "fixed_us", "jitter_kind", "jitter_a", "jitter_b")

    def __init__(self, name, fixed_us, jitter_kind=None, jitter_a=0.0,
                 jitter_b=0.0):
        if fixed_us < 0:
            raise HostModelError("stage %r fixed cost negative" % name)
        if jitter_kind not in (None, "exp", "lognormal", "spike"):
            raise HostModelError("unknown jitter kind %r" % jitter_kind)
        self.name = name
        self.fixed_us = fixed_us
        self.jitter_kind = jitter_kind
        self.jitter_a = jitter_a
        self.jitter_b = jitter_b

    def sample_us(self, rng):
        value = self.fixed_us
        kind = self.jitter_kind
        if kind == "exp":
            value += rng.expovariate(1.0 / self.jitter_a)
        elif kind == "lognormal":
            # jitter_a = median (us), jitter_b = sigma of ln.
            value += rng.lognormvariate(math.log(self.jitter_a),
                                        self.jitter_b)
        elif kind == "spike":
            # jitter_a = probability, jitter_b = spike magnitude (us).
            if rng.random() < self.jitter_a:
                value += self.jitter_b * (0.5 + rng.random())
        return value


class KernelPathModel:
    """A list of stages sampled per request."""

    def __init__(self, stages, seed=2):
        self.stages = list(stages)
        self._rng = random.Random(seed)

    def sample_latency_us(self):
        return sum(stage.sample_us(self._rng) for stage in self.stages)

    def breakdown_us(self):
        """Expected fixed cost per stage (for reports/debug)."""
        return {stage.name: stage.fixed_us for stage in self.stages}


# The shared kernel receive/transmit path (constants per [50]): these
# are the stages every host service pays before/after its own work.
def standard_rx_tx_stages():
    return [
        Stage("nic_dma_irq", 2.1, "exp", 0.4),
        Stage("softirq_netrx", 1.9, "exp", 0.3),
        Stage("ip_l4_rx", 1.3),
        Stage("socket_wakeup_sched", 2.6),
        Stage("syscall_rx_copy", 1.4),
        Stage("syscall_tx_copy", 1.3),
        Stage("ip_l4_tx", 1.1),
        Stage("qdisc_nic_tx", 0.9, "exp", 0.2),
    ]


class HostService:
    """A functional Emu service with host-model timing around it.

    ``send(frame)`` executes the *same* service logic as the Emu/FPGA
    run (so correctness is shared), then samples the host latency.
    """

    def __init__(self, name, service, app_stages, cpu_us_per_request,
                 cores=4, nic_pps_cap=14_880_000, seed=2,
                 kernel_only=False):
        # Kernel-resident services (ICMP, netfilter NAT) skip the
        # socket/syscall stages and define their own full path.
        base = [] if kernel_only else standard_rx_tx_stages()
        self.name = name
        self.service = service
        self.model = KernelPathModel(base + list(app_stages), seed=seed)
        self.cpu_us_per_request = cpu_us_per_request
        self.cores = cores
        self.nic_pps_cap = nic_pps_cap
        self.latencies_us = []

    def send(self, frame):
        """Process one request; returns (emitted, latency_us)."""
        dataplane = self.service.process(frame)
        latency = self.model.sample_latency_us()
        self.latencies_us.append(latency)
        emitted = []
        for port in range(4):
            if dataplane.dst_ports & (1 << port):
                emitted.append((port, dataplane.to_frame()))
        return emitted, latency

    def max_qps(self):
        """CPU-bound service rate, capped by the NIC."""
        cpu_qps = self.cores * 1e6 / self.cpu_us_per_request
        return min(cpu_qps, self.nic_pps_cap)
