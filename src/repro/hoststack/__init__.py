"""Host (Linux) baseline models for Table 4.

We have no Xeon E5-2637 testbed, so host-side behaviour is *modelled
mechanistically* and the functional service logic still executes: a
:class:`~repro.hoststack.model.HostService` wraps the same protocol code
paths as the Emu services, and its timing comes from a staged
kernel-path model (NIC/IRQ → softirq → IP/L4 → socket wakeup →
syscalls → application → TX) with jitter sources for scheduling noise.

Stage constants follow the breakdown in "Where has my time gone?"
(Zilberman et al., PAM 2017 — reference [50] *of the Emu paper itself*),
which attributes tens of microseconds to the host stack with
microsecond-scale variance, and NAT's millisecond-scale latency to
queueing in the loaded netfilter forwarding path.

What must (and does) emerge from the model rather than being pasted in:
host latencies 1–3 orders of magnitude above the FPGA's, large
tail-to-average ratios (1.09–3x vs ~1.02 for Emu), and throughput
2–5x below the Emu services.
"""

from repro.hoststack.model import HostService, KernelPathModel, Stage
from repro.hoststack.services import (
    host_icmp_echo, host_tcp_ping, host_dns, host_nat, host_memcached,
)

__all__ = [
    "HostService", "KernelPathModel", "Stage",
    "host_icmp_echo", "host_tcp_ping", "host_dns", "host_nat",
    "host_memcached",
]
