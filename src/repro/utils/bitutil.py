"""Typed field access over byte buffers (paper Fig. 4).

The Emu library exposes ``BitUtil.Get32``/``BitUtil.Set32`` so protocol
wrappers can define named, typed properties over a raw frame.  Network
byte order (big-endian) is used throughout, matching wire formats.

All setters operate on :class:`bytearray` in place, because the wrappers
share one underlying frame buffer (the dataplane ``tdata``).
"""

from repro.errors import BitRangeError


def _check(buf, offset, nbytes):
    if offset < 0:
        raise BitRangeError("negative offset %d" % offset)
    if offset + nbytes > len(buf):
        raise BitRangeError(
            "access of %d bytes at offset %d overruns %d-byte buffer"
            % (nbytes, offset, len(buf))
        )


class BitUtil:
    """Static helpers for reading and writing big-endian fields."""

    @staticmethod
    def get(buf, offset, nbytes):
        """Read *nbytes* at *offset* as an unsigned big-endian integer."""
        _check(buf, offset, nbytes)
        return int.from_bytes(bytes(buf[offset:offset + nbytes]), "big")

    @staticmethod
    def set(buf, offset, nbytes, value):
        """Write *value* as *nbytes* big-endian bytes at *offset*."""
        _check(buf, offset, nbytes)
        if value < 0:
            raise BitRangeError("value must be unsigned, got %d" % value)
        mask = (1 << (8 * nbytes)) - 1
        buf[offset:offset + nbytes] = (value & mask).to_bytes(nbytes, "big")

    # Named-width variants mirroring the paper's API surface.

    @staticmethod
    def get8(buf, offset):
        return BitUtil.get(buf, offset, 1)

    @staticmethod
    def set8(buf, offset, value):
        BitUtil.set(buf, offset, 1, value)

    @staticmethod
    def get16(buf, offset):
        return BitUtil.get(buf, offset, 2)

    @staticmethod
    def set16(buf, offset, value):
        BitUtil.set(buf, offset, 2, value)

    @staticmethod
    def get32(buf, offset):
        return BitUtil.get(buf, offset, 4)

    @staticmethod
    def set32(buf, offset, value):
        BitUtil.set(buf, offset, 4, value)

    @staticmethod
    def get48(buf, offset):
        return BitUtil.get(buf, offset, 6)

    @staticmethod
    def set48(buf, offset, value):
        BitUtil.set(buf, offset, 6, value)

    @staticmethod
    def get64(buf, offset):
        return BitUtil.get(buf, offset, 8)

    @staticmethod
    def set64(buf, offset, value):
        BitUtil.set(buf, offset, 8, value)

    @staticmethod
    def get_bit(buf, byte_offset, bit):
        """Read a single bit; bit 7 is the most significant of the byte."""
        if not 0 <= bit <= 7:
            raise BitRangeError("bit index %d out of range" % bit)
        return (BitUtil.get8(buf, byte_offset) >> bit) & 1

    @staticmethod
    def set_bit(buf, byte_offset, bit, value):
        """Write a single bit in place."""
        if not 0 <= bit <= 7:
            raise BitRangeError("bit index %d out of range" % bit)
        byte = BitUtil.get8(buf, byte_offset)
        if value:
            byte |= 1 << bit
        else:
            byte &= ~(1 << bit) & 0xFF
        BitUtil.set8(buf, byte_offset, byte)

    @staticmethod
    def get_bits(buf, byte_offset, msb, width):
        """Read *width* bits ending-aligned below *msb* within one byte."""
        if width < 1 or msb - width + 1 < 0 or msb > 7:
            raise BitRangeError("bit field [%d:%d] out of byte" % (msb, width))
        byte = BitUtil.get8(buf, byte_offset)
        return (byte >> (msb - width + 1)) & ((1 << width) - 1)

    @staticmethod
    def set_bits(buf, byte_offset, msb, width, value):
        """Write a sub-byte bit field in place."""
        if width < 1 or msb - width + 1 < 0 or msb > 7:
            raise BitRangeError("bit field [%d:%d] out of byte" % (msb, width))
        shift = msb - width + 1
        mask = ((1 << width) - 1) << shift
        byte = BitUtil.get8(buf, byte_offset)
        byte = (byte & ~mask & 0xFF) | ((value << shift) & mask)
        BitUtil.set8(buf, byte_offset, byte)

    @staticmethod
    def get_bytes(buf, offset, nbytes):
        """Copy *nbytes* out of the buffer as immutable ``bytes``."""
        _check(buf, offset, nbytes)
        return bytes(buf[offset:offset + nbytes])

    @staticmethod
    def set_bytes(buf, offset, data):
        """Copy *data* into the buffer at *offset*."""
        _check(buf, offset, len(data))
        buf[offset:offset + len(data)] = data
