"""Wide machine words with full operator overloads (paper §3.2 (iv)).

C#'s widest primitive is 64 bits; Emu needs wider I/O buses (the NetFPGA
SUME datapath is 256 bits), so it defines user types for larger words and
"provides overloads for all of the arithmetic operators needed".

:class:`WideWord` is an immutable fixed-width unsigned integer.  All
arithmetic wraps modulo ``2**width`` — the semantics of a hardware bus —
and mixed-width arithmetic is rejected, because on hardware the widths of
both operands are explicit in the netlist.
"""

from repro.errors import WidthError


class WideWord:
    """An immutable unsigned integer of a fixed bit width."""

    __slots__ = ("_value", "_width")

    def __init__(self, value=0, width=128):
        if width <= 0:
            raise WidthError("width must be positive, got %d" % width)
        if isinstance(value, WideWord):
            value = value.value
        if not isinstance(value, int):
            raise WidthError("value must be an int, got %r" % (value,))
        self._width = width
        self._value = value & self.mask_for(width)

    @staticmethod
    def mask_for(width):
        return (1 << width) - 1

    @property
    def value(self):
        return self._value

    @property
    def width(self):
        return self._width

    @property
    def mask(self):
        return self.mask_for(self._width)

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_bytes(cls, data, width=None):
        """Big-endian bytes → word; width defaults to ``8*len(data)``."""
        if width is None:
            width = 8 * len(data)
        return cls(int.from_bytes(bytes(data), "big"), width)

    def to_bytes(self):
        """Word → big-endian bytes, padded to the word's full width."""
        nbytes = (self._width + 7) // 8
        return self._value.to_bytes(nbytes, "big")

    def _coerce(self, other):
        if isinstance(other, WideWord):
            if other.width != self._width:
                raise WidthError(
                    "width mismatch: %d vs %d" % (self._width, other.width)
                )
            return other.value
        if isinstance(other, int):
            return other
        return NotImplemented

    def _make(self, value):
        return type(self)(value, self._width) if type(self) is WideWord \
            else type(self)(value)

    # -- arithmetic (mod 2**width) --------------------------------------

    def __add__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(self._value + rhs)

    __radd__ = __add__

    def __sub__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(self._value - rhs)

    def __rsub__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(rhs - self._value)

    def __mul__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(self._value * rhs)

    __rmul__ = __mul__

    def __floordiv__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        if rhs == 0:
            raise ZeroDivisionError("wide word division by zero")
        return self._make(self._value // rhs)

    def __mod__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        if rhs == 0:
            raise ZeroDivisionError("wide word modulo by zero")
        return self._make(self._value % rhs)

    # -- bitwise ----------------------------------------------------------

    def __and__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(self._value & rhs)

    __rand__ = __and__

    def __or__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(self._value | rhs)

    __ror__ = __or__

    def __xor__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._make(self._value ^ rhs)

    __rxor__ = __xor__

    def __invert__(self):
        return self._make(~self._value)

    def __lshift__(self, amount):
        if not isinstance(amount, int) or amount < 0:
            raise WidthError("shift amount must be a non-negative int")
        return self._make(self._value << amount)

    def __rshift__(self, amount):
        if not isinstance(amount, int) or amount < 0:
            raise WidthError("shift amount must be a non-negative int")
        return self._make(self._value >> amount)

    # -- comparisons ------------------------------------------------------

    def __eq__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._value == (rhs & self.mask if isinstance(other, int)
                               else rhs)

    def __ne__(self, other):
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __lt__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._value < rhs

    def __le__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._value <= rhs

    def __gt__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._value > rhs

    def __ge__(self, other):
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self._value >= rhs

    def __hash__(self):
        return hash((self._value, self._width))

    # -- slicing: word[msb:lsb] extracts a bit field ----------------------

    def __getitem__(self, key):
        if isinstance(key, int):
            if not 0 <= key < self._width:
                raise WidthError("bit %d out of range" % key)
            return (self._value >> key) & 1
        if isinstance(key, slice):
            msb, lsb = key.start, key.stop
            if msb is None or lsb is None or key.step is not None:
                raise WidthError("slice must be word[msb:lsb]")
            if not 0 <= lsb <= msb < self._width:
                raise WidthError("slice [%s:%s] out of range" % (msb, lsb))
            width = msb - lsb + 1
            return WideWord((self._value >> lsb), width)
        raise TypeError("index must be int or slice")

    def replace(self, msb, lsb, value):
        """Return a copy with bits ``[msb:lsb]`` replaced by *value*."""
        if not 0 <= lsb <= msb < self._width:
            raise WidthError("field [%d:%d] out of range" % (msb, lsb))
        width = msb - lsb + 1
        field_mask = ((1 << width) - 1) << lsb
        if isinstance(value, WideWord):
            value = value.value
        new = (self._value & ~field_mask) | ((value << lsb) & field_mask)
        return self._make(new)

    def concat(self, other):
        """Return ``{self, other}`` — self in the high bits."""
        if not isinstance(other, WideWord):
            raise WidthError("can only concatenate WideWord")
        return WideWord((self._value << other.width) | other.value,
                        self._width + other.width)

    def __int__(self):
        return self._value

    def __index__(self):
        return self._value

    def __bool__(self):
        return bool(self._value)

    def __repr__(self):
        return "%s(0x%x, width=%d)" % (
            type(self).__name__, self._value, self._width)


def make_width(width, name=None):
    """Create a fixed-width subclass of :class:`WideWord`."""

    class _Fixed(WideWord):
        __slots__ = ()

        def __init__(self, value=0):
            super().__init__(value, width)

    _Fixed.__name__ = name or ("U%d" % width)
    _Fixed.__qualname__ = _Fixed.__name__
    return _Fixed


U128 = make_width(128)
U256 = make_width(256)
U512 = make_width(512)
