"""General-purpose utilities: bit manipulation and wide machine words.

These mirror the two lowest-level pieces of the Emu standard library:

* ``BitUtil`` (paper Fig. 4) — typed getters/setters over byte buffers so
  protocol fields "take on names and types" without unsafe casts.
* Wide words (paper §3.2 (iv)) — C#'s largest primitive is the 64-bit
  word, so Emu defines user types for wider I/O buses and overloads all
  arithmetic operators.  :class:`~repro.utils.words.WideWord` and its
  fixed-width subclasses (``U128`` … ``U512``) provide the same thing.
"""

from repro.utils.bitutil import BitUtil
from repro.utils.words import WideWord, U128, U256, U512, make_width

__all__ = ["BitUtil", "WideWord", "U128", "U256", "U512", "make_width"]
