"""The asyncio serving front-end: any started deployment behind a
real loopback socket.

    dep = deploy("memcached").on("cluster", shards=4).start()
    server = SocketServer(dep).start()       # or dep.serve(host, port)
    host, port = server.address
    ... real clients send datagrams / streams ...
    server.stop()
    print(server.report.text())

One asyncio event loop runs in a background thread.  Received payloads
are *not* dispatched one at a time: each loop tick drains everything
that arrived since the last tick and pushes the whole group through
``deployment.send_batch`` — the same entry point the -O3 lockstep SoA
engine rides — so socket serving batches exactly like the simulated
open-loop path does.

Robustness contract (regression-tested by the garbage-flood suite): a
malformed, oversized, or unparseable payload is counted — as
``service_drops`` on the deployment's metrics registry and in the
:class:`~repro.engine.openloop.OpenLoopReport`-shaped serve report —
and dropped.  It never raises out of the event loop and never wedges
the server; a stream peer that overflows its reassembly buffer loses
its connection, nothing more.

Observability mirrors the in-process open-loop path: with
``.with_trace()`` every served request emits the same
request/queue/kernel span family on its server's track (wall-clock
nanoseconds instead of virtual ones — the only difference); with
``.with_timeseries`` / ``.with_slo`` a sampler task flushes windows to
the attached :class:`~repro.obs.series.TimeSeries` and the burn-rate
monitor judges socket traffic exactly as it judges simulated arrivals.
"""

import asyncio
import socket
import threading
import time

from repro.engine.openloop import OpenLoopReport
from repro.errors import ReproError, ServeError
from repro.serve.spec import resolve_binding

#: Ingest bound on payloads waiting for a drain tick (tail-drop above
#: it, like the model's bounded ingest queues).
DEFAULT_CAPACITY = 4096
#: Most payloads one drain tick pushes through ``send_batch``.
DEFAULT_BATCH = 64


class _SocketArrivals:
    """Duck-typed arrival spec for the serve report: socket arrivals
    have no model process, so the report names them ``socket``."""

    process = "socket"

    def __init__(self, capacity):
        self.qps = 0.0
        self.capacity = capacity


class _IngestGauge:
    """Live ingest depth for time-series boundary sampling."""

    def __init__(self):
        self.depth = 0


class SocketServer:
    """Bridge real sockets into a started deployment."""

    def __init__(self, deployment, host="127.0.0.1", port=0,
                 transport=None, series=None, capacity=DEFAULT_CAPACITY,
                 batch=DEFAULT_BATCH):
        if deployment.backend is None:
            raise ServeError("deployment is not started "
                             "(call .start() before serving)")
        self.deployment = deployment
        self.binding = resolve_binding(deployment.spec, transport)
        self.host = host
        self.port = int(port)
        self.capacity = int(capacity)
        self.batch = max(1, int(batch))
        self.series = series
        registry = deployment.metrics.registry
        self._service_drops = registry.counter("service_drops")
        self._queue_drops = registry.counter("queue_drops")
        num_servers, self._route = \
            deployment.backend.open_loop_servers()
        self._report = OpenLoopReport(_SocketArrivals(self.capacity),
                                      0, num_servers)
        self._detail_of = getattr(deployment.backend,
                                  "open_loop_trace_detail", None)
        self._gauge = _IngestGauge()
        self._pending = []           # (payload, reply, depth, t_arr_ns)
        self._drain_scheduled = False
        self._seq = 0
        self._loop = None
        self._thread = None
        self._udp_sock = None
        self._tcp_server = None
        self._sampler_task = None
        self._t0_ns = None
        self._final_ns = 0
        self._running = False

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Bind the socket (port 0 = ephemeral) and begin serving;
        returns ``self`` with :attr:`address` resolved."""
        if self._running:
            raise ServeError("server is already running")
        self._t0_ns = time.monotonic_ns()
        tracer = self.deployment.tracer
        if tracer is not None:
            tracer.bind_clock(self._now_ns)
            names = getattr(self.deployment.backend,
                            "open_loop_server_names", None)
            names = names() if names is not None else \
                ["server%d" % i for i in range(len(self._report.servers))]
            for index, name in enumerate(names):
                tracer.name_track(index, name)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-serve-%s" % self.deployment.spec.name,
            daemon=True)
        self._thread.start()
        try:
            asyncio.run_coroutine_threadsafe(
                self._open(), self._loop).result(timeout=10)
        except BaseException:
            self._shutdown_loop()
            raise
        self._running = True
        return self

    async def _open(self):
        loop = asyncio.get_running_loop()
        if self.binding.transport == "udp":
            # A raw non-blocking socket on add_reader, not an asyncio
            # DatagramProtocol: the protocol path delivers exactly one
            # datagram per loop iteration, which caps ingest at the
            # epoll wakeup rate.  Reading a bounded burst per wakeup
            # amortizes that overhead across the batch.
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                # The kernel buffer is the real ingress queue (the
                # default ~212KB is a couple hundred datagrams — far
                # too shallow for open-loop bursts).
                sock.setsockopt(socket.SOL_SOCKET,
                                socket.SO_RCVBUF, 1 << 22)
            except OSError:
                pass
            sock.setblocking(False)
            sock.bind((self.host, self.port))
            self._udp_sock = sock
            self.host, self.port = sock.getsockname()[:2]
            loop.add_reader(sock.fileno(), self._udp_ready)
        else:
            server = await asyncio.start_server(
                self._serve_stream, self.host, self.port)
            self._tcp_server = server
            self.host, self.port = \
                server.sockets[0].getsockname()[:2]
        if self.series is not None:
            self._sampler_task = loop.create_task(self._sampler())

    def stop(self):
        """Drain what already arrived, close the socket, finalize the
        report (and the time-series tail window).  Idempotent."""
        if not self._running:
            return self.report
        self._running = False
        asyncio.run_coroutine_threadsafe(
            self._close(), self._loop).result(timeout=10)
        self._shutdown_loop()
        self._final_ns = max(1, self._now_ns())
        self._report.duration_ns = self._final_ns
        if self.series is not None:
            self._gauge.depth = len(self._pending)
            self.series.finish(self._final_ns, self._report,
                               [self._gauge])
        return self.report

    async def _close(self):
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            self._sampler_task = None
        # Stop the intake first, then drain what already made it in.
        if self._udp_sock is not None:
            self._loop.remove_reader(self._udp_sock.fileno())
            self._udp_ready()        # last kernel-buffered burst
            self._udp_sock.close()
            self._udp_sock = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        while self._pending:
            self._drain()

    def _shutdown_loop(self):
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._thread = None

    @property
    def address(self):
        """The bound ``(host, port)``."""
        return self.host, self.port

    @property
    def report(self):
        """The live :class:`~repro.engine.openloop.OpenLoopReport` of
        socket traffic (same shape as a simulated open-loop run)."""
        if self._running:
            self._report.duration_ns = max(1, self._now_ns())
        return self._report

    def _now_ns(self):
        return time.monotonic_ns() - self._t0_ns

    # -- ingest (event-loop thread only) -------------------------------------

    def _enqueue(self, payload, reply):
        """Admit one received payload; *reply* is
        ``callable(wire_bytes)`` sending the response back out."""
        report = self._report
        report.offered += 1
        depth = len(self._pending)
        if depth >= self.capacity:
            report.queue_drops += 1
            self._queue_drops.inc()
            return
        report.admitted += 1
        self._pending.append((payload, reply, depth, self._now_ns()))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self._loop.call_soon(self._drain)

    def _drain(self):
        """One tick's batch: encap everything pending, push the valid
        frames through ``send_batch``, decap and send the replies."""
        self._drain_scheduled = False
        group, self._pending = self._pending[:self.batch], \
            self._pending[self.batch:]
        if self._pending and not self._drain_scheduled:
            self._drain_scheduled = True
            self._loop.call_soon(self._drain)
        if not group:
            return
        report = self._report
        tracer = self.deployment.tracer
        jobs = []                    # (frame, reply, index, t_arr, ...)
        for payload, reply, depth, t_arr in group:
            if len(payload) > self.binding.max_payload:
                self._drop(t_arr, detail="oversized")
                continue
            seq = self._seq
            try:
                frame = self.binding.encap(payload, seq)
                self._seq += 1
                index = self._route(frame)
            except Exception:
                self._drop(t_arr, detail="malformed")
                continue
            report.servers[index].sample(depth)
            jobs.append((frame, reply, index, t_arr, seq))
        if not jobs:
            return
        t_disp = self._now_ns()
        details = None
        if tracer is not None:
            details = []
            for frame, _, _, _, seq in jobs:
                detail = {"seq": seq}
                if self._detail_of is not None:
                    detail.update(self._detail_of(frame))
                details.append(detail)
        results = self._send_group([frame for frame, _, _, _, _ in jobs])
        t_done = self._now_ns()
        busy_share = (t_done - t_disp) / len(jobs)
        for number, ((frame, reply, index, t_arr, _), outcome) in \
                enumerate(zip(jobs, results)):
            emitted = outcome[0] if outcome is not None else []
            report.completed += 1
            report.finished_ns = max(report.finished_ns, t_done)
            report.servers[index].busy_ns += busy_share
            wire = None
            if emitted:
                try:
                    wire = self.binding.wrap_reply(
                        self.binding.decap(emitted[0][1]))
                except Exception:
                    wire = None
            if wire is not None:
                report.replies += 1
                latency_ns = t_done - t_arr
                report.latencies_ns.append(latency_ns)
                if self.series is not None:
                    self.series.observe_latency(latency_ns)
                try:
                    reply(wire)
                except Exception:
                    pass             # peer went away; reply is lost
            else:
                report.service_drops += 1
                self._service_drops.inc()
            if tracer is not None:
                self._trace_request(tracer, details[number], index,
                                    t_arr, t_disp, t_done,
                                    dropped=wire is None)

    def _send_group(self, frames):
        """The batched fast path, with a per-frame fallback so one
        poisoned frame can never take a whole batch down."""
        dep = self.deployment
        try:
            return dep.send_batch(frames)
        except ReproError:
            results = []
            for frame in frames:
                try:
                    results.append(dep.send(frame))
                except ReproError:
                    results.append(None)
            return results

    def _drop(self, t_arr, detail):
        report = self._report
        report.completed += 1
        report.service_drops += 1
        self._service_drops.inc()
        tracer = self.deployment.tracer
        if tracer is not None:
            now = self._now_ns()
            tracer.span("request", t_arr, now - t_arr, track=0,
                        cat="request",
                        args={"dropped": True, "reason": detail})

    def _trace_request(self, tracer, detail, index, t_arr, t_disp,
                       t_done, dropped):
        args = dict(detail, dropped=True) if dropped else detail
        tracer.span("request", t_arr, t_done - t_arr, track=index,
                    cat="request", args=args)
        tracer.span("queue", t_arr, t_disp - t_arr, track=index,
                    cat="queue")
        kernel_name = "kernel"
        if "shard" in detail:
            kernel_name = "hop:%s" % detail["shard"]
        elif "core" in detail:
            kernel_name = "kernel@core%s" % detail["core"]
        tracer.span(kernel_name, t_disp, t_done - t_disp, track=index,
                    cat="request")

    # -- transports ----------------------------------------------------------

    def _udp_ready(self):
        """Ingest a bounded burst of datagrams per readiness wakeup;
        one datagram = one request payload."""
        sock = self._udp_sock
        if sock is None:
            return
        for _ in range(max(self.batch, 64)):
            try:
                data, addr = sock.recvfrom(65535)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                break                # closing; ICMP from dead clients
            self._enqueue(data, lambda wire, addr=addr:
                          sock.sendto(wire, addr))

    async def _serve_stream(self, reader, writer):
        decoder = self.binding.frame_decoder()

        def reply(wire):
            writer.write(wire)

        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    payloads = decoder.feed(data)
                except ReproError:
                    # Poisoned stream: account it, drop the peer.
                    self._report.offered += 1
                    self._report.completed += 1
                    self._report.service_drops += 1
                    self._service_drops.inc()
                    break
                for payload in payloads:
                    self._enqueue(payload, reply)
        finally:
            # The peer may half-close after its last request; answer
            # everything already admitted before dropping the writer.
            while self._pending:
                self._drain()
            try:
                await writer.drain()
                writer.close()
            except Exception:
                pass

    async def _sampler(self):
        series = self.series
        period_s = max(series.window_ns / 1e9, 0.001)
        while True:
            await asyncio.sleep(period_s)
            self._gauge.depth = len(self._pending)
            series.flush(self._now_ns(), self._report, [self._gauge])

    def __repr__(self):
        state = "serving" if self._running else "stopped"
        return "<SocketServer %s/%s on %s:%s, %s>" % (
            self.deployment.spec.name, self.binding.transport,
            self.host, self.port, state)

