"""uptest-style external load generator for served deployments.

    python -m repro.serve.loadgen --service memcached \\
        --host 127.0.0.1 --port 11211 --qps 2000 --duration 2 \\
        --tsv /tmp/loadgen.tsv --json /tmp/loadgen.json

Runs in its own process against a :class:`~repro.serve.server.
SocketServer` (or any real server speaking the service's protocol),
stdlib sockets only.  Each probe comes from the service binding's
oracle: a hash-tagged request whose *exact* reply bytes are known in
advance, so verification is byte-for-byte — a cache cannot answer (the
tags are new every run) and an intercepting middlebox that rewrites
replies is caught (uptest's marco/polo semantics).  Exit codes follow
the same scheme:

* ``0``  — every reply arrived and verified;
* ``7``  — the server was unreachable (nothing verified at all);
* ``13`` — replies went missing (possible blackholing / overload);
* ``17`` — replies arrived but failed byte-for-byte verification
  (tampering / interception / wrong service behind the port).

Artifacts: a latency TSV (one row per probe + a ``#``-prefixed summary
footer carrying ``verify_failures`` et al.) and an
:class:`~repro.engine.openloop.OpenLoopReport`-shaped JSON, so
socket-driven runs land in the same analysis pipelines as simulated
open-loop runs.  Both modes are supported: closed loop (one
outstanding request, RTT latency) and open loop (seeded poisson /
uniform arrivals independent of completions).
"""

import argparse
import json
import random
import selectors
import socket
import sys
import time
from collections import deque

FAILURE_EXIT_CODE = 7            # could not reach the server at all
LOSS_EXIT_CODE = 13              # replies went missing
INTERCEPTION_EXIT_CODE = 17      # replies failed verification

TSV_HEADER = "seq\tt_send_ms\tlatency_ms\tstatus\tdetail"
STATUSES = ("ok", "verify_fail", "lost", "error")

#: OpenLoopReport.snapshot() keys the JSON artifact must carry (the
#: validator checks them; keep in sync with the README shape section).
REPORT_KEYS = (
    "process", "offered_qps", "achieved_qps", "offered", "admitted",
    "completed", "replies", "queue_drops", "service_drops",
    "drop_rate", "p50_latency_us", "p99_latency_us", "p999_latency_us",
    "avg_latency_us", "max_queue_depth", "mean_queue_depth", "servers",
)


class LoadGenConfig:
    """Everything one run needs (see the CLI flags of the same names)."""

    def __init__(self, service, host, port, transport=None,
                 mode="open", process="poisson", qps=1000.0,
                 duration_s=1.0, requests=100, seed=7, timeout_s=2.0):
        self.service = service
        self.host = host
        self.port = int(port)
        self.transport = transport
        self.mode = mode
        self.process = process
        self.qps = float(qps)
        self.duration_s = float(duration_s)
        self.requests = int(requests)
        self.seed = seed
        self.timeout_s = float(timeout_s)


class LoadGenResult:
    """Counters + per-probe records + derived artifacts."""

    def __init__(self, config, binding):
        self.config = config
        self.transport = binding.transport
        self.records = []        # [t_send_ns, latency_ns, status, detail]
        self.sent = 0
        self.ok = 0
        self.verify_failures = 0
        self.lost = 0
        self.connect_failures = 0
        self.elapsed_ns = 1
        self.last_reply_ns = None        # run-relative; excludes linger

    # -- verdict -------------------------------------------------------------

    @property
    def exit_code(self):
        if self.ok == 0 and self.connect_failures:
            return FAILURE_EXIT_CODE
        if self.verify_failures:
            return INTERCEPTION_EXIT_CODE
        if self.lost or self.connect_failures:
            return LOSS_EXIT_CODE
        return 0

    @property
    def active_ns(self):
        """The span replies actually arrived in — the throughput
        denominator (the post-run linger window waiting on losses
        would otherwise deflate achieved_qps)."""
        if self.last_reply_ns:
            return self.last_reply_ns
        return self.elapsed_ns

    @property
    def latencies_ns(self):
        return [record[1] for record in self.records
                if record[2] == "ok"]

    # -- artifacts -----------------------------------------------------------

    def to_tsv(self):
        lines = [TSV_HEADER]
        for seq, (t_send, latency, status, detail) in \
                enumerate(self.records):
            lines.append("%d\t%.3f\t%s\t%s\t%s" % (
                seq, t_send / 1e6,
                "n/a" if latency is None else "%.3f" % (latency / 1e6),
                status, detail or "-"))
        for key, value in self.summary().items():
            lines.append("# %s\t%s" % (key, value))
        return "\n".join(lines) + "\n"

    def summary(self):
        return {
            "service": self.config.service,
            "transport": self.transport,
            "mode": self.config.mode,
            "sent": self.sent,
            "ok": self.ok,
            "verify_failures": self.verify_failures,
            "lost": self.lost,
            "connect_failures": self.connect_failures,
            "exit_code": self.exit_code,
        }

    def report(self):
        """The OpenLoopReport-shaped dict (plus the verification
        extras under unambiguous keys)."""
        latencies = sorted(self.latencies_ns)
        replies = self.ok + self.verify_failures
        out = {
            "process": "loadgen-%s" % self.config.mode,
            "offered_qps": self.sent * 1e9 / self.elapsed_ns,
            "achieved_qps": self.ok * 1e9 / self.active_ns,
            "offered": self.sent,
            "admitted": self.sent,
            "completed": replies + self.lost,
            "replies": replies,
            "queue_drops": 0,
            "service_drops": self.lost,
            "drop_rate": (self.lost / self.sent) if self.sent else 0.0,
            "p50_latency_us": _percentile_us(latencies, 0.50),
            "p99_latency_us": _percentile_us(latencies, 0.99),
            "p999_latency_us": _percentile_us(latencies, 0.999),
            "avg_latency_us": (sum(latencies) / len(latencies) / 1e3)
            if latencies else None,
            "max_queue_depth": 0,
            "mean_queue_depth": 0.0,
            "servers": 1,
        }
        out.update({"verify_failures": self.verify_failures,
                    "lost": self.lost,
                    "connect_failures": self.connect_failures,
                    "exit_code": self.exit_code,
                    "service": self.config.service,
                    "transport": self.transport,
                    "target": "%s:%d" % (self.config.host,
                                         self.config.port)})
        return out

    def text(self):
        latencies = sorted(self.latencies_ns)
        lines = [
            "loadgen: %s/%s against %s:%d (%s loop)"
            % (self.config.service, self.transport, self.config.host,
               self.config.port, self.config.mode),
            "sent=%d ok=%d verify_failures=%d lost=%d "
            "connect_failures=%d"
            % (self.sent, self.ok, self.verify_failures, self.lost,
               self.connect_failures),
            "achieved_qps=%.1f p50=%s p99=%s"
            % (self.ok * 1e9 / self.active_ns,
               _fmt_us(_percentile_us(latencies, 0.50)),
               _fmt_us(_percentile_us(latencies, 0.99))),
            "exit=%d (%s)" % (self.exit_code, {
                0: "verified", FAILURE_EXIT_CODE: "unreachable",
                LOSS_EXIT_CODE: "replies lost",
                INTERCEPTION_EXIT_CODE: "verification failed",
            }[self.exit_code]),
        ]
        return "\n".join(lines)


def _percentile_us(sorted_ns, fraction):
    if not sorted_ns:
        return None
    if len(sorted_ns) == 1:
        return sorted_ns[0] / 1e3
    rank = fraction * (len(sorted_ns) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_ns) - 1)
    value = sorted_ns[low] + (sorted_ns[high] - sorted_ns[low]) * \
        (rank - low)
    return value / 1e3


def _fmt_us(value):
    return "n/a" if value is None else "%.1fus" % value


def _arrival_times_ns(config):
    """Seeded open-loop send schedule (ns offsets from run start)."""
    rng = random.Random("%s/loadgen/%s" % (config.seed, config.process))
    gap_ns = 1e9 / config.qps
    horizon = config.duration_s * 1e9
    times, now = [], 0.0
    while True:
        if config.process == "poisson":
            now += rng.expovariate(1.0) * gap_ns
        else:
            now += gap_ns
        if now >= horizon:
            return times
        times.append(int(now))


def run_loadgen(config, binding=None):
    """Drive one configured run; returns a :class:`LoadGenResult`.

    *binding* defaults to the registry service's transport binding —
    injectable so tests can aim a binding at a hostile server.
    """
    if binding is None:
        from repro.serve.spec import resolve_binding
        from repro.services.catalog import registry
        specs = registry()
        if config.service not in specs:
            raise SystemExit("unknown service %r (registry has: %s)"
                             % (config.service,
                                ", ".join(sorted(specs))))
        binding = resolve_binding(specs[config.service],
                                  config.transport)
    result = LoadGenResult(config, binding)
    t0 = time.perf_counter_ns()
    try:
        if binding.transport == "udp":
            _run_udp(config, binding, result, t0)
        else:
            _run_tcp(config, binding, result, t0)
    finally:
        result.elapsed_ns = max(1, time.perf_counter_ns() - t0)
    return result


def _probes(config, binding, count):
    out = []
    for seq in range(count):
        payload, expected = binding.probe(config.seed, seq)
        out.append((binding.wrap(payload),
                    bytes(binding.wrap_reply(expected))))
    return out


# -- UDP ---------------------------------------------------------------------

def _run_udp(config, binding, result, t0):
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.connect((config.host, config.port))
    sock.setblocking(False)
    try:
        if config.mode == "closed":
            _udp_closed(config, binding, result, sock, t0)
        else:
            _udp_open(config, binding, result, sock, t0)
    finally:
        sock.close()


def _udp_closed(config, binding, result, sock, t0):
    sel = selectors.DefaultSelector()
    sel.register(sock, selectors.EVENT_READ)
    stale = set()                    # expected bytes of timed-out probes
    for wire, expected in _probes(config, binding, config.requests):
        t_send = time.perf_counter_ns() - t0
        try:
            sock.send(wire)
        except OSError:
            result.connect_failures += 1
            result.records.append([t_send, None, "error",
                                   "send failed"])
            result.sent += 1
            continue
        result.sent += 1
        deadline = time.perf_counter() + config.timeout_s
        record = [t_send, None, "lost", "-"]
        while time.perf_counter() < deadline:
            if not sel.select(timeout=deadline - time.perf_counter()):
                break
            try:
                data = sock.recv(65535)
            except ConnectionRefusedError:
                result.connect_failures += 1
                record = [t_send, None, "error", "connection refused"]
                break
            except BlockingIOError:
                continue
            if data == expected:
                latency = time.perf_counter_ns() - t0 - t_send
                record = [t_send, latency, "ok", "-"]
                result.ok += 1
                result.last_reply_ns = t_send + latency
                break
            if data in stale:
                continue             # late reply to a lost probe
            latency = time.perf_counter_ns() - t0 - t_send
            record = [t_send, latency, "verify_fail",
                      "reply mismatch (%d bytes)" % len(data)]
            result.verify_failures += 1
            break
        if record[2] == "lost":
            result.lost += 1
            stale.add(expected)
        result.records.append(record)
    sel.close()


def _udp_open(config, binding, result, sock, t0):
    times = _arrival_times_ns(config)
    probes = _probes(config, binding, len(times))
    result.records = [[None, None, "lost", "-"] for _ in probes]
    pending = {}                     # expected bytes -> deque of seq
    in_flight = 0
    sel = selectors.DefaultSelector()
    sel.register(sock, selectors.EVENT_READ)
    index = 0
    linger_ns = config.timeout_s * 1e9
    horizon_ns = config.duration_s * 1e9 + linger_ns
    while True:
        now = time.perf_counter_ns() - t0
        while index < len(times) and times[index] <= now:
            wire, expected = probes[index]
            t_send = time.perf_counter_ns() - t0
            result.records[index][0] = t_send
            try:
                sock.send(wire)
                pending.setdefault(expected, deque()).append(
                    (index, t_send))
                in_flight += 1
            except OSError:
                result.connect_failures += 1
                result.records[index][2:] = ["error", "send failed"]
            result.sent += 1
            index += 1
        if index >= len(times) and (not in_flight or now > horizon_ns):
            break
        wait = 0.002 if index >= len(times) else \
            max(0.0, (times[index] - now) / 1e9)
        if sel.select(timeout=min(wait, 0.002)):
            while True:
                try:
                    data = sock.recv(65535)
                except (BlockingIOError, InterruptedError):
                    break
                except ConnectionRefusedError:
                    result.connect_failures += 1
                    continue
                queue = pending.get(data)
                t_recv = time.perf_counter_ns() - t0
                if queue:
                    seq, t_send = queue.popleft()
                    if not queue:
                        del pending[data]
                    in_flight -= 1
                    result.records[seq][1] = t_recv - t_send
                    result.records[seq][2:] = ["ok", "-"]
                    result.ok += 1
                    result.last_reply_ns = t_recv
                else:
                    result.verify_failures += 1
                    # Attribute to the oldest unresolved probe.
                    seq = _oldest_pending(pending)
                    if seq is not None:
                        entry, t_send = seq
                        in_flight -= 1
                        result.records[entry][1] = t_recv - t_send
                        result.records[entry][2:] = [
                            "verify_fail",
                            "reply mismatch (%d bytes)" % len(data)]
    for queue in pending.values():
        for seq, _ in queue:
            result.lost += 1
            result.records[seq][2:] = ["lost", "no reply within %.1fs"
                                       % config.timeout_s]
    sel.close()


def _oldest_pending(pending):
    """Pop the oldest in-flight (seq, t_send) across all queues."""
    oldest_key, oldest = None, None
    for key, queue in pending.items():
        if queue and (oldest is None or queue[0][0] < oldest[0]):
            oldest_key, oldest = key, queue[0]
    if oldest_key is None:
        return None
    queue = pending[oldest_key]
    queue.popleft()
    if not queue:
        del pending[oldest_key]
    return oldest


# -- TCP ---------------------------------------------------------------------

def _run_tcp(config, binding, result, t0):
    count = config.requests if config.mode == "closed" else None
    times = None
    if config.mode == "open":
        times = _arrival_times_ns(config)
        count = len(times)
    probes = _probes(config, binding, count)
    result.records = [[None, None, "lost", "-"] for _ in probes]
    try:
        sock = socket.create_connection(
            (config.host, config.port), timeout=config.timeout_s)
    except OSError:
        result.connect_failures += 1
        result.records = []
        return
    sock.setblocking(False)
    sel = selectors.DefaultSelector()
    sel.register(sock, selectors.EVENT_READ)
    expected_queue = deque()         # (seq, t_send, expected wire)
    buffer = bytearray()
    poisoned = False

    def pump(deadline):
        """Absorb replies until *deadline* or the queue drains."""
        nonlocal poisoned
        while expected_queue and not poisoned:
            budget = deadline - time.perf_counter()
            if budget <= 0 or not sel.select(timeout=budget):
                return
            try:
                data = sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                poisoned = True
                return
            if not data:
                poisoned = True      # server closed mid-conversation
                return
            buffer.extend(data)
            while expected_queue and \
                    len(buffer) >= len(expected_queue[0][2]):
                seq, t_send, expected = expected_queue[0]
                got = bytes(buffer[:len(expected)])
                t_recv = time.perf_counter_ns() - t0
                if got == expected:
                    expected_queue.popleft()
                    del buffer[:len(expected)]
                    result.records[seq][1] = t_recv - t_send
                    result.records[seq][2:] = ["ok", "-"]
                    result.ok += 1
                    result.last_reply_ns = t_recv
                    result.last_reply_ns = t_recv
                else:
                    # Stream is misaligned; no resync is possible.
                    expected_queue.popleft()
                    result.records[seq][1] = t_recv - t_send
                    result.records[seq][2:] = [
                        "verify_fail", "stream mismatch at +%d"
                        % (t_recv // 1000000)]
                    result.verify_failures += 1
                    poisoned = True
                    break

    for seq, (wire, expected) in enumerate(probes):
        if poisoned:
            break
        if times is not None:
            while time.perf_counter_ns() - t0 < times[seq]:
                pump(time.perf_counter() + 0.0005)
        t_send = time.perf_counter_ns() - t0
        result.records[seq][0] = t_send
        try:
            sock.sendall(wire)
        except OSError:
            result.connect_failures += 1
            result.records[seq][2:] = ["error", "send failed"]
            result.sent += 1
            poisoned = True
            break
        result.sent += 1
        expected_queue.append((seq, t_send, expected))
        if config.mode == "closed":
            pump(time.perf_counter() + config.timeout_s)
    if not poisoned:
        pump(time.perf_counter() + config.timeout_s)
    for seq, _, _ in expected_queue:
        result.lost += 1
        result.records[seq][2:] = ["lost", "no reply within %.1fs"
                                   % config.timeout_s]
    sel.close()
    sock.close()
    result.records = result.records[:max(result.sent, 1) if result.sent
                                    else 0]


# -- CLI ---------------------------------------------------------------------

def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="External uptest-style load generator: hash-tagged "
                    "probes, byte-for-byte reply verification, latency "
                    "TSV + OpenLoopReport-shaped JSON.")
    parser.add_argument("--service", required=True,
                        help="registry service name (the oracle)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--transport", default=None,
                        choices=["udp", "tcp"],
                        help="default: the service's primary transport")
    parser.add_argument("--mode", default="open",
                        choices=["open", "closed"])
    parser.add_argument("--process", default="poisson",
                        choices=["poisson", "uniform"],
                        help="open-loop arrival process")
    parser.add_argument("--qps", type=float, default=1000.0,
                        help="open-loop offered rate")
    parser.add_argument("--duration", type=float, default=1.0,
                        help="open-loop run length in seconds")
    parser.add_argument("--requests", type=int, default=100,
                        help="closed-loop probe count")
    parser.add_argument("--seed", default="7")
    parser.add_argument("--timeout", type=float, default=2.0,
                        help="per-reply / linger timeout in seconds")
    parser.add_argument("--tsv", metavar="PATH", default=None,
                        help="write the latency TSV here")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the report JSON here")
    return parser


def main(argv=None):
    args = _parser().parse_args(argv)
    config = LoadGenConfig(
        args.service, args.host, args.port, transport=args.transport,
        mode=args.mode, process=args.process, qps=args.qps,
        duration_s=args.duration, requests=args.requests,
        seed=args.seed, timeout_s=args.timeout)
    result = run_loadgen(config)
    if args.tsv:
        with open(args.tsv, "w") as handle:
            handle.write(result.to_tsv())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.report(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    print(result.text())
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
