"""Real-socket serving for deployments (see :mod:`repro.serve.spec`
for the transport bindings and :mod:`repro.serve.server` for the
asyncio front-end; ``python -m repro.serve.loadgen`` is the external
uptest-style load generator)."""

from repro.serve.spec import (
    LengthPrefixDecoder, MemcachedAsciiDecoder, ServeSpec,
    TransportBinding, hash_tag, resolve_binding,
)
from repro.serve.server import SocketServer

__all__ = [
    "LengthPrefixDecoder", "MemcachedAsciiDecoder", "ServeSpec",
    "SocketServer", "TransportBinding", "hash_tag", "resolve_binding",
]
