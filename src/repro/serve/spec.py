"""Per-service socket transports: how raw socket bytes become model
frames and back.

The deployment layer speaks :class:`~repro.net.packet.Frame` — full
Ethernet+IPv4 frames, because that is what the paper's services parse.
A socket client speaks application payloads.  A
:class:`TransportBinding` is the adapter between the two for one
(service, transport) pair:

* ``encap(payload, seq)``  — wrap a received payload into the request
  frame the service expects (catalog addresses, correct ports,
  checksums);
* ``decap(reply_frame)``   — extract the application payload from the
  service's reply frame (what goes back out the socket);
* ``probe(seed, seq)``     — the verification oracle: one hash-tagged
  ``(request_payload, expected_reply_payload)`` pair.  Payloads embed
  a seeded hash tag (uptest-style) so caches and interceptors cannot
  answer from history: every probe is new under a new seed, and the
  expected reply is a byte-exact function of the request;
* ``frame_decoder()``      — for stream transports, a fresh decoder
  that splits the TCP byte stream into per-request payloads
  (length-prefix framing for DNS-over-TCP, CRLF/data-block framing
  for the memcached ASCII protocol);
* ``wrap`` / ``wrap_reply``— the on-the-wire encoding around a payload
  (the 2-byte length prefix on DNS-over-TCP; identity elsewhere).

A :class:`ServeSpec` bundles a service's bindings and is what a
:class:`~repro.deploy.spec.ServiceSpec` carries in its ``serve`` field.
The TCP transport is a *socket-side* concern only: in the model the
service still parses a UDP-encapsulated frame — the binding is exactly
the kernel-bypass shim a hardware deployment would put in front of the
NetFPGA pipeline.

Everything here imports only the protocol codecs and the packet layer,
so the serving front-end, the external load generator, and the service
catalog can all share one oracle without import cycles.
"""

import hashlib

from repro.core.protocols.dns import DNSQuestion, RCode, \
    build_dns_query, build_dns_response
from repro.core.protocols.icmp import HEADER_BYTES as ICMP_HEADER_BYTES
from repro.core.protocols.icmp import ICMPWrapper, build_icmp_echo_request
from repro.core.protocols.memcached import build_udp_frame_header, \
    split_udp_frame
from repro.core.protocols.udp import UDPWrapper, build_udp
from repro.errors import ParseError, ServeError
from repro.net.packet import Frame

#: Largest datagram/request payload a binding accepts (larger input is
#: counted as a service drop, never parsed): the model's frames top out
#: at 1514 bytes, 42 of which are Ethernet+IPv4+UDP headers.
MAX_PAYLOAD_BYTES = 1472

#: Upper bound on a stream decoder's reassembly buffer; a peer that
#: streams this much without completing one request is garbage and the
#: connection is dropped (never an unbounded buffer).
MAX_STREAM_BUFFER = 1 << 20

#: uptest-style cache-busting constant, mixed into every probe tag.
HASH_CONST = b"Bust those caches!"


def hash_tag(seed, seq, width=12):
    """A short hex tag unique to ``(seed, seq)`` — embedded in probe
    payloads so no cache or interceptor can answer from history."""
    digest = hashlib.sha256(
        b"%s/%s/%d" % (HASH_CONST, str(seed).encode("utf-8"), seq))
    return digest.hexdigest()[:width].encode("ascii")


class TransportBinding:
    """One (service, transport) adapter: socket bytes <-> model frames."""

    def __init__(self, transport, encap, decap, probe,
                 frame_decoder=None, wrap=None, wrap_reply=None,
                 max_payload=MAX_PAYLOAD_BYTES):
        if transport not in ("udp", "tcp"):
            raise ServeError("unknown transport %r (udp or tcp)"
                             % (transport,))
        if transport == "tcp" and frame_decoder is None:
            raise ServeError("tcp bindings need a frame_decoder "
                             "(stream framing is not optional)")
        self.transport = transport
        self.encap = encap
        self.decap = decap
        self.probe = probe
        self.frame_decoder = frame_decoder
        self.wrap = wrap if wrap is not None else _identity
        self.wrap_reply = wrap_reply if wrap_reply is not None \
            else _identity
        self.max_payload = int(max_payload)

    def __repr__(self):
        return "TransportBinding(%s)" % (self.transport,)


def _identity(payload):
    return payload


class ServeSpec:
    """A service's socket capability: its transport bindings plus the
    protocol's canonical port (documentation/default only — ``--serve``
    always names an explicit address)."""

    def __init__(self, bindings, port=0):
        self.bindings = tuple(bindings)
        if not self.bindings:
            raise ServeError("a ServeSpec needs at least one binding "
                             "(use serve=None for unservable services)")
        self.port = int(port)

    @property
    def transports(self):
        return tuple(binding.transport for binding in self.bindings)

    @property
    def frame_decoder(self):
        """The first stream binding's decoder factory, if any."""
        for binding in self.bindings:
            if binding.frame_decoder is not None:
                return binding.frame_decoder
        return None

    def binding(self, transport=None):
        if transport is None:
            return self.bindings[0]
        for binding in self.bindings:
            if binding.transport == transport:
                return binding
        raise ServeError("no %r transport (have: %s)"
                         % (transport, ", ".join(self.transports)))

    def __repr__(self):
        return "ServeSpec(%s, port=%d)" % (
            "+".join(self.transports), self.port)


def resolve_binding(spec, transport=None):
    """The :class:`TransportBinding` to serve *spec* over, or a
    :class:`~repro.errors.ServeError` that names the reason — an
    unservable service must fail fast and loudly, never hang."""
    name = getattr(spec, "name", spec)
    serve = getattr(spec, "serve", None)
    if serve is None and getattr(spec, "declares_serve", False):
        raise ServeError(
            "service %r is explicitly not socket-servable "
            "(transport=None: its semantics need a real port space, "
            "not a request/reply socket); deploy it on netsim instead"
            % (name,))
    if not serve:                        # None without the explicit
        raise ServeError(                # marker, or UNDECLARED
            "service %r does not declare a socket transport; give its "
            "ServiceSpec a serve=ServeSpec(...) (or serve=None to "
            "state it cannot be served)" % (name,))
    try:
        return serve.binding(transport)
    except ServeError as error:
        raise ServeError("service %r: %s" % (name, error))


# -- stream framing decoders -------------------------------------------------

class LengthPrefixDecoder:
    """2-byte big-endian length prefix per message (the RFC 1035
    §4.2.2 framing DNS uses over TCP)."""

    def __init__(self, max_message=MAX_PAYLOAD_BYTES):
        self.max_message = int(max_message)
        self._buffer = bytearray()

    def feed(self, data):
        """Absorb *data*; return the list of complete payloads."""
        self._buffer.extend(data)
        out = []
        while len(self._buffer) >= 2:
            length = int.from_bytes(self._buffer[:2], "big")
            if length > self.max_message:
                raise ParseError("length-prefixed message of %d bytes "
                                 "exceeds the %d-byte cap"
                                 % (length, self.max_message))
            if len(self._buffer) < 2 + length:
                break
            out.append(bytes(self._buffer[2:2 + length]))
            del self._buffer[:2 + length]
        if len(self._buffer) > MAX_STREAM_BUFFER:
            raise ParseError("stream reassembly buffer overflow")
        return out


class MemcachedAsciiDecoder:
    """Split a memcached ASCII command stream into one payload per
    command.  ``set``'s data block (announced by its byte count) is
    kept with its command line; any other line is one command.  A
    malformed byte count falls through as a bare line — the service
    answers ``ERROR`` — so garbage degrades to a rejected request, not
    a wedged stream."""

    def __init__(self, max_message=MAX_PAYLOAD_BYTES):
        self.max_message = int(max_message)
        self._buffer = bytearray()

    def feed(self, data):
        self._buffer.extend(data)
        out = []
        while True:
            line_end = self._buffer.find(b"\r\n")
            if line_end < 0:
                # No valid command line can be longer than one
                # message, so a CRLF-less run past the cap is garbage.
                if len(self._buffer) > self.max_message:
                    raise ParseError(
                        "command line of %d+ bytes exceeds the "
                        "%d-byte cap"
                        % (len(self._buffer), self.max_message))
                break
            need = line_end + 2
            parts = self._buffer[:line_end].split()
            if parts and parts[0] == b"set" and len(parts) >= 5:
                try:
                    need += int(parts[4]) + 2
                except ValueError:
                    pass                 # bare line; service rejects it
            if need > self.max_message:
                raise ParseError("ASCII command of %d bytes exceeds "
                                 "the %d-byte cap"
                                 % (need, self.max_message))
            if len(self._buffer) < need:
                break
            out.append(bytes(self._buffer[:need]))
            del self._buffer[:need]
        if len(self._buffer) > MAX_STREAM_BUFFER:
            raise ParseError("stream reassembly buffer overflow")
        return out


# -- binding builders (the catalog instantiates these with its
#    evaluation addresses) ---------------------------------------------------

def _udp_frame(src_ip, dst_ip, dst_port, payload, seq,
               macs=(0x02_00_00_00_00_01, 0x02_00_00_00_00_AA)):
    """A padded request frame around *payload*, ephemeral source port
    varied by *seq* so scale-out backends spread socket load exactly
    like the built-in workloads do."""
    dst_mac, src_mac = macs
    sport = 32768 + (seq % 16384)
    frame = Frame(build_udp(dst_mac, src_mac, src_ip, dst_ip,
                            sport, dst_port, payload), src_port=0)
    return frame.pad()


def _udp_decap(frame):
    return UDPWrapper(frame.data).payload()


def memcached_bindings(client_ip, service_ip, port=11211):
    """UDP (8-byte frame header included by the client, memcached
    convention) and TCP (ASCII stream; the binding adds/strips the
    in-model UDP frame header the service requires)."""

    def encap_udp(payload, seq):
        return _udp_frame(client_ip, service_ip, port, payload, seq)

    def encap_tcp(payload, seq):
        wire = build_udp_frame_header(seq & 0xFFFF) + payload
        return _udp_frame(client_ip, service_ip, port, wire, seq)

    def decap_tcp(frame):
        _, body = split_udp_frame(_udp_decap(frame))
        return body

    def probe_body(seed, seq):
        """Order-independent probes: every key is new under its tag,
        so replies are exact regardless of reordering or history."""
        tag = hash_tag(seed, seq)
        key = b"lg" + tag
        shape = seq % 3
        if shape == 0:
            value = tag + b"/%06d" % (seq % 1000000)
            body = b"set %s 0 0 %d\r\n%s\r\n" % (key, len(value), value)
            return body, b"STORED\r\n"
        if shape == 1:
            return b"get %s\r\n" % key, b"END\r\n"
        return b"delete %s\r\n" % key, b"NOT_FOUND\r\n"

    def probe_udp(seed, seq):
        body, reply = probe_body(seed, seq)
        header = build_udp_frame_header(seq & 0xFFFF)
        return header + body, header + reply

    return (
        TransportBinding("udp", encap_udp, _udp_decap, probe_udp),
        TransportBinding("tcp", encap_tcp, decap_tcp, probe_body,
                         frame_decoder=MemcachedAsciiDecoder),
    )


def dns_bindings(client_ip, service_ip, table, port=53):
    """UDP (one query per datagram) and TCP (RFC 1035 length-prefix
    framing).  *table* is the served zone (name -> 32-bit address);
    probes alternate table hits with hash-tagged NXDOMAIN lookups —
    the latter are this protocol's cache-buster."""
    names = sorted(table)

    def encap(payload, seq):
        return _udp_frame(client_ip, service_ip, port, payload, seq)

    def probe(seed, seq):
        txid = int(hash_tag(seed, seq, width=4), 16)
        if seq % 2 == 0 and names:
            name = names[(seq // 2) % len(names)]
            address, rcode = table[name], RCode.NO_ERROR
        else:
            name = "h%s.invalid" % hash_tag(seed, seq).decode("ascii")
            address, rcode = None, RCode.NAME_ERROR
        query = build_dns_query(txid, name)
        reply = build_dns_response(txid, DNSQuestion(name),
                                   address=address, rcode=rcode)
        return query, reply

    def length_prefix(payload):
        return len(payload).to_bytes(2, "big") + payload

    return (
        TransportBinding("udp", encap, _udp_decap, probe),
        TransportBinding("tcp", encap, _udp_decap, probe,
                         frame_decoder=LengthPrefixDecoder,
                         wrap=length_prefix, wrap_reply=length_prefix),
    )


def icmp_bindings(client_ip, service_ip):
    """UDP datagrams carrying raw echo payloads; the binding builds the
    checksummed ICMP echo request and the service echoes the payload
    back byte-for-byte."""

    def encap(payload, seq):
        return Frame(build_icmp_echo_request(
            0x02_00_00_00_00_01, 0x02_00_00_00_00_AA,
            client_ip, service_ip, identifier=1,
            sequence=seq & 0xFFFF, payload=payload), src_port=0)

    def decap(frame):
        return ICMPWrapper(frame.data).message()[ICMP_HEADER_BYTES:]

    def probe(seed, seq):
        # >= 18 bytes keeps the frame at/above the 60-byte Ethernet
        # minimum, so the echoed bytes are exactly the sent bytes (no
        # padding ambiguity in the reply).
        payload = b"emu-uptest/" + hash_tag(seed, seq) + \
            b"/%06d" % (seq % 1000000)
        return payload, payload

    return (TransportBinding("udp", encap, decap, probe,
                             max_payload=MAX_PAYLOAD_BYTES - 20),)
