"""Post-run trace analytics: critical paths and tail attribution.

A :class:`~repro.obs.trace.TraceRecorder` full of span families says
what every request did; this module turns that into the three answers
an operator (or the coming remediation planner) actually asks:

* **critical path** — where does a request's latency go?  Every traced
  request decomposes exactly into its phases (the admit-wait in the
  ingest ``queue``, the ``kernel`` / ``hop:<shard>`` service time, the
  constant-overhead ``reply``), because the open-loop tracer emits the
  family from one clock: ``queue + service + reply == request``.
* **tail attribution** — *why* is p99 worse than p50?  The completed
  population splits into the body (latency <= p50) and the tail
  (latency >= p99, plus every slower-than-median drop: a request that
  burned a shard timeout and never replied is the worst tail member
  there is); diffing their mean phase decompositions names the phase
  that grew, and ranking servers by contributed excess-over-p50 time
  names the shard or core it grew on.  In the chaos walkthrough this
  is the line that reads "the tail is the timeouts on shard1" — the
  evicted shard.
* **state flamegraph** — an aggregated per-FSM-state cycle view built
  from :class:`~repro.obs.profiler.KernelProfile`, rendered as
  proportional bars (Emu FSMs are flat, so one level is the whole
  flame).

Everything is derived from the recorder's deterministic event list, so
:meth:`TraceAnalysis.to_dict` is seeded-reproducible and CI can assert
on it; :meth:`TraceAnalysis.text` is the human report behind the CLI's
``--analyze`` flag and ``Deployment.analysis()``.
"""

from repro.errors import ObsError
from repro.harness.report import render_table
from repro.obs.metrics import interpolate_percentile

#: Phase keys of the per-request decomposition, in request order.
PHASES = ("queue", "service", "reply")

FLAME_WIDTH = 40


class RequestRecord:
    """One traced request, decomposed into phases (all times ns)."""

    __slots__ = ("seq", "track", "server", "start_ns", "latency_ns",
                 "queue_ns", "service_ns", "reply_ns", "service_kind",
                 "where", "dropped")

    def __init__(self, seq, track, server, start_ns, latency_ns,
                 queue_ns, service_ns, reply_ns, service_kind, where,
                 dropped):
        self.seq = seq
        self.track = track
        self.server = server
        self.start_ns = start_ns
        self.latency_ns = latency_ns
        self.queue_ns = queue_ns
        self.service_ns = service_ns
        self.reply_ns = reply_ns
        #: ``kernel`` (device), ``hop`` (cluster shard), or the raw
        #: span name when neither.
        self.service_kind = service_kind
        #: The attribution bucket: the hop's shard, the kernel's core,
        #: or the server track name.
        self.where = where
        self.dropped = dropped

    def phase_ns(self, phase):
        return {"queue": self.queue_ns, "service": self.service_ns,
                "reply": self.reply_ns}[phase]

    def __repr__(self):
        return ("RequestRecord(seq=%r, %s, %d ns = %d queue + %d "
                "service + %d reply%s)"
                % (self.seq, self.where, self.latency_ns,
                   self.queue_ns, self.service_ns, self.reply_ns,
                   ", dropped" if self.dropped else ""))


def _service_split(name):
    """``(service_kind, where)`` from a service-span name —
    ``hop:shard1`` -> ``("hop", "shard1")``, ``kernel@core2`` ->
    ``("kernel", "core2")``, ``kernel`` -> ``("kernel", None)``."""
    if name.startswith("hop:"):
        return "hop", name[len("hop:"):]
    if name.startswith("kernel@"):
        return "kernel", name[len("kernel@"):]
    return name, None


def requests_from_trace(tracer):
    """Reconstruct :class:`RequestRecord` groups from a recorder.

    The open-loop tracer appends one request's whole span family
    (``request``, ``queue``, service, ``reply``) atomically at
    completion time, so grouping walks the event list in emission
    order: a ``request`` span opens a group on its track and the
    following member spans on the same track fill it in.
    """
    records = []
    open_groups = {}                 # track -> RequestRecord
    for event in sorted(tracer.events,
                        key=lambda event: event["order"]):
        if event["ph"] != "X":
            continue
        track = event["tid"]
        name = event["name"]
        if name == "request":
            record = RequestRecord(
                seq=event["args"].get("seq"), track=track,
                server=tracer.track_names.get(track,
                                              "track%d" % track),
                start_ns=event["ts"], latency_ns=event["dur"],
                queue_ns=0, service_ns=0, reply_ns=0,
                service_kind="?", where=None,
                dropped=bool(event["args"].get("dropped")))
            open_groups[track] = record
            records.append(record)
            continue
        record = open_groups.get(track)
        if record is None:
            continue
        if name == "queue":
            record.queue_ns = event["dur"]
        elif name == "reply":
            record.reply_ns = event["dur"]
        else:
            record.service_ns = event["dur"]
            kind, where = _service_split(name)
            record.service_kind = kind
            record.where = where if where is not None else record.server
    for record in records:
        if record.where is None:
            record.where = record.server
    return records


class TraceAnalysis:
    """Critical-path + tail analytics over one run's trace."""

    def __init__(self, requests, profile=None):
        self.requests = list(requests)
        self.profile = profile
        #: Completed requests (the latency population; drops carry no
        #: reply and therefore no defined latency).
        self.completed = [record for record in self.requests
                          if not record.dropped]
        self._by_latency = sorted(self.completed,
                                  key=lambda record:
                                  (record.latency_ns, record.start_ns))

    # -- critical path -------------------------------------------------------

    def critical_path(self):
        """Mean per-phase decomposition over completed requests:
        ``{phase: {"total_ns", "mean_ns", "share"}}`` (shares sum to
        1.0 — the family covers the request span exactly)."""
        out = {}
        count = len(self.completed)
        grand_total = sum(record.latency_ns
                          for record in self.completed)
        for phase in PHASES:
            total = sum(record.phase_ns(phase)
                        for record in self.completed)
            out[phase] = {
                "total_ns": total,
                "mean_ns": total / count if count else 0.0,
                "share": total / grand_total if grand_total else 0.0,
            }
        return out

    # -- tail attribution ----------------------------------------------------

    def _percentile_ns(self, fraction):
        return interpolate_percentile(
            [record.latency_ns for record in self._by_latency],
            fraction)

    def tail(self, tail_fraction=0.99):
        """Diff the p50 body against the tail population and attribute
        the gap to a phase and a server.

        The body is every completed request at or below the median
        latency.  The tail is every completed request at or above the
        *tail_fraction* percentile (at least one) *plus* every dropped
        request slower than the median — a drop is the worst tail
        member there is (it burned its recorded time and never
        replied; a 50 us shard timeout is tail, not noise).  Servers
        are ranked by the tail time they contribute — the summed
        excess above p50 — so three timeouts on a dead shard outweigh
        a crowd of microsecond stragglers elsewhere; ties break
        lexicographically.  Returns ``None`` with fewer than two
        completed requests.
        """
        if len(self.completed) < 2:
            return None
        p50_ns = self._percentile_ns(0.50)
        tail_cut_ns = self._percentile_ns(tail_fraction)
        body = [record for record in self._by_latency
                if record.latency_ns <= p50_ns]
        tail = [record for record in self._by_latency
                if record.latency_ns >= tail_cut_ns] or \
            [self._by_latency[-1]]
        tail = tail + sorted(
            (record for record in self.requests
             if record.dropped and record.latency_ns > p50_ns),
            key=lambda record: (record.latency_ns, record.start_ns))

        def mean_phases(population):
            return {phase: sum(record.phase_ns(phase)
                               for record in population)
                    / len(population) for phase in PHASES}

        body_means = mean_phases(body)
        tail_means = mean_phases(tail)
        deltas = {phase: tail_means[phase] - body_means[phase]
                  for phase in PHASES}
        # The phase whose growth explains the most of the p50->tail
        # gap; ties break by PHASES order for determinism.
        attributed_phase = max(
            PHASES, key=lambda phase: (deltas[phase],
                                       -PHASES.index(phase)))
        by_server = {}
        for record in tail:
            entry = by_server.setdefault(
                record.where, {"count": 0, "excess_us": 0.0,
                               "dropped": 0})
            entry["count"] += 1
            entry["excess_us"] += (record.latency_ns - p50_ns) / 1000.0
            entry["dropped"] += 1 if record.dropped else 0
        for entry in by_server.values():
            entry["excess_us"] = round(entry["excess_us"], 3)
        attributed_server = max(
            sorted(by_server),
            key=lambda where: (by_server[where]["excess_us"],
                               by_server[where]["count"]))
        return {
            "p50_us": p50_ns / 1000.0,
            "tail_cut_us": tail_cut_ns / 1000.0,
            "tail_fraction": tail_fraction,
            "body_count": len(body),
            "tail_count": len(tail),
            "tail_dropped": sum(1 for record in tail
                                if record.dropped),
            "body_mean_us": {phase: body_means[phase] / 1000.0
                             for phase in PHASES},
            "tail_mean_us": {phase: tail_means[phase] / 1000.0
                             for phase in PHASES},
            "delta_us": {phase: deltas[phase] / 1000.0
                         for phase in PHASES},
            "attributed_phase": attributed_phase,
            "attributed_server": attributed_server,
            "tail_by_server": dict(sorted(by_server.items())),
        }

    # -- flamegraph ----------------------------------------------------------

    def flamegraph(self):
        """Aggregated FSM-state cycle shares from the kernel profile:
        ``[{"state", "label", "cycles", "share"}, ...]`` hottest
        first (``None`` without a profile)."""
        if self.profile is None:
            return None
        total = self.profile.total_cycles
        return [{"state": state.index, "label": state.label or "-",
                 "cycles": state.cycles,
                 "share": state.cycles / total if total else 0.0}
                for state in self.profile.hotspots()]

    def flamegraph_text(self):
        frames = self.flamegraph()
        if not frames:
            return "(no kernel profile; run with .with_profile())"
        lines = ["FSM-state flamegraph: %s at -O%s (%d cycles)"
                 % (self.profile.name, self.profile.opt_level,
                    self.profile.total_cycles)]
        for frame in frames:
            bar = "#" * max(1, round(frame["share"] * FLAME_WIDTH)) \
                if frame["cycles"] else ""
            lines.append("  #%-3d %-12s %6d cyc %5.1f%% |%-*s|"
                         % (frame["state"], frame["label"],
                            frame["cycles"], 100 * frame["share"],
                            FLAME_WIDTH, bar))
        return "\n".join(lines)

    # -- reports -------------------------------------------------------------

    def to_dict(self):
        """The machine-readable report (deterministic for a seeded
        run) — what the remediation planner consumes."""
        return {
            "requests": len(self.requests),
            "completed": len(self.completed),
            "dropped": sum(1 for record in self.requests
                           if record.dropped),
            "critical_path": self.critical_path(),
            "tail": self.tail(),
            "flamegraph": self.flamegraph(),
        }

    def text(self):
        """The aligned human report (CLI ``--analyze``)."""
        path = self.critical_path()
        rows = [[phase, "%.3f" % (path[phase]["mean_ns"] / 1000.0),
                 "%5.1f%%" % (100 * path[phase]["share"])]
                for phase in PHASES]
        out = [render_table(
            ["Phase", "Mean us", "Share"], rows,
            title="Critical path: %d completed request(s), %d "
                  "dropped" % (len(self.completed),
                               len(self.requests)
                               - len(self.completed)))]
        tail = self.tail()
        if tail is not None:
            tail_rows = [[phase,
                          "%.3f" % tail["body_mean_us"][phase],
                          "%.3f" % tail["tail_mean_us"][phase],
                          "%+.3f" % tail["delta_us"][phase]]
                         for phase in PHASES]
            out.append(render_table(
                ["Phase", "p50-body us", "tail us", "delta us"],
                tail_rows,
                title="Tail attribution: p50 %.3f us vs p%.0f %.3f "
                      "us -> %s on %s"
                      % (tail["p50_us"], 100 * tail["tail_fraction"],
                         tail["tail_cut_us"],
                         tail["attributed_phase"],
                         tail["attributed_server"])))
            share_rows = [[where, "%d" % entry["count"],
                           "%d" % entry["dropped"],
                           "%.3f" % entry["excess_us"]]
                          for where, entry
                          in tail["tail_by_server"].items()]
            out.append(render_table(
                ["Server", "Tail requests", "Dropped", "Excess us"],
                share_rows, title="Tail population by server"))
        if self.profile is not None:
            out.append(self.flamegraph_text())
        return "\n\n".join(out)

    def __repr__(self):
        return ("TraceAnalysis(%d requests, %d completed%s)"
                % (len(self.requests), len(self.completed),
                   ", profiled" if self.profile is not None else ""))


def analyze_trace(tracer, profile=None):
    """Build a :class:`TraceAnalysis` from a recorder (+ optional
    :class:`~repro.obs.profiler.KernelProfile`); raises when the trace
    carries no request spans to analyze."""
    records = requests_from_trace(tracer)
    if not records:
        raise ObsError(
            "trace has no request spans to analyze (record an "
            "open-loop run with .with_trace() first)")
    return TraceAnalysis(records, profile=profile)
