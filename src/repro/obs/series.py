"""Windowed time-series over an open-loop run.

One end-of-run ``OpenLoopReport`` says *what* happened; this sampler
says *when*: the run is cut into fixed virtual-time windows, and at
each boundary the sampler snapshots the cumulative report counters
(deltas become per-window rates) and the live per-server ingest queue
depths (a gauge read at the boundary instant).  Per-window latency
percentiles come from the window's own completions, so a mid-run fault
shows up as the qps dip / drop spike / p99 bulge in exactly the rows
whose windows overlap the fault — the alignment the autonomous control
plane will steer by.

Everything derives from the seeded run, so the exported TSV is
byte-identical across repeat runs (fixed ``%.3f`` formatting, no wall
clock anywhere).

The open-loop layer drives the live interface (``observe_latency`` per
completion, ``flush`` at each boundary); consumers read :attr:`rows`
or :meth:`to_tsv`.  Streaming consumers (the SLO monitor) register in
:attr:`TimeSeries.observers` and are called at every window close with
the new row plus that window's own sorted latencies.

Trailing-partial-window semantics (pinned, regression-tested): the
sampler flushes one full-width window per elapsed ``window_ns``;
:meth:`finish` then closes at most one final *partial* row covering
``[last boundary, end)`` — created only when that interval saw any
activity (pending latencies or counter movement), and exposed
explicitly as :attr:`final_partial` (``None`` when the run ended
exactly on a boundary with nothing draining).  The partial row's span
may be shorter *or* longer than ``window_ns`` (completions drain past
the nominal duration); its rates always derive from its actual span.
:meth:`finish` is idempotent — a second call at the same instant adds
nothing.
"""

from repro.errors import ObsError
from repro.obs.metrics import interpolate_percentile


class Window:
    """One sampled window: counter deltas + boundary gauges."""

    __slots__ = ("start_ns", "end_ns", "offered", "admitted",
                 "completed", "replies", "queue_drops", "service_drops",
                 "p50_us", "p99_us", "depths", "busy_fraction")

    def __init__(self, start_ns, end_ns, offered, admitted, completed,
                 replies, queue_drops, service_drops, p50_us, p99_us,
                 depths, busy_fraction):
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.offered = offered
        self.admitted = admitted
        self.completed = completed
        self.replies = replies
        self.queue_drops = queue_drops
        self.service_drops = service_drops
        self.p50_us = p50_us
        self.p99_us = p99_us
        self.depths = depths            # per-server depth at end_ns
        self.busy_fraction = busy_fraction

    @property
    def span_ns(self):
        return self.end_ns - self.start_ns

    @property
    def qps(self):
        """Completions per second in this window."""
        return self.completed * 1e9 / self.span_ns if self.span_ns \
            else 0.0

    @property
    def reply_qps(self):
        """Replies per second — the line that dips under faults (a
        timed-out request completes but answers nothing)."""
        return self.replies * 1e9 / self.span_ns if self.span_ns \
            else 0.0

    @property
    def drops(self):
        return self.queue_drops + self.service_drops

    @property
    def max_depth(self):
        return max(self.depths, default=0)

    @property
    def mean_depth(self):
        if not self.depths:
            return 0.0
        return sum(self.depths) / len(self.depths)


class TimeSeries:
    """Accumulates :class:`Window` rows during an open-loop run."""

    #: Aggregate TSV columns (per-server ``depth<i>`` columns follow).
    COLUMNS = ("t_ms", "window_ms", "offered", "admitted", "completed",
               "replies", "queue_drops", "service_drops", "qps",
               "reply_qps", "p50_us", "p99_us", "busy_frac",
               "depth_mean", "depth_max")

    def __init__(self, window_ns):
        if window_ns <= 0:
            raise ObsError("window must be positive")
        self.window_ns = int(window_ns)
        self.rows = []
        #: Streaming window consumers: ``callable(window,
        #: sorted_latencies_ns)`` invoked at every flush (the SLO
        #: monitor's hook).  Observers must not mutate the series.
        self.observers = []
        #: The trailing partial row :meth:`finish` closed (``None``
        #: until finish runs, or when the run ended exactly on a
        #: window boundary with nothing left to record).
        self.final_partial = None
        self._window_latencies = []
        self._last = None               # previous cumulative snapshot
        self._last_busy = None
        self._last_end_ns = 0

    # -- live interface (driven by the open-loop layer) ----------------------

    def observe_latency(self, latency_ns):
        self._window_latencies.append(latency_ns)

    def flush(self, now_ns, report, queues):
        """Close the window ending at *now_ns* against the cumulative
        *report* counters and the live *queues*."""
        current = (report.offered, report.admitted, report.completed,
                   report.replies, report.queue_drops,
                   report.service_drops)
        previous = self._last if self._last is not None \
            else (0, 0, 0, 0, 0, 0)
        delta = [now - before for now, before in zip(current, previous)]
        busy = sum(server.busy_ns for server in report.servers)
        busy_before = self._last_busy if self._last_busy is not None \
            else 0.0
        span_ns = now_ns - self._last_end_ns
        capacity_ns = span_ns * max(1, len(report.servers))
        ordered = sorted(self._window_latencies)
        p50 = interpolate_percentile(ordered, 0.50)
        p99 = interpolate_percentile(ordered, 0.99)
        row = Window(
            self._last_end_ns, now_ns, *delta,
            p50_us=None if p50 is None else p50 / 1000.0,
            p99_us=None if p99 is None else p99 / 1000.0,
            depths=[queue.depth for queue in queues],
            busy_fraction=(busy - busy_before) / capacity_ns
            if capacity_ns else 0.0)
        self.rows.append(row)
        self._window_latencies = []
        self._last = current
        self._last_busy = busy
        self._last_end_ns = now_ns
        for observer in self.observers:
            observer(row, ordered)
        return row

    def finish(self, now_ns, report, queues):
        """Capture the post-duration tail (completions still draining
        after the last full window) as one final partial row, exposed
        on :attr:`final_partial` — created only when time passed since
        the last boundary *and* something happened in it (pending
        window latencies or counter movement); idempotent otherwise."""
        previous = self._last if self._last is not None \
            else (0, 0, 0, 0, 0, 0)
        if now_ns > self._last_end_ns and (
                self._window_latencies or previous !=
                (report.offered, report.admitted, report.completed,
                 report.replies, report.queue_drops,
                 report.service_drops)):
            self.final_partial = self.flush(now_ns, report, queues)
        return self.final_partial

    # -- consumption ---------------------------------------------------------

    def __len__(self):
        return len(self.rows)

    def windows_overlapping(self, start_ns, end_ns):
        """Rows whose ``[start, end)`` intersects the given range —
        the assert surface for "the dip aligns with the fault"."""
        return [row for row in self.rows
                if row.start_ns < end_ns and row.end_ns > start_ns]

    def to_tsv(self):
        servers = max((len(row.depths) for row in self.rows), default=0)
        header = list(self.COLUMNS) + \
            ["depth%d" % index for index in range(servers)]
        lines = ["\t".join(header)]
        for row in self.rows:
            cells = ["%.3f" % (row.start_ns / 1e6),
                     "%.3f" % (row.span_ns / 1e6),
                     "%d" % row.offered, "%d" % row.admitted,
                     "%d" % row.completed, "%d" % row.replies,
                     "%d" % row.queue_drops, "%d" % row.service_drops,
                     "%.1f" % row.qps, "%.1f" % row.reply_qps,
                     "n/a" if row.p50_us is None else
                     "%.3f" % row.p50_us,
                     "n/a" if row.p99_us is None else
                     "%.3f" % row.p99_us,
                     "%.4f" % row.busy_fraction,
                     "%.2f" % row.mean_depth, "%d" % row.max_depth]
            cells += ["%d" % depth for depth in row.depths]
            cells += ["0"] * (servers - len(row.depths))
            lines.append("\t".join(cells))
        return "\n".join(lines) + "\n"

    def write_tsv(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_tsv())
        return path

    def __repr__(self):
        return "TimeSeries(%d windows of %.3f ms)" % (
            len(self.rows), self.window_ns / 1e6)
