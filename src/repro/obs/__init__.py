"""``repro.obs`` — observability for every backend, on virtual time.

Three instruments over one clock (the engine scheduler's ``now_ns``):

* :class:`~repro.obs.trace.TraceRecorder` — per-request spans and
  instant events (faults, detector transitions, tail-drops), exported
  as Chrome trace-event JSON (Perfetto-loadable) and TSV;
* :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters /
  gauges / histograms that :class:`~repro.deploy.metrics.Metrics` is a
  view over, plus :class:`~repro.obs.series.TimeSeries`, the windowed
  sampler that turns an open-loop run into qps/p99/queue-depth/drop
  time-series;
* :class:`~repro.obs.profiler.KernelProfile` — cycles per FSM state on
  the compiled engine, the hotspot table behind the optimizer's wins.

Two sibling judges sit on top of the instruments:

* :mod:`repro.obs.slo` — declarative :class:`~repro.obs.slo.SloSpec`
  objectives evaluated as a streaming process over the time-series
  windows, with multi-window burn-rate alerting, error-budget
  accounting, and the append-only deterministic
  :class:`~repro.obs.slo.AlertLog`;
* :mod:`repro.obs.analyze` — post-run trace analytics: per-request
  critical-path decomposition, p50-vs-p99 tail attribution (phase +
  server), and the FSM-state flamegraph.

This package is a leaf: it imports nothing above the error hierarchy
and the table renderer, so every layer (engine, targets, cluster,
deploy) can depend on it without cycles.  All instrumentation is
opt-in and zero-cost when disabled — the hot paths carry one ``is
None`` check, gated by ``benchmarks/test_obs_overhead.py``.
"""

from repro.obs.analyze import (RequestRecord, TraceAnalysis,
                               analyze_trace, requests_from_trace)
from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, interpolate_percentile)
from repro.obs.profiler import KernelProfile, merge_profiles
from repro.obs.series import TimeSeries, Window
from repro.obs.slo import (AlertLog, BurnRule, Objective, SloMonitor,
                           SloSpec)
from repro.obs.trace import TraceRecorder

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "interpolate_percentile", "KernelProfile", "merge_profiles",
    "TimeSeries", "Window", "TraceRecorder",
    "SloSpec", "SloMonitor", "AlertLog", "BurnRule", "Objective",
    "TraceAnalysis", "RequestRecord", "analyze_trace",
    "requests_from_trace",
]
