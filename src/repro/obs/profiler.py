"""Per-FSM-state cycle attribution on the compiled engine.

The engine compiles one step closure per FSM state and dispatches
through a table, so attribution is a counter bump per dispatch: with
profiling enabled a :class:`~repro.engine.compiler.CompiledKernel`
executes its ``_run_profiled`` twin, which increments
``counts[state]`` once per cycle.  Every state is exactly one clock
cycle, so the counts *are* cycles — summed over requests they must
equal the measured per-request latencies minus the one idle (latch)
cycle each, which is the cross-check that keeps the profile honest
against the Table 3/4 cycle numbers (and lets the hotspot table show
precisely which states the ``-O0``→``-O2`` optimizer deleted).

This module only *reads* kernels (counts + FSM labels); enabling the
profiled runner is the kernel's own
:meth:`~repro.engine.compiler.CompiledKernel.enable_profiling`, and
deployments thread it via ``deploy(...).with_profile()``.
"""

from repro.errors import ObsError
from repro.harness.report import render_table


class StateCycles:
    """One FSM state's share of the profile."""

    __slots__ = ("index", "label", "cycles")

    def __init__(self, index, label, cycles):
        self.index = index
        self.label = label
        self.cycles = cycles

    def __repr__(self):
        return "StateCycles(#%d %s: %d)" % (self.index, self.label,
                                            self.cycles)


class KernelProfile:
    """Cycles per FSM state, with the hotspot-table rendering."""

    def __init__(self, name, opt_level, states, invocations):
        self.name = name
        self.opt_level = opt_level
        #: Every non-idle state, in FSM index order (including cold
        #: states at 0 cycles — coverage holes are data too).
        self.states = list(states)
        self.invocations = invocations

    @classmethod
    def from_kernel(cls, kernel):
        """Build from a profiled engine kernel (raises unless
        :meth:`~repro.engine.compiler.CompiledKernel.enable_profiling`
        ran first)."""
        counts = kernel.state_counts
        if counts is None:
            raise ObsError(
                "kernel %r is not profiling; call enable_profiling() "
                "(deployments: .with_profile())" % (kernel.name,))
        fsm = kernel.design.fsm
        states = [StateCycles(state.index, state.label or "",
                              counts[state.index])
                  for state in fsm.states if state is not fsm.idle]
        return cls(kernel.name, kernel.opt_level, states,
                   kernel.invocations)

    # -- aggregation ---------------------------------------------------------

    def merge(self, other):
        """Sum another profile of the *same* compiled shape into this
        one (multicore cores / cluster shards run identical kernels)."""
        if (other.name != self.name
                or other.opt_level != self.opt_level
                or len(other.states) != len(self.states)):
            raise ObsError(
                "cannot merge profile of %r (-O%s, %d states) into "
                "%r (-O%s, %d states)"
                % (other.name, other.opt_level, len(other.states),
                   self.name, self.opt_level, len(self.states)))
        for mine, theirs in zip(self.states, other.states):
            mine.cycles += theirs.cycles
        self.invocations += other.invocations
        return self

    # -- derived -------------------------------------------------------------

    @property
    def total_cycles(self):
        """Cycles spent inside states.  Each invocation additionally
        pays one idle latch cycle, so measured per-request latencies
        sum to ``total_cycles + invocations``."""
        return sum(state.cycles for state in self.states)

    def cycles_per_request(self):
        if not self.invocations:
            return None
        return (self.total_cycles + self.invocations) / self.invocations

    def per_state(self):
        """``{state index: cycles}`` (the assert-friendly view)."""
        return {state.index: state.cycles for state in self.states}

    def hotspots(self, top=None):
        """States by descending cycles (ties broken by index, so the
        order is deterministic)."""
        ordered = sorted(self.states,
                         key=lambda state: (-state.cycles, state.index))
        return ordered[:top] if top else ordered

    def hotspot_table(self, top=None):
        """The aligned hotspot table harnesses and the CLI print."""
        total = self.total_cycles
        rows = []
        for state in self.hotspots(top):
            share = state.cycles / total if total else 0.0
            rows.append(["#%d" % state.index, state.label or "-",
                         str(state.cycles), "%5.1f%%" % (100 * share)])
        title = ("Kernel profile: %s at -O%s — %d cycles over %d "
                 "request(s)" % (self.name, self.opt_level, total,
                                 self.invocations))
        return render_table(["State", "Label", "Cycles", "Share"],
                            rows, title=title)

    def __repr__(self):
        return ("KernelProfile(%s, -O%s, %d cycles, %d invocations)"
                % (self.name, self.opt_level, self.total_cycles,
                   self.invocations))


def merge_profiles(profiles):
    """Fold same-shaped profiles (shards/cores) into one; ``None`` for
    an empty list."""
    merged = None
    for profile in profiles:
        if merged is None:
            merged = KernelProfile(profile.name, profile.opt_level,
                                   [StateCycles(s.index, s.label,
                                                s.cycles)
                                    for s in profile.states],
                                   profile.invocations)
        else:
            merged.merge(profile)
    return merged
