"""Virtual-time tracing: spans and instant events on one time axis.

Every deployment runs on virtual time — the engine scheduler's
``now_ns`` — so a trace is not a wall-clock profile but an exact,
seeded-deterministic record of *what the model did when*: per-request
spans (admit → queue → kernel → reply, one track per server engine),
instant events from fault injections, failure-detector transitions, and
ingest tail-drops, all stamped from the same clock.

The recorder is passive and dependency-free: producers call
:meth:`span` / :meth:`instant` (or hand out :meth:`hook` callables to
layers that must not import this package), and nothing here touches the
scheduler beyond reading the bound clock.  Export formats:

* :meth:`to_json` — Chrome trace-event JSON (the ``traceEvents`` array
  format).  Load it at https://ui.perfetto.dev or ``chrome://tracing``;
  spans nest by time containment per track, instants draw as markers.
* :meth:`to_tsv` — one event per line for grep/awk/pandas.

Determinism: events are exported sorted by (timestamp, record order)
with sorted JSON keys, so two runs with the same seed produce
byte-identical files — which is what lets CI diff traces at all.
"""

import itertools
import json

from repro.errors import ObsError

#: Trace-event categories used by the built-in instrumentation
#: (``alert`` marks SLO burn-rate transitions from
#: :mod:`repro.obs.slo`, mirrored onto the same timeline as the
#: fault instants that cause them).
CATEGORIES = ("request", "fault", "health", "queue", "cluster",
              "alert")


class TraceRecorder:
    """Collects spans + instant events against a virtual-time clock."""

    def __init__(self, process="emu"):
        self.process = process
        self.events = []            # internal dicts, ts/dur in ns
        self._order = itertools.count()
        self._clock = None
        self.track_names = {}       # tid -> human name

    # -- clock --------------------------------------------------------------

    def bind_clock(self, clock):
        """*clock* is a zero-arg callable returning virtual ns (the
        open-loop layer binds ``lambda: scheduler.now_ns``)."""
        self._clock = clock

    def now_ns(self):
        return self._clock() if self._clock is not None else 0

    # -- recording ----------------------------------------------------------

    def name_track(self, track, name):
        """Label one track (Chrome thread) — e.g. ``shard3``."""
        self.track_names[int(track)] = str(name)

    def span(self, name, start_ns, dur_ns, track=0, cat="request",
             args=None):
        """A complete span (Chrome ``X`` event) on *track*."""
        if dur_ns < 0:
            raise ObsError("span %r has negative duration" % (name,))
        self.events.append({
            "name": name, "cat": cat, "ph": "X",
            "ts": int(start_ns), "dur": int(dur_ns),
            "tid": int(track), "order": next(self._order),
            "args": dict(args) if args else {},
        })

    def instant(self, name, ts_ns=None, track=0, cat="fault",
                args=None):
        """An instant event (Chrome ``i``, global scope) — fault
        firings, detector transitions, tail-drops."""
        self.events.append({
            "name": name, "cat": cat, "ph": "i",
            "ts": int(self.now_ns() if ts_ns is None else ts_ns),
            "tid": int(track), "order": next(self._order),
            "args": dict(args) if args else {},
        })

    def hook(self, cat="cluster", track=0):
        """A ``callable(label, args=None)`` emitting instant events —
        handed to layers (cluster target, balancer, fault injector)
        that expose a generic ``event_hook`` and must not import the
        observability package."""
        def emit(label, args=None):
            self.instant(label, cat=cat, track=track, args=args)
        return emit

    # -- introspection -------------------------------------------------------

    def __len__(self):
        return len(self.events)

    def find(self, name_prefix="", cat=None):
        """Events whose name starts with *name_prefix* (and category
        matches, when given), in export order — test/assert surface."""
        return [event for event in self._ordered()
                if event["name"].startswith(name_prefix)
                and (cat is None or event["cat"] == cat)]

    def _ordered(self):
        return sorted(self.events,
                      key=lambda event: (event["ts"], event["order"]))

    # -- export --------------------------------------------------------------

    def to_chrome(self):
        """The Chrome trace-event dict (``ts``/``dur`` in microseconds,
        as the format specifies)."""
        out = []
        for track in sorted(self.track_names):
            out.append({"name": "thread_name", "ph": "M", "ts": 0,
                        "pid": 1, "tid": track,
                        "args": {"name": self.track_names[track]}})
        for event in self._ordered():
            chrome = {
                "name": event["name"], "cat": event["cat"],
                "ph": event["ph"], "ts": event["ts"] / 1000.0,
                "pid": 1, "tid": event["tid"], "args": event["args"],
            }
            if event["ph"] == "X":
                chrome["dur"] = event["dur"] / 1000.0
            else:
                chrome["s"] = "g"
            out.append(chrome)
        return {"traceEvents": out,
                "displayTimeUnit": "ns",
                "otherData": {"process": self.process,
                              "clock": "virtual-ns"}}

    def to_json(self):
        """Deterministic Chrome trace JSON (sorted keys, fixed
        separators): same seed → byte-identical text."""
        return json.dumps(self.to_chrome(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def write_json(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return path

    def to_tsv(self):
        """``ts_ns  dur_ns  track  cat  kind  name  args`` per line."""
        lines = ["ts_ns\tdur_ns\ttrack\tcat\tkind\tname\targs"]
        for event in self._ordered():
            kind = "span" if event["ph"] == "X" else "instant"
            args = json.dumps(event["args"], sort_keys=True,
                              separators=(",", ":"))
            lines.append("%d\t%d\t%d\t%s\t%s\t%s\t%s" % (
                event["ts"], event.get("dur", 0), event["tid"],
                event["cat"], kind, event["name"], args))
        return "\n".join(lines) + "\n"

    def write_tsv(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_tsv())
        return path

    def __repr__(self):
        spans = sum(1 for event in self.events if event["ph"] == "X")
        return "TraceRecorder(%d spans, %d instants)" % (
            spans, len(self.events) - spans)
