"""Chrome trace-event JSON schema validation (stdlib only).

    python -m repro.obs.validate /tmp/trace.json

Exit 0 when the file is a structurally valid trace our exporters could
have produced (and Perfetto will load); exit 1 with the first violation
otherwise.  CI's trace-smoke job gates on this, so a refactor that
silently breaks the export format fails loudly.
"""

import json
import sys

REQUIRED = {"name", "ph", "ts", "pid", "tid"}
PHASES = {"X", "i", "M"}


def validate_trace(document):
    """Return a list of violations (empty = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level must be an object with a traceEvents array"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not any(isinstance(event, dict) and event.get("ph") == "X"
               for event in events):
        problems.append("trace has no spans (ph 'X')")
    last_ts = None
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        missing = REQUIRED - set(event)
        if missing:
            problems.append("%s: missing %s"
                            % (where, ", ".join(sorted(missing))))
            continue
        phase = event["ph"]
        if phase not in PHASES:
            problems.append("%s: unknown phase %r" % (where, phase))
            continue
        if phase == "M":
            continue                      # metadata: no timestamp rules
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad ts %r" % (where, ts))
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s: span needs dur >= 0, got %r"
                                % (where, dur))
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append("%s: instant needs scope g/p/t" % where)
        if last_ts is not None and ts < last_ts:
            problems.append("%s: timestamps not sorted (%r < %r)"
                            % (where, ts, last_ts))
        last_ts = ts
    return problems


def validate_file(path):
    with open(path) as handle:
        try:
            document = json.load(handle)
        except ValueError as error:
            return ["not JSON: %s" % error]
    return validate_trace(document)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.json>",
              file=sys.stderr)
        return 2
    problems = validate_file(argv[0])
    if problems:
        for problem in problems:
            print("INVALID: %s" % problem, file=sys.stderr)
        return 1
    with open(argv[0]) as handle:
        events = json.load(handle)["traceEvents"]
    spans = sum(1 for event in events if event.get("ph") == "X")
    instants = sum(1 for event in events if event.get("ph") == "i")
    print("valid Chrome trace: %d events (%d spans, %d instants)"
          % (len(events), spans, instants))
    return 0


if __name__ == "__main__":
    sys.exit(main())
