"""Export-format validation for the observability layer (stdlib only).

    python -m repro.obs.validate /tmp/trace.json
    python -m repro.obs.validate /tmp/trace.json --tsv /tmp/trace.tsv \\
        --alerts /tmp/alerts.json --summary
    python -m repro.obs.validate --tsv /tmp/loadgen.tsv \\
        --report /tmp/loadgen.json

Validates, structurally, everything the exporters can produce:

* the Chrome trace-event JSON (Perfetto-loadable ``traceEvents``);
* the flat trace TSV (``--tsv``: header, column counts, numeric
  fields, JSON args, sorted timestamps);
* the SLO alert-log JSON (``--alerts``: event schema, ``fire`` /
  ``escalate`` / ``resolve`` state pairing, monotone timestamps);
* the ``repro.serve.loadgen`` latency TSV (``--tsv`` sniffs the
  header: per-probe rows, dense seq, known statuses, and the
  ``# key<TAB>value`` summary footer with the verification counters);
* OpenLoopReport-shaped JSON (``--report``: the snapshot keys every
  run — simulated or socket-served — must carry).

Exit 0 when every given file is valid; exit 1 with the first
violations otherwise.  ``--summary`` appends one machine-greppable
line — ``summary: S spans, I instants, A alert event(s)`` — which the
CI ``slo-smoke`` job asserts on.
"""

import json
import sys

REQUIRED = {"name", "ph", "ts", "pid", "tid"}
PHASES = {"X", "i", "M"}

TSV_HEADER = "ts_ns\tdur_ns\ttrack\tcat\tkind\tname\targs"
TSV_KINDS = {"span", "instant"}

ALERT_REQUIRED = {"seq", "t_ns", "kind", "severity", "objective",
                  "rule", "burn_fast", "burn_slow", "budget_spent"}
ALERT_KINDS = {"fire", "escalate", "resolve"}
ALERT_SEVERITIES = {"ticket", "page"}

# Keep in sync with repro.serve.loadgen (duplicated on purpose: the
# validator must stay stdlib-importable without pulling the serving
# stack in).
LOADGEN_TSV_HEADER = "seq\tt_send_ms\tlatency_ms\tstatus\tdetail"
LOADGEN_STATUSES = {"ok", "verify_fail", "lost", "error"}
LOADGEN_FOOTER = {"service", "transport", "mode", "sent", "ok",
                  "verify_failures", "lost", "connect_failures",
                  "exit_code"}
LOADGEN_FOOTER_COUNTS = {"sent", "ok", "verify_failures", "lost",
                         "connect_failures", "exit_code"}

#: Every key an OpenLoopReport.snapshot() carries; the loadgen's
#: report JSON adds verification extras on top of the same shape.
REPORT_REQUIRED = {
    "process", "offered_qps", "achieved_qps", "offered", "admitted",
    "completed", "replies", "queue_drops", "service_drops",
    "drop_rate", "p50_latency_us", "p99_latency_us", "p999_latency_us",
    "avg_latency_us", "max_queue_depth", "mean_queue_depth", "servers",
}
REPORT_COUNTS = ("offered", "admitted", "completed", "replies",
                 "queue_drops", "service_drops", "servers")
REPORT_EXTRAS = ("verify_failures", "lost", "connect_failures",
                 "exit_code")


def validate_trace(document):
    """Return a list of violations (empty = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level must be an object with a traceEvents array"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not any(isinstance(event, dict) and event.get("ph") == "X"
               for event in events):
        problems.append("trace has no spans (ph 'X')")
    last_ts = None
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        missing = REQUIRED - set(event)
        if missing:
            problems.append("%s: missing %s"
                            % (where, ", ".join(sorted(missing))))
            continue
        phase = event["ph"]
        if phase not in PHASES:
            problems.append("%s: unknown phase %r" % (where, phase))
            continue
        if phase == "M":
            continue                      # metadata: no timestamp rules
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad ts %r" % (where, ts))
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s: span needs dur >= 0, got %r"
                                % (where, dur))
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append("%s: instant needs scope g/p/t" % where)
        if last_ts is not None and ts < last_ts:
            problems.append("%s: timestamps not sorted (%r < %r)"
                            % (where, ts, last_ts))
        last_ts = ts
    return problems


def validate_tsv(text):
    """Violations in a :meth:`TraceRecorder.to_tsv` export."""
    problems = []
    lines = text.splitlines()
    if not lines:
        return ["TSV is empty"]
    if lines[0] != TSV_HEADER:
        return ["bad header %r (want %r)" % (lines[0], TSV_HEADER)]
    last_ts = None
    for number, line in enumerate(lines[1:], start=2):
        where = "line %d" % number
        cells = line.split("\t")
        if len(cells) != 7:
            problems.append("%s: %d column(s), want 7"
                            % (where, len(cells)))
            continue
        ts, dur, track, _cat, kind, _name, args = cells
        for label, cell in (("ts_ns", ts), ("dur_ns", dur),
                            ("track", track)):
            if not cell.lstrip("-").isdigit():
                problems.append("%s: %s %r is not an integer"
                                % (where, label, cell))
        if kind not in TSV_KINDS:
            problems.append("%s: unknown kind %r" % (where, kind))
        elif kind == "instant" and dur.isdigit() and int(dur) != 0:
            problems.append("%s: instant with nonzero dur %s"
                            % (where, dur))
        try:
            json.loads(args)
        except ValueError:
            problems.append("%s: args is not JSON: %r" % (where, args))
        if ts.lstrip("-").isdigit():
            if last_ts is not None and int(ts) < last_ts:
                problems.append("%s: timestamps not sorted (%s < %d)"
                                % (where, ts, last_ts))
            last_ts = int(ts)
    return problems


def _is_number(text):
    try:
        float(text)
    except ValueError:
        return False
    return True


def validate_loadgen_tsv(text):
    """Violations in a ``repro.serve.loadgen`` latency TSV: one row
    per probe in dense seq order, known statuses, numeric latencies on
    verified rows, and the ``# key<TAB>value`` summary footer carrying
    the verification counters."""
    problems = []
    lines = text.splitlines()
    if not lines:
        return ["TSV is empty"]
    if lines[0] != LOADGEN_TSV_HEADER:
        return ["bad header %r (want %r)"
                % (lines[0], LOADGEN_TSV_HEADER)]
    footer = {}
    next_seq = 0
    for number, line in enumerate(lines[1:], start=2):
        where = "line %d" % number
        if line.startswith("#"):
            key, separator, value = line.lstrip("# ").partition("\t")
            if not separator:
                problems.append("%s: footer is not '# key<TAB>value'"
                                % where)
            else:
                footer[key] = value
            continue
        if footer:
            problems.append("%s: probe row after the summary footer"
                            % where)
        cells = line.split("\t")
        if len(cells) != 5:
            problems.append("%s: %d column(s), want 5"
                            % (where, len(cells)))
            continue
        seq, t_send, latency, status, _detail = cells
        if not seq.isdigit() or int(seq) != next_seq:
            problems.append("%s: seq %r breaks dense order (want %d)"
                            % (where, seq, next_seq))
        else:
            next_seq += 1
        if not _is_number(t_send):
            problems.append("%s: t_send_ms %r is not a number"
                            % (where, t_send))
        if status not in LOADGEN_STATUSES:
            problems.append("%s: unknown status %r" % (where, status))
        if status in ("ok", "verify_fail"):
            if not _is_number(latency):
                problems.append("%s: %s row needs a numeric "
                                "latency_ms, got %r"
                                % (where, status, latency))
        elif latency != "n/a" and not _is_number(latency):
            problems.append("%s: latency_ms %r is neither a number "
                            "nor n/a" % (where, latency))
    missing = LOADGEN_FOOTER - set(footer)
    if missing:
        problems.append("summary footer missing %s"
                        % ", ".join(sorted(missing)))
    for key in LOADGEN_FOOTER_COUNTS & set(footer):
        if not footer[key].isdigit():
            problems.append("footer %s=%r is not a non-negative "
                            "integer" % (key, footer[key]))
    return problems


def validate_report(document):
    """Violations in an OpenLoopReport-shaped JSON (the loadgen's
    ``--json`` artifact or any ``report.snapshot()`` dump): all the
    snapshot keys, integer counters, and — when the verification
    extras are present — consistent loadgen accounting."""
    problems = []
    if not isinstance(document, dict):
        return ["top level must be an object"]
    missing = REPORT_REQUIRED - set(document)
    if missing:
        problems.append("missing %s" % ", ".join(sorted(missing)))
    for key in REPORT_COUNTS:
        value = document.get(key)
        if key in document and (not isinstance(value, int)
                                or isinstance(value, bool)
                                or value < 0):
            problems.append("%s=%r is not a non-negative integer"
                            % (key, value))
    for key in ("offered_qps", "achieved_qps", "drop_rate",
                "mean_queue_depth"):
        value = document.get(key)
        if key in document and (not isinstance(value, (int, float))
                                or isinstance(value, bool)
                                or value < 0):
            problems.append("%s=%r is not a non-negative number"
                            % (key, value))
    for key in ("p50_latency_us", "p99_latency_us", "p999_latency_us",
                "avg_latency_us"):
        value = document.get(key)
        if key in document and value is not None \
                and (not isinstance(value, (int, float))
                     or isinstance(value, bool) or value < 0):
            problems.append("%s=%r is neither null nor a "
                            "non-negative number" % (key, value))
    if not isinstance(document.get("process"), str):
        problems.append("process=%r is not a string"
                        % (document.get("process"),))
    has_extras = any(key in document for key in REPORT_EXTRAS)
    if has_extras:
        for key in REPORT_EXTRAS:
            value = document.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                problems.append("%s=%r is not a non-negative integer"
                                % (key, value))
    return problems


def validate_alert_log(document):
    """Violations in an :meth:`AlertLog.to_json` export: per-event
    schema plus the fire/escalate/resolve state machine (an alert
    resolves only while active, never fires twice without resolving,
    and timestamps never go backwards)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level must be an object"]
    if not isinstance(document.get("slo"), str):
        problems.append("missing/invalid 'slo' name")
    events = document.get("events")
    if not isinstance(events, list):
        problems.append("'events' must be a list")
        return problems
    active = set()
    last_ts = None
    for index, event in enumerate(events):
        where = "events[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        missing = ALERT_REQUIRED - set(event)
        if missing:
            problems.append("%s: missing %s"
                            % (where, ", ".join(sorted(missing))))
            continue
        if event["seq"] != index:
            problems.append("%s: seq %r breaks append-only order"
                            % (where, event["seq"]))
        kind = event["kind"]
        if kind not in ALERT_KINDS:
            problems.append("%s: unknown kind %r" % (where, kind))
            continue
        if event["severity"] not in ALERT_SEVERITIES:
            problems.append("%s: unknown severity %r"
                            % (where, event["severity"]))
        t_ns = event["t_ns"]
        if not isinstance(t_ns, int) or t_ns < 0:
            problems.append("%s: bad t_ns %r" % (where, t_ns))
        elif last_ts is not None and t_ns < last_ts:
            problems.append("%s: timestamps not sorted (%d < %d)"
                            % (where, t_ns, last_ts))
        else:
            last_ts = t_ns
        for field in ("burn_fast", "burn_slow", "budget_spent"):
            if not isinstance(event[field], (int, float)) \
                    or event[field] < 0:
                problems.append("%s: bad %s %r"
                                % (where, field, event[field]))
        key = (event["objective"], event["severity"])
        if kind == "resolve":
            if key not in active:
                problems.append("%s: resolve of inactive alert %r"
                                % (where, key))
            active.discard(key)
        else:
            if key in active:
                problems.append("%s: %s while %r already active"
                                % (where, kind, key))
            active.add(key)
    return problems


def _count_trace(document):
    events = document.get("traceEvents", []) \
        if isinstance(document, dict) else []
    spans = sum(1 for event in events
                if isinstance(event, dict) and event.get("ph") == "X")
    instants = sum(1 for event in events
                   if isinstance(event, dict)
                   and event.get("ph") == "i")
    return spans, instants


def _load_json(path):
    with open(path) as handle:
        try:
            return json.load(handle), []
        except ValueError as error:
            return None, ["not JSON: %s" % error]


def validate_file(path):
    document, problems = _load_json(path)
    if problems:
        return problems
    return validate_trace(document)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    trace_path = None
    tsv_path = None
    alerts_path = None
    report_path = None
    summary = False
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--summary":
            summary = True
        elif arg in ("--tsv", "--alerts", "--report"):
            if index + 1 >= len(argv):
                print("%s needs a path" % arg, file=sys.stderr)
                return 2
            index += 1
            if arg == "--tsv":
                tsv_path = argv[index]
            elif arg == "--alerts":
                alerts_path = argv[index]
            else:
                report_path = argv[index]
        elif arg.startswith("-"):
            print("unknown option %r" % arg, file=sys.stderr)
            return 2
        elif trace_path is None:
            trace_path = arg
        else:
            print("at most one trace.json positional", file=sys.stderr)
            return 2
        index += 1
    if trace_path is None and tsv_path is None \
            and alerts_path is None and report_path is None:
        print("usage: python -m repro.obs.validate [<trace.json>] "
              "[--tsv <trace-or-loadgen.tsv>] "
              "[--alerts <alerts.json>] [--report <report.json>] "
              "[--summary]", file=sys.stderr)
        return 2

    problems = []
    spans = instants = alerts = 0
    document = None
    if trace_path is not None:
        document, load_problems = _load_json(trace_path)
        problems += ["%s: %s" % (trace_path, problem)
                     for problem in (load_problems
                                     or validate_trace(document))]
        if document is not None:
            spans, instants = _count_trace(document)
    tsv_flavor = "trace"
    if tsv_path is not None:
        with open(tsv_path) as handle:
            text = handle.read()
        # Sniff: a loadgen latency TSV and a flat trace TSV share the
        # flag but not the header.
        if text.splitlines() and \
                text.splitlines()[0] == LOADGEN_TSV_HEADER:
            tsv_flavor = "loadgen"
            tsv_problems = validate_loadgen_tsv(text)
        else:
            tsv_problems = validate_tsv(text)
        problems += ["%s: %s" % (tsv_path, problem)
                     for problem in tsv_problems]
    if alerts_path is not None:
        alert_doc, load_problems = _load_json(alerts_path)
        problems += ["%s: %s" % (alerts_path, problem)
                     for problem in (load_problems
                                     or validate_alert_log(alert_doc))]
        if alert_doc is not None and \
                isinstance(alert_doc.get("events"), list):
            alerts = len(alert_doc["events"])
    if report_path is not None:
        report_doc, load_problems = _load_json(report_path)
        problems += ["%s: %s" % (report_path, problem)
                     for problem in (load_problems
                                     or validate_report(report_doc))]

    if problems:
        for problem in problems:
            print("INVALID: %s" % problem, file=sys.stderr)
        return 1
    if trace_path is not None:
        print("valid Chrome trace: %s (%d spans, %d instants)"
              % (trace_path, spans, instants))
    if tsv_path is not None:
        print("valid %s TSV: %s" % (tsv_flavor, tsv_path))
    if alerts_path is not None:
        print("valid alert log: %s (%d event(s))"
              % (alerts_path, alerts))
    if report_path is not None:
        print("valid report JSON: %s" % report_path)
    if summary:
        print("summary: %d spans, %d instants, %d alert event(s)"
              % (spans, instants, alerts))
    return 0


if __name__ == "__main__":
    sys.exit(main())
