"""Export-format validation for the observability layer (stdlib only).

    python -m repro.obs.validate /tmp/trace.json
    python -m repro.obs.validate /tmp/trace.json --tsv /tmp/trace.tsv \\
        --alerts /tmp/alerts.json --summary

Validates, structurally, everything the exporters can produce:

* the Chrome trace-event JSON (Perfetto-loadable ``traceEvents``);
* the flat trace TSV (``--tsv``: header, column counts, numeric
  fields, JSON args, sorted timestamps);
* the SLO alert-log JSON (``--alerts``: event schema, ``fire`` /
  ``escalate`` / ``resolve`` state pairing, monotone timestamps).

Exit 0 when every given file is valid; exit 1 with the first
violations otherwise.  ``--summary`` appends one machine-greppable
line — ``summary: S spans, I instants, A alert event(s)`` — which the
CI ``slo-smoke`` job asserts on.
"""

import json
import sys

REQUIRED = {"name", "ph", "ts", "pid", "tid"}
PHASES = {"X", "i", "M"}

TSV_HEADER = "ts_ns\tdur_ns\ttrack\tcat\tkind\tname\targs"
TSV_KINDS = {"span", "instant"}

ALERT_REQUIRED = {"seq", "t_ns", "kind", "severity", "objective",
                  "rule", "burn_fast", "burn_slow", "budget_spent"}
ALERT_KINDS = {"fire", "escalate", "resolve"}
ALERT_SEVERITIES = {"ticket", "page"}


def validate_trace(document):
    """Return a list of violations (empty = valid)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level must be an object with a traceEvents array"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not any(isinstance(event, dict) and event.get("ph") == "X"
               for event in events):
        problems.append("trace has no spans (ph 'X')")
    last_ts = None
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        missing = REQUIRED - set(event)
        if missing:
            problems.append("%s: missing %s"
                            % (where, ", ".join(sorted(missing))))
            continue
        phase = event["ph"]
        if phase not in PHASES:
            problems.append("%s: unknown phase %r" % (where, phase))
            continue
        if phase == "M":
            continue                      # metadata: no timestamp rules
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad ts %r" % (where, ts))
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s: span needs dur >= 0, got %r"
                                % (where, dur))
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append("%s: instant needs scope g/p/t" % where)
        if last_ts is not None and ts < last_ts:
            problems.append("%s: timestamps not sorted (%r < %r)"
                            % (where, ts, last_ts))
        last_ts = ts
    return problems


def validate_tsv(text):
    """Violations in a :meth:`TraceRecorder.to_tsv` export."""
    problems = []
    lines = text.splitlines()
    if not lines:
        return ["TSV is empty"]
    if lines[0] != TSV_HEADER:
        return ["bad header %r (want %r)" % (lines[0], TSV_HEADER)]
    last_ts = None
    for number, line in enumerate(lines[1:], start=2):
        where = "line %d" % number
        cells = line.split("\t")
        if len(cells) != 7:
            problems.append("%s: %d column(s), want 7"
                            % (where, len(cells)))
            continue
        ts, dur, track, _cat, kind, _name, args = cells
        for label, cell in (("ts_ns", ts), ("dur_ns", dur),
                            ("track", track)):
            if not cell.lstrip("-").isdigit():
                problems.append("%s: %s %r is not an integer"
                                % (where, label, cell))
        if kind not in TSV_KINDS:
            problems.append("%s: unknown kind %r" % (where, kind))
        elif kind == "instant" and dur.isdigit() and int(dur) != 0:
            problems.append("%s: instant with nonzero dur %s"
                            % (where, dur))
        try:
            json.loads(args)
        except ValueError:
            problems.append("%s: args is not JSON: %r" % (where, args))
        if ts.lstrip("-").isdigit():
            if last_ts is not None and int(ts) < last_ts:
                problems.append("%s: timestamps not sorted (%s < %d)"
                                % (where, ts, last_ts))
            last_ts = int(ts)
    return problems


def validate_alert_log(document):
    """Violations in an :meth:`AlertLog.to_json` export: per-event
    schema plus the fire/escalate/resolve state machine (an alert
    resolves only while active, never fires twice without resolving,
    and timestamps never go backwards)."""
    problems = []
    if not isinstance(document, dict):
        return ["top level must be an object"]
    if not isinstance(document.get("slo"), str):
        problems.append("missing/invalid 'slo' name")
    events = document.get("events")
    if not isinstance(events, list):
        problems.append("'events' must be a list")
        return problems
    active = set()
    last_ts = None
    for index, event in enumerate(events):
        where = "events[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        missing = ALERT_REQUIRED - set(event)
        if missing:
            problems.append("%s: missing %s"
                            % (where, ", ".join(sorted(missing))))
            continue
        if event["seq"] != index:
            problems.append("%s: seq %r breaks append-only order"
                            % (where, event["seq"]))
        kind = event["kind"]
        if kind not in ALERT_KINDS:
            problems.append("%s: unknown kind %r" % (where, kind))
            continue
        if event["severity"] not in ALERT_SEVERITIES:
            problems.append("%s: unknown severity %r"
                            % (where, event["severity"]))
        t_ns = event["t_ns"]
        if not isinstance(t_ns, int) or t_ns < 0:
            problems.append("%s: bad t_ns %r" % (where, t_ns))
        elif last_ts is not None and t_ns < last_ts:
            problems.append("%s: timestamps not sorted (%d < %d)"
                            % (where, t_ns, last_ts))
        else:
            last_ts = t_ns
        for field in ("burn_fast", "burn_slow", "budget_spent"):
            if not isinstance(event[field], (int, float)) \
                    or event[field] < 0:
                problems.append("%s: bad %s %r"
                                % (where, field, event[field]))
        key = (event["objective"], event["severity"])
        if kind == "resolve":
            if key not in active:
                problems.append("%s: resolve of inactive alert %r"
                                % (where, key))
            active.discard(key)
        else:
            if key in active:
                problems.append("%s: %s while %r already active"
                                % (where, kind, key))
            active.add(key)
    return problems


def _count_trace(document):
    events = document.get("traceEvents", []) \
        if isinstance(document, dict) else []
    spans = sum(1 for event in events
                if isinstance(event, dict) and event.get("ph") == "X")
    instants = sum(1 for event in events
                   if isinstance(event, dict)
                   and event.get("ph") == "i")
    return spans, instants


def _load_json(path):
    with open(path) as handle:
        try:
            return json.load(handle), []
        except ValueError as error:
            return None, ["not JSON: %s" % error]


def validate_file(path):
    document, problems = _load_json(path)
    if problems:
        return problems
    return validate_trace(document)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    trace_path = None
    tsv_path = None
    alerts_path = None
    summary = False
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--summary":
            summary = True
        elif arg in ("--tsv", "--alerts"):
            if index + 1 >= len(argv):
                print("%s needs a path" % arg, file=sys.stderr)
                return 2
            index += 1
            if arg == "--tsv":
                tsv_path = argv[index]
            else:
                alerts_path = argv[index]
        elif arg.startswith("-"):
            print("unknown option %r" % arg, file=sys.stderr)
            return 2
        elif trace_path is None:
            trace_path = arg
        else:
            print("at most one trace.json positional", file=sys.stderr)
            return 2
        index += 1
    if trace_path is None:
        print("usage: python -m repro.obs.validate <trace.json> "
              "[--tsv <trace.tsv>] [--alerts <alerts.json>] "
              "[--summary]", file=sys.stderr)
        return 2

    problems = []
    document, load_problems = _load_json(trace_path)
    problems += ["%s: %s" % (trace_path, problem)
                 for problem in (load_problems
                                 or validate_trace(document))]
    spans = instants = alerts = 0
    if document is not None:
        spans, instants = _count_trace(document)
    if tsv_path is not None:
        with open(tsv_path) as handle:
            problems += ["%s: %s" % (tsv_path, problem)
                         for problem in validate_tsv(handle.read())]
    if alerts_path is not None:
        alert_doc, load_problems = _load_json(alerts_path)
        problems += ["%s: %s" % (alerts_path, problem)
                     for problem in (load_problems
                                     or validate_alert_log(alert_doc))]
        if alert_doc is not None and \
                isinstance(alert_doc.get("events"), list):
            alerts = len(alert_doc["events"])

    if problems:
        for problem in problems:
            print("INVALID: %s" % problem, file=sys.stderr)
        return 1
    print("valid Chrome trace: %s (%d spans, %d instants)"
          % (trace_path, spans, instants))
    if tsv_path is not None:
        print("valid trace TSV: %s" % tsv_path)
    if alerts_path is not None:
        print("valid alert log: %s (%d event(s))"
              % (alerts_path, alerts))
    if summary:
        print("summary: %d spans, %d instants, %d alert event(s)"
              % (spans, instants, alerts))
    return 0


if __name__ == "__main__":
    sys.exit(main())
