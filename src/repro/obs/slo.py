"""Streaming SLO evaluation: burn-rate alerting on virtual time.

PR 6 gave every run a :class:`~repro.obs.series.TimeSeries`; this
module is the *judge* on top of it — the detector half of the coming
autonomous control plane.  An :class:`SloSpec` declares objectives
(``latency_p99 <= X us``, ``error ratio <= Y``, ``availability >= Z``)
and an :class:`SloMonitor` evaluates them as a streaming process: each
closed time-series window feeds per-objective good/bad event counts,
multi-window burn rates (a fast ~5-window lookback paired with a slow
~60-window one, SRE-workbook style) decide when an alert fires, and an
append-only :class:`AlertLog` records every ``fire`` / ``escalate`` /
``resolve`` transition with the burn rates and cumulative error-budget
spend that justified it.

Burn rate is the classic definition: the observed bad-event fraction
over a lookback divided by the objective's budget fraction (a p99
objective budgets 1% of events; ``availability >= 0.999`` budgets
0.1%).  Burning at exactly 1.0x consumes the budget exactly; a rule
fires when *both* its lookbacks burn at or above its threshold (the
slow window proves the problem is sustained, the fast window makes
the alert resolve promptly once the cause clears).

Short virtual-time runs rarely contain 60 closed windows, so a
lookback of ``k`` windows reads the trailing ``min(k, seen)`` — the
monitor judges from the first window on, and a spec tunes its rule
windows to the run length (the chaos example uses 3/10-window pairs
over 20 us windows).

Everything derives from the seeded run: identical seeds produce a
byte-identical :meth:`AlertLog.to_json`, which is what lets CI diff
alert streams.  When a :class:`~repro.obs.trace.TraceRecorder` is
attached, every alert transition is mirrored as an instant event
(category ``alert``) so alerts land on the Perfetto timeline next to
the fault-injector instants that caused them.
"""

import json

from repro.errors import ObsError
from repro.harness.report import render_table

#: Alert severities, mildest first (index = rank).  A higher-severity
#: fire on an objective that already has an active milder alert is an
#: ``escalate`` event.
SEVERITIES = ("ticket", "page")

#: The SRE-practice default rule pair: page on a fast, hot burn
#: (14.4x would exhaust a 30-day budget in ~2 days), ticket on a
#: milder sustained one.  Both use the ~5-window fast / ~60-window
#: slow pairing; override per spec with :meth:`SloSpec.rule`.
DEFAULT_RULES = (("page", 14.4, 5, 60), ("ticket", 3.0, 15, 60))


class Objective:
    """One declared objective: what counts as a bad event, and what
    fraction of bad events the SLO budgets."""

    def __init__(self, kind, threshold, budget_fraction, key):
        if not 0.0 < budget_fraction < 1.0:
            raise ObsError("budget fraction must be in (0, 1), got %r"
                           % (budget_fraction,))
        self.kind = kind
        self.threshold = threshold
        self.budget_fraction = budget_fraction
        #: Stable rendered identity (``p99<=200.000us``) — the alert
        #: log's objective column.
        self.key = key

    def sample(self, window, latencies_ns):
        """``(bad, total)`` event counts for one closed window.

        *latencies_ns* is the window's own (sorted) completion
        latencies — the per-event population a latency objective
        classifies; ratio objectives read the window's counter deltas.
        """
        if self.kind == "latency":
            threshold_ns = self.threshold * 1000.0
            bad = sum(1 for latency in latencies_ns
                      if latency > threshold_ns)
            return bad, len(latencies_ns)
        if self.kind == "errors":
            total = window.offered
            bad = window.queue_drops + window.service_drops
        else:                                   # availability
            total = window.offered
            bad = window.offered - window.replies
        # Replies lag offers across window boundaries (a request
        # offered in window N may reply in N+1), so clamp the
        # per-window approximation into [0, total].
        return max(0, min(bad, total)), total

    def __repr__(self):
        return "Objective(%s)" % self.key


class BurnRule:
    """Fire *severity* when both lookbacks burn at >= *threshold*."""

    def __init__(self, severity, threshold, fast, slow):
        if severity not in SEVERITIES:
            raise ObsError("unknown severity %r (have: %s)"
                           % (severity, ", ".join(SEVERITIES)))
        if threshold <= 0:
            raise ObsError("burn threshold must be positive")
        fast, slow = int(fast), int(slow)
        if not 0 < fast <= slow:
            raise ObsError("rule windows must satisfy 0 < fast <= slow")
        self.severity = severity
        self.threshold = float(threshold)
        self.fast = fast
        self.slow = slow

    @property
    def rank(self):
        return SEVERITIES.index(self.severity)

    def describe(self):
        return "%.1fx over %d/%d windows" % (self.threshold, self.fast,
                                             self.slow)

    def __repr__(self):
        return "BurnRule(%s, %s)" % (self.severity, self.describe())


class SloSpec:
    """A declarative SLO: objectives plus the burn rules that page.

        spec = (SloSpec("memcached-slo")
                .latency_p99(200.0)         # 99% of replies <= 200 us
                .error_ratio(0.001)         # drops <= 0.1% of offered
                .availability(0.999))       # replies >= 99.9% offered

    Rules default to :data:`DEFAULT_RULES`; :meth:`rule` replaces them
    (first call clears the defaults) so short runs can use lookbacks
    that actually fit their window count.
    """

    def __init__(self, name="slo", window_us=100.0):
        if window_us <= 0:
            raise ObsError("slo window must be positive")
        self.name = str(name)
        #: The time-series window the monitor samples on when the
        #: deployment has no explicit ``.with_timeseries`` already.
        self.window_us = float(window_us)
        self.objectives = []
        self._rules = None

    # -- objectives ----------------------------------------------------------

    def latency_p99(self, max_us):
        """99% of completed requests reply within *max_us*."""
        if max_us <= 0:
            raise ObsError("latency threshold must be positive")
        self.objectives.append(Objective(
            "latency", float(max_us), 0.01,
            "p99<=%.3fus" % float(max_us)))
        return self

    def error_ratio(self, max_ratio):
        """Drops (queue + service) stay within *max_ratio* of offered."""
        self.objectives.append(Objective(
            "errors", float(max_ratio), float(max_ratio),
            "errors<=%.4f" % float(max_ratio)))
        return self

    def availability(self, min_fraction):
        """At least *min_fraction* of offered requests get a reply."""
        if not 0.0 < min_fraction < 1.0:
            raise ObsError("availability must be in (0, 1)")
        self.objectives.append(Objective(
            "availability", float(min_fraction), 1.0 - float(min_fraction),
            "availability>=%.4f" % float(min_fraction)))
        return self

    # -- rules ---------------------------------------------------------------

    def rule(self, severity, threshold, fast, slow):
        """Replace the default burn rules (cumulative across calls)."""
        if self._rules is None:
            self._rules = []
        self._rules.append(BurnRule(severity, threshold, fast, slow))
        return self

    @property
    def rules(self):
        """Active rules, mildest severity first (evaluation order —
        a ticket firing in the same window a page fires makes the
        page an escalation)."""
        rules = self._rules if self._rules is not None else \
            [BurnRule(*args) for args in DEFAULT_RULES]
        return sorted(rules, key=lambda rule: rule.rank)

    def describe(self):
        rows = [[objective.key, "budget %.2f%%"
                 % (100 * objective.budget_fraction)]
                for objective in self.objectives]
        rows += [["rule:%s" % rule.severity, rule.describe()]
                 for rule in self.rules]
        return render_table(["Objective / rule", "Detail"], rows,
                            title="SLO spec: %s" % self.name)

    def __repr__(self):
        return "SloSpec(%s: %d objective(s), %d rule(s))" % (
            self.name, len(self.objectives), len(self.rules))


class AlertLog:
    """Append-only record of alert transitions, export-stable.

    Events are dicts with a fixed key set (``seq``, ``t_ns``,
    ``kind``, ``severity``, ``objective``, ``rule``, ``burn_fast``,
    ``burn_slow``, ``budget_spent``); :meth:`to_json` and
    :meth:`to_tsv` render them deterministically, so same-seed runs
    export byte-identical logs.
    """

    COLUMNS = ("seq", "t_ns", "kind", "severity", "objective", "rule",
               "burn_fast", "burn_slow", "budget_spent")
    KINDS = ("fire", "escalate", "resolve")

    def __init__(self, slo_name="slo"):
        self.slo_name = slo_name
        self.events = []

    def record(self, t_ns, kind, severity, objective, rule, burn_fast,
               burn_slow, budget_spent):
        if kind not in self.KINDS:
            raise ObsError("unknown alert kind %r" % (kind,))
        event = {
            "seq": len(self.events), "t_ns": int(t_ns), "kind": kind,
            "severity": severity, "objective": objective,
            "rule": rule, "burn_fast": round(burn_fast, 4),
            "burn_slow": round(burn_slow, 4),
            "budget_spent": round(budget_spent, 4),
        }
        self.events.append(event)
        return event

    def find(self, kind=None, severity=None, objective=None):
        return [event for event in self.events
                if (kind is None or event["kind"] == kind)
                and (severity is None or event["severity"] == severity)
                and (objective is None
                     or event["objective"] == objective)]

    def __len__(self):
        return len(self.events)

    def to_dict(self):
        return {"slo": self.slo_name, "events": list(self.events)}

    def to_json(self):
        """Deterministic JSON (sorted keys, fixed separators): same
        seed -> byte-identical text."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def write_json(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return path

    def to_tsv(self):
        lines = ["\t".join(self.COLUMNS)]
        for event in self.events:
            lines.append("\t".join([
                "%d" % event["seq"], "%d" % event["t_ns"],
                event["kind"], event["severity"], event["objective"],
                event["rule"], "%.4f" % event["burn_fast"],
                "%.4f" % event["burn_slow"],
                "%.4f" % event["budget_spent"]]))
        return "\n".join(lines) + "\n"

    def write_tsv(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_tsv())
        return path

    def __repr__(self):
        return "AlertLog(%s: %d event(s))" % (self.slo_name,
                                              len(self.events))


class _ObjectiveState:
    """Streaming state for one objective: per-window samples plus the
    cumulative error-budget ledger."""

    def __init__(self, objective):
        self.objective = objective
        self.samples = []            # (bad, total) per closed window
        self.bad = 0
        self.total = 0

    def push(self, bad, total):
        self.samples.append((bad, total))
        self.bad += bad
        self.total += total

    def burn(self, lookback):
        """Burn rate over the trailing min(lookback, seen) windows:
        weighted bad fraction / budget fraction (0.0 when the lookback
        saw no events)."""
        tail = self.samples[-lookback:]
        total = sum(total for _, total in tail)
        if not total:
            return 0.0
        bad = sum(bad for bad, _ in tail)
        return (bad / total) / self.objective.budget_fraction

    def budget_spent(self):
        """Fraction of the whole error budget consumed so far (1.0 =
        exactly exhausted; can exceed 1.0)."""
        if not self.total:
            return 0.0
        return (self.bad / self.total) / self.objective.budget_fraction


class SloMonitor:
    """Evaluates an :class:`SloSpec` over a stream of closed windows.

    Attach to a time-series (``series.observers.append(monitor
    .on_window)``) or feed :meth:`on_window` directly; alerts land in
    :attr:`alert_log` and, when :attr:`tracer` is set, as instant
    events on the trace timeline.
    """

    def __init__(self, spec, tracer=None):
        if not spec.objectives:
            raise ObsError("SLO spec %r declares no objectives"
                           % (spec.name,))
        self.spec = spec
        self.tracer = tracer
        self.alert_log = AlertLog(spec.name)
        self.windows_seen = 0
        self._states = [_ObjectiveState(objective)
                        for objective in spec.objectives]
        self._active = {}      # (objective.key, severity) -> fire event

    # -- streaming interface -------------------------------------------------

    def on_window(self, window, latencies_ns):
        """Consume one closed window (the TimeSeries observer hook:
        the :class:`~repro.obs.series.Window` row plus its own sorted
        completion latencies)."""
        self.windows_seen += 1
        for state in self._states:
            state.push(*state.objective.sample(window, latencies_ns))
        for state in self._states:
            self._evaluate(state, window.end_ns)

    def _evaluate(self, state, t_ns):
        objective = state.objective
        for rule in self.spec.rules:        # mildest severity first
            burn_fast = state.burn(rule.fast)
            burn_slow = state.burn(rule.slow)
            key = (objective.key, rule.severity)
            active = key in self._active
            if not active and burn_fast >= rule.threshold \
                    and burn_slow >= rule.threshold:
                kind = "escalate" if self._milder_active(objective,
                                                         rule) \
                    else "fire"
                self._active[key] = self._record(
                    t_ns, kind, rule, objective, burn_fast, burn_slow,
                    state)
            elif active and burn_fast < rule.threshold:
                # The fast lookback recovering is the resolve signal —
                # that is what the short window of the pair is *for*.
                del self._active[key]
                self._record(t_ns, "resolve", rule, objective,
                             burn_fast, burn_slow, state)

    def _milder_active(self, objective, rule):
        return any(key == objective.key
                   and SEVERITIES.index(severity) < rule.rank
                   for key, severity in self._active)

    def _record(self, t_ns, kind, rule, objective, burn_fast,
                burn_slow, state):
        event = self.alert_log.record(
            t_ns, kind, rule.severity, objective.key, rule.describe(),
            burn_fast, burn_slow, state.budget_spent())
        if self.tracer is not None:
            self.tracer.instant(
                "alert:%s:%s:%s" % (kind, rule.severity, objective.key),
                ts_ns=t_ns, cat="alert",
                args={"burn_fast": event["burn_fast"],
                      "burn_slow": event["burn_slow"],
                      "budget_spent": event["budget_spent"],
                      "rule": event["rule"]})
        return event

    # -- inspection ----------------------------------------------------------

    @property
    def active_alerts(self):
        """Currently-firing ``(objective, severity)`` pairs, sorted."""
        return sorted(self._active)

    def budget(self):
        """Error-budget ledger per objective: ``{key: {"bad", "total",
        "spent"}}`` — ``spent`` is the consumed fraction of the whole
        budget (1.0 = exhausted)."""
        return {state.objective.key: {
                    "bad": state.bad, "total": state.total,
                    "spent": round(state.budget_spent(), 4)}
                for state in self._states}

    def verdict(self):
        """``True`` when every objective still has budget left and no
        alert is active — the one-bit answer "is the SLO met?"."""
        if self._active:
            return False
        return all(state.budget_spent() <= 1.0
                   for state in self._states)

    def text(self):
        budget = self.budget()
        rows = []
        for key in sorted(budget):
            entry = budget[key]
            rows.append([key, "%d/%d" % (entry["bad"], entry["total"]),
                         "%.2f%%" % (100 * entry["spent"]),
                         "yes" if any(active_key == key for active_key,
                                      _ in self._active) else "no"])
        budget_table = render_table(
            ["Objective", "Bad/total", "Budget spent", "Alerting"],
            rows, title="SLO: %s over %d window(s) — %s"
                        % (self.spec.name, self.windows_seen,
                           "met" if self.verdict() else "VIOLATED"))
        if not self.alert_log.events:
            return budget_table + "\n(no alerts)"
        alert_rows = [["%.3f" % (event["t_ns"] / 1e6), event["kind"],
                       event["severity"], event["objective"],
                       "%.1fx/%.1fx" % (event["burn_fast"],
                                        event["burn_slow"])]
                      for event in self.alert_log.events]
        return budget_table + "\n" + render_table(
            ["t_ms", "Kind", "Severity", "Objective", "Burn fast/slow"],
            alert_rows, title="Alert timeline")

    def __repr__(self):
        return ("SloMonitor(%s: %d window(s), %d alert event(s), "
                "%d active)" % (self.spec.name, self.windows_seen,
                                len(self.alert_log),
                                len(self._active)))
