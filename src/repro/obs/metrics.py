"""Labelled metrics instruments: counters, gauges, histograms.

The registry is the one namespace a deployment's counters live in.
:class:`~repro.deploy.metrics.Metrics` is a *view* over one of these —
its ``requests``/``replies``/``drops`` attributes read registry
counters — so ad-hoc experiment counters and the uniform deployment
accounting share instruments instead of drifting apart, and anything
watching a deployment (the coming control plane, the time-series
sampler) reads one snapshot.

Instruments are deliberately tiny:

* :class:`Counter` — monotonically increasing.
* :class:`Gauge` — last-write-wins level (queue depth, live shards).
* :class:`Histogram` — fixed bucket bounds, O(1) observe.  Percentiles
  interpolate linearly *within* the covering bucket instead of
  snapping to its upper bound, so an estimate moves smoothly with the
  data rather than jumping bucket-to-bucket (regression-tested on
  crafted samples).

Labels are keyword pairs (``counter("drops", server="shard3")``); each
distinct label set is its own instrument, and snapshots render them
``name{k=v,...}`` with sorted keys, so output order is deterministic.
"""

import re

from repro.errors import ObsError

#: Default latency histogram bounds (µs): sub-µs device latencies up
#: through host-stack milliseconds, roughly log-spaced.
DEFAULT_LATENCY_BOUNDS_US = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 50_000)


def interpolate_percentile(sorted_samples, fraction):
    """Linear-interpolation percentile over pre-sorted raw samples
    (``fraction`` in [0, 1]); shared by the open-loop report and the
    time-series sampler."""
    if not sorted_samples:
        return None
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = fraction * (len(sorted_samples) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_samples) - 1)
    weight = rank - low
    return sorted_samples[low] * (1.0 - weight) + \
        sorted_samples[high] * weight


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ObsError("counters only go up (inc %r)" % (amount,))
        self.value += amount

    def __repr__(self):
        return "Counter(%d)" % self.value


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = value

    def __repr__(self):
        return "Gauge(%r)" % (self.value,)


class Histogram:
    """Fixed-bound bucketed distribution with interpolated percentiles.

    *bounds* are ascending bucket upper bounds; one overflow bucket
    catches everything beyond the last bound.  ``observe`` is O(log
    buckets); the raw samples are not kept (that is what makes the
    instrument safe at qps) — exact-sample percentiles live where the
    samples do (:class:`~repro.net.dag.LatencyCapture`).
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds=DEFAULT_LATENCY_BOUNDS_US):
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise ObsError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ObsError("histogram bounds must be strictly ascending")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        low, high = 0, len(self.bounds)
        while low < high:
            mid = (low + high) // 2
            if value <= self.bounds[mid]:
                high = mid
            else:
                low = mid + 1
        self.counts[low] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self):
        return self.total / self.count if self.count else None

    def percentile(self, pct):
        """Estimate the *pct* percentile by linear interpolation
        between the covering bucket's bounds (never upper-bound
        snapping), clamped to the observed min/max so a one-sample
        histogram reports the sample, not a bucket edge."""
        if not self.count:
            return None
        if not 0.0 <= pct <= 100.0:
            raise ObsError("percentile must be in [0, 100]")
        target = (pct / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if cumulative + bucket_count < target or not bucket_count:
                cumulative += bucket_count
                continue
            lower = self.bounds[index - 1] if index > 0 else \
                min(0.0, self.min)
            upper = self.bounds[index] if index < len(self.bounds) \
                else self.max
            lower = max(lower, self.min)
            upper = min(upper, self.max)
            if upper <= lower:
                return lower
            position = (target - cumulative) / bucket_count
            return lower + (upper - lower) * position
        return self.max

    def to_dict(self):
        return {"count": self.count, "mean": self.mean(),
                "min": self.min, "max": self.max,
                "p50": self.percentile(50.0),
                "p99": self.percentile(99.0),
                "p999": self.percentile(99.9)}

    def __repr__(self):
        return "Histogram(count=%d, buckets=%d)" % (
            self.count, len(self.counts))


def _key(name, labels):
    return (name, tuple(sorted(labels.items())))


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name):
    """A legal Prometheus metric name (invalid chars -> ``_``, and a
    leading digit gets a ``_`` prefix)."""
    name = _PROM_INVALID.sub("_", str(name))
    if name[:1].isdigit():
        name = "_" + name
    return name


def _prom_labels(labels, extra=()):
    """``{k="v",...}`` with sorted keys + escaped values (empty string
    without labels)."""
    pairs = sorted(labels.items()) + list(extra)
    if not pairs:
        return ""
    rendered = []
    for key, value in pairs:
        value = str(value).replace("\\", "\\\\").replace('"', '\\"') \
            .replace("\n", "\\n")
        rendered.append('%s="%s"' % (_prom_name(key), value))
    return "{%s}" % ",".join(rendered)


def _prom_value(value):
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return "%d" % int(value)
        return repr(value)
    return "%d" % value


def _render(name, labels):
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join(
        "%s=%s" % pair for pair in sorted(labels.items())))


class MetricsRegistry:
    """One namespace of labelled instruments.

    ``counter``/``gauge``/``histogram`` get-or-create, so producers
    never coordinate registration; asking for an existing name with a
    different instrument kind is an error (one name, one meaning).
    """

    def __init__(self):
        self._instruments = {}      # (name, labels) -> instrument

    def _get(self, cls, name, labels, factory):
        key = _key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ObsError(
                "%r is already a %s, not a %s"
                % (_render(name, labels),
                   type(instrument).__name__, cls.__name__))
        return instrument

    def counter(self, name, **labels):
        return self._get(Counter, name, labels, Counter)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels, Gauge)

    def histogram(self, name, bounds=DEFAULT_LATENCY_BOUNDS_US,
                  **labels):
        return self._get(Histogram, name, labels,
                         lambda: Histogram(bounds))

    def __len__(self):
        return len(self._instruments)

    def __contains__(self, name):
        return any(key[0] == name for key in self._instruments)

    def snapshot(self):
        """``{rendered-name: value-or-histogram-dict}``, sorted keys —
        a deterministic, JSON-able dump of every instrument."""
        out = {}
        for (name, labels), instrument in sorted(
                self._instruments.items()):
            rendered = _render(name, dict(labels))
            if isinstance(instrument, Histogram):
                out[rendered] = instrument.to_dict()
            else:
                out[rendered] = instrument.value
        return out

    def to_prometheus(self):
        """Prometheus text-exposition rendering of every instrument.

        One ``# TYPE`` header per metric name, label sets as sorted
        ``name{k="v"}`` lines, histograms in the canonical
        ``_bucket``/``_sum``/``_count`` expansion with cumulative
        ``le`` buckets ending at ``+Inf``.  Output is deterministic
        (sorted names, sorted label sets, fixed float rendering), so
        the golden-file test can diff it byte for byte — and the
        coming socket front-end can serve it on ``/metrics``
        unchanged.
        """
        by_name = {}
        for (name, labels), instrument in self._instruments.items():
            by_name.setdefault(name, []).append((dict(labels),
                                                 instrument))
        lines = []
        for name in sorted(by_name):
            prom = _prom_name(name)
            entries = sorted(by_name[name],
                             key=lambda entry:
                             tuple(sorted(entry[0].items())))
            kind = entries[0][1]
            if isinstance(kind, Counter):
                lines.append("# TYPE %s counter" % prom)
                for labels, counter in entries:
                    lines.append("%s%s %s" % (prom,
                                              _prom_labels(labels),
                                              _prom_value(counter.value)))
            elif isinstance(kind, Gauge):
                lines.append("# TYPE %s gauge" % prom)
                for labels, gauge in entries:
                    lines.append("%s%s %s" % (prom,
                                              _prom_labels(labels),
                                              _prom_value(gauge.value)))
            else:
                lines.append("# TYPE %s histogram" % prom)
                for labels, histogram in entries:
                    cumulative = 0
                    for bound, count in zip(histogram.bounds,
                                            histogram.counts):
                        cumulative += count
                        lines.append("%s_bucket%s %d" % (
                            prom,
                            _prom_labels(labels,
                                         [("le",
                                           _prom_value(bound))]),
                            cumulative))
                    lines.append("%s_bucket%s %d" % (
                        prom, _prom_labels(labels, [("le", "+Inf")]),
                        histogram.count))
                    lines.append("%s_sum%s %s" % (
                        prom, _prom_labels(labels),
                        _prom_value(histogram.total)))
                    lines.append("%s_count%s %d" % (
                        prom, _prom_labels(labels), histogram.count))
        return "\n".join(lines) + "\n"

    def __repr__(self):
        return "MetricsRegistry(%d instruments)" % len(self)
