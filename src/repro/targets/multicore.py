"""Multiple Emu cores, one per port (§5.4).

"Using four Emu cores (one per port) further increases [Memcached
throughput] by 3.7x ... SET requests must be applied to all instances,
thus their relative ratio in performance cannot improve.  The downside
is that such an approach requires changes to the main logical core
wrapper in NetFPGA SUME."

The wrapper change is modelled here: each port gets its own service
instance; read-type requests are served by the arrival port's core
alone, while write-type requests are replicated into every core.
"""

from repro.errors import TargetError
from repro.targets.fpga import FpgaTarget, line_rate_pps


class MultiCoreTarget:
    """N independent cores behind N ports, with write replication."""

    #: Applying a replicated write on a non-arrival core skips request
    #: parsing and response generation: only the store update runs.
    REPLICA_APPLY_FRACTION = 0.25

    def __init__(self, service_factory, num_cores=4, seed=1,
                 is_write=None, opt_level=None, batch=None,
                 level_budget=None):
        if num_cores < 1:
            raise TargetError("need at least one core")
        self.cores = [FpgaTarget(service_factory(), num_ports=1,
                                 seed=seed + index, opt_level=opt_level,
                                 batch=batch, level_budget=level_budget)
                      for index in range(num_cores)]
        self.num_cores = num_cores
        self._is_write = is_write or (lambda frame: False)

    def serving_core(self, frame, port=None):
        """Which core a frame occupies (its arrival port's).  The
        deploy backend and the open-loop load layer route with this,
        so the wrapper's port→core mapping lives in exactly one
        place."""
        port = frame.src_port if port is None else port
        return port % self.num_cores

    def send(self, frame, port=None):
        """Route one request; writes are replicated to every core."""
        core_index = self.serving_core(frame, port)
        if self._is_write(frame):
            results = []
            for core in self.cores:
                replica = frame.copy()
                replica.src_port = 0
                results.append(core.send(replica))
            return results[core_index]
        local = frame.copy()
        local.src_port = 0
        return self.cores[core_index].send(local)

    def max_qps(self, read_frame, write_frame, write_ratio):
        """Aggregate throughput for a read/write mix.

        Reads scale with the number of cores; writes are replicated so
        every core spends (reduced) time on every write — the \u00a75.4
        asymmetry that caps the 4-core speedup at ~3.7x.
        """
        read_core_qps = self.cores[0].max_qps(read_frame.copy())
        write_core_qps = self.cores[0].max_qps(write_frame.copy())
        # Per-core budget at aggregate rate R: each core fully handles
        # its 1/N share of reads and writes, plus cheap replica applies
        # of the other cores' writes:
        #   R/N * [ (1-w)/G + w/W + w*(N-1)*beta/W ] = 1
        n = self.num_cores
        beta = self.REPLICA_APPLY_FRACTION
        per_core = ((1.0 - write_ratio) / read_core_qps +
                    write_ratio * (1.0 + beta * (n - 1)) / write_core_qps)
        aggregate = n / per_core
        line = n * line_rate_pps(len(read_frame.data))
        return min(aggregate, line)
