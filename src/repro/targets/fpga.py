"""The FPGA target: NetFPGA SUME timing around the functional pipeline.

Latency model (what the DAG card would see, DUT-only, §5.2):

    DUT latency = PHY/MAC (rx+tx) + arbiter wait + ingest + core cycles
                  + byte-serial datapath work + egress + serialization

All cycle terms run at the SUME's native 200 MHz (5 ns/cycle).  The only
non-determinism is the arbiter phase (0–3 cycles, seeded RNG): FPGA
latency is *predictable*, which is exactly the paper's headline
observation — 99th percentile within ~20–50 ns of the average, against
milliseconds of host-side tail.

Throughput model: the paper's services process one request at a time in
the core (FSM semantics), so the sustainable query rate is
``1 / (per-request datapath time)``, capped by 10G line rate for the
request size.  §5.4's numbers are consistent with this (e.g. ICMP echo:
1.09 µs avg latency ≈ 0.78 µs wire constant + 1/3.226 Mq/s of datapath).

At ``-O3`` the core may overlap independent requests (the Kiwi
pipelining schedule's initiation interval): each request's *latency*
is unchanged, but the steady-state interval between completions drops
to the widest stage — the core's II, either ingest walk, or the
byte-serial extra work — so the sustainable rate rises accordingly
(:meth:`FpgaTimingModel.service_interval_ns`).
"""

import random

from repro.errors import TargetError
from repro.targets.pipeline import BUS_BYTES, NetfpgaPipeline

CLOCK_HZ = 200_000_000
NS_PER_CYCLE = 1e9 / CLOCK_HZ

PHY_MAC_NS = 640            # rx + tx PHY/MAC pair (10GBASE-R + MAC)
ARBITER_BASE_CYCLES = 8     # input arbiter + metadata path
OUTPUT_QUEUE_CYCLES = 8
ARBITER_JITTER_CYCLES = 3   # phase alignment: the only latency noise
LINE_RATE_BPS = 10_000_000_000
ETHERNET_OVERHEAD_BYTES = 24   # preamble + FCS + IFG


def line_rate_pps(frame_bytes):
    """Max packets/s of one 10G port at a given frame size."""
    wire_bytes = max(frame_bytes, 60) + ETHERNET_OVERHEAD_BYTES
    return LINE_RATE_BPS / (8.0 * wire_bytes)


class FpgaTimingModel:
    """Turns measured core cycles + frame sizes into nanoseconds."""

    def __init__(self, seed=1):
        self._rng = random.Random(seed)

    def ingest_cycles(self, frame_bytes):
        """Store-and-forward of the frame over the 256-bit bus."""
        return -(-frame_bytes // BUS_BYTES)        # ceil

    def latency_ns(self, frame_bytes, core_cycles, extra_cycles=0,
                   reply_bytes=None):
        reply_bytes = frame_bytes if reply_bytes is None else reply_bytes
        cycles = (ARBITER_BASE_CYCLES +
                  self.ingest_cycles(frame_bytes) +
                  core_cycles + extra_cycles +
                  self.ingest_cycles(reply_bytes) +
                  OUTPUT_QUEUE_CYCLES +
                  self._rng.randint(0, ARBITER_JITTER_CYCLES))
        serialization_ns = 8e9 * reply_bytes / LINE_RATE_BPS
        return PHY_MAC_NS + cycles * NS_PER_CYCLE + serialization_ns

    def service_time_ns(self, frame_bytes, core_cycles, extra_cycles=0,
                        reply_bytes=None):
        """Per-request datapath occupancy (sets the max query rate)."""
        reply_bytes = frame_bytes if reply_bytes is None else reply_bytes
        cycles = (ARBITER_BASE_CYCLES +
                  self.ingest_cycles(frame_bytes) +
                  core_cycles + extra_cycles +
                  self.ingest_cycles(reply_bytes) +
                  OUTPUT_QUEUE_CYCLES)
        return cycles * NS_PER_CYCLE

    def service_interval_ns(self, frame_bytes, core_interval_cycles,
                            extra_cycles=0, reply_bytes=None):
        """Steady-state interval between completions when the core
        pipelines requests.

        With requests overlapped every ``core_interval_cycles`` (the
        -O3 initiation interval), the arbiter/output-queue constants
        amortize across in-flight requests and only the *widest* stage
        bounds throughput.  The stages of the pipelined datapath are
        the ingress walk, the core, and the egress walk; the
        byte-serial extra work (request parse and checksum-in on the
        way in, response construction and checksum-out on the way out)
        rides the two walks, half each, so it lengthens those stages
        rather than forming a fourth serial unit.  Each stage still
        holds one request at a time — total work per request is
        conserved, only the overlap across requests changes."""
        reply_bytes = frame_bytes if reply_bytes is None else reply_bytes
        extra_in = extra_cycles // 2
        extra_out = extra_cycles - extra_in
        cycles = max(1, core_interval_cycles,
                     self.ingest_cycles(frame_bytes) + extra_in,
                     self.ingest_cycles(reply_bytes) + extra_out)
        return cycles * NS_PER_CYCLE


class FpgaTarget:
    """Run a service as the main logical core of a NetFPGA SUME.

    ``send(frame)`` returns ``(emitted, latency_ns)``; aggregate
    statistics accumulate for the measurement harness.

    *opt_level* selects the Kiwi middle-end level for the core-cycle
    model.  ``None`` (the default) keeps the behavioural pause-count;
    an integer compiles the service's flat kernel (services that have
    one expose ``kernel_cycle_model``) at that level and measures each
    request on the resulting netlist, so Table 3/4-style rows can
    compare optimized against unoptimized cycles per request.
    """

    def __init__(self, service, num_ports=4, seed=1, opt_level=None,
                 batch=None, level_budget=None):
        self.service = service
        self.opt_level = opt_level
        self.batch = batch
        self.level_budget = level_budget
        cycle_model = None
        if opt_level is not None:
            factory = getattr(service, "kernel_cycle_model", None)
            if factory is None:
                raise TargetError(
                    "service %r has no compiled-kernel cycle model; "
                    "cannot honour opt_level=%r"
                    % (getattr(service, "name", service), opt_level))
            kwargs = {}
            if batch is not None:
                kwargs["batch"] = batch
            if level_budget is not None:
                kwargs["level_budget"] = level_budget
            cycle_model = factory(opt_level, **kwargs)
        self.pipeline = NetfpgaPipeline(service, num_ports,
                                        cycle_model=cycle_model)
        self.timing = FpgaTimingModel(seed)
        self.seed = seed
        self.latencies_ns = []
        self.core_cycle_counts = []
        #: Per-request datapath occupancy (ns) — what the request
        #: serialises on the core for, recorded for every frame
        #: (including drops: a rejected frame still occupied the
        #: core).  The open-loop load layer reads this.
        self.service_times_ns = []

    @property
    def cycle_model(self):
        """The compiled-kernel cycle model driving this device's core
        counts (``None`` on the behavioural pause-count path) — the
        observability layer reaches it here to enable per-FSM-state
        profiling."""
        return self.pipeline.cycle_model

    @property
    def core_interval_cycles(self):
        """The core's -O3 initiation interval (cycles), or None when
        the core runs one request at a time (behavioural model, below
        -O3, or no feasible pipelining schedule)."""
        model = self.pipeline.cycle_model
        if model is None:
            return None
        return getattr(model, "initiation_interval", None)

    def _service_ns(self, frame_bytes, core_cycles, extra_cycles,
                    reply_bytes=None):
        """Datapath occupancy of one request: the steady-state
        completion interval when the core pipelines, the full
        per-request service time when it does not."""
        interval = self.core_interval_cycles
        if interval is not None:
            return self.timing.service_interval_ns(
                frame_bytes, interval, extra_cycles=extra_cycles,
                reply_bytes=reply_bytes)
        return self.timing.service_time_ns(
            frame_bytes, core_cycles, extra_cycles=extra_cycles,
            reply_bytes=reply_bytes)

    def _extra_cycles(self, frame):
        """Byte-serial datapath work beyond the handler's own pauses.

        Services override ``datapath_extra_cycles`` when their hardware
        implementation does byte-serial work the behavioural handler
        expresses in one step (checksums over payloads, response
        construction); the default charges the checksum walk.
        """
        extra = getattr(self.service, "datapath_extra_cycles", None)
        if extra is not None:
            return extra(frame)
        return len(frame.data) // 4

    def send(self, frame):
        """One request through the DUT; returns (emitted, latency_ns)."""
        emitted, core_cycles = self.pipeline.process_frame(frame)
        return self._finish(frame, emitted, core_cycles)

    def send_batch(self, frames):
        """A burst of requests through the DUT.

        Returns one ``(emitted, latency_ns)`` per frame, identical to
        calling :meth:`send` frame by frame: admission, arbitration,
        behavioural fate, statistics, and the arbiter-jitter RNG all
        advance in frame order.  The only difference is *how* the core
        cycles are obtained — with a batched cycle model
        (``batch=N``) the whole burst's admitted frames run through
        the lockstep SoA engine in one ``cycles_batch`` call.
        """
        model = self.pipeline.cycle_model
        if model is None or getattr(model, "batch", None) is None:
            return [self.send(frame) for frame in frames]
        pipeline = self.pipeline
        frames = list(frames)
        staged = []
        for index, frame in enumerate(frames):
            if pipeline.receive(frame):
                staged.append((index, pipeline.arbitrate()))
        cycle_counts = model.cycles_batch(
            [queued for _, queued in staged])
        cores = {}
        for (index, queued), measured in zip(staged, cycle_counts):
            dataplane, cycles = pipeline.run_core(queued, cycles=measured)
            cores[index] = (queued, dataplane, cycles)
        results = []
        for index, frame in enumerate(frames):
            if index in cores:
                queued, dataplane, cycles = cores[index]
                emitted = pipeline.dispatch(dataplane)
                results.append(self._finish(queued, emitted, cycles))
            else:
                results.append(self._finish(frame, [], 0))
        return results

    def _finish(self, frame, emitted, core_cycles):
        """Statistics + timing tail shared by send() and send_batch()."""
        self.core_cycle_counts.append(core_cycles)
        extra_cycles = self._extra_cycles(frame)
        for port, _ in emitted:
            self.pipeline.drain_port(port)   # the wire pulls frames off
        if not emitted:
            self.service_times_ns.append(self._service_ns(
                len(frame.data), core_cycles, extra_cycles))
            return emitted, None      # dropped: nothing on the wire
        reply_bytes = len(emitted[0][1].data)
        self.service_times_ns.append(self._service_ns(
            len(frame.data), core_cycles, extra_cycles,
            reply_bytes=reply_bytes))
        latency = self.timing.latency_ns(
            len(frame.data), core_cycles,
            extra_cycles=extra_cycles,
            reply_bytes=reply_bytes)
        self.latencies_ns.append(latency)
        return emitted, latency

    def max_qps(self, frame):
        """Sustainable queries/s for requests shaped like *frame*."""
        probe = frame.copy()
        emitted, core_cycles = self.pipeline.process_frame(probe)
        for port, _ in emitted:
            self.pipeline.drain_port(port)
        reply_bytes = len(emitted[0][1].data) if emitted else None
        service_ns = self._service_ns(
            len(frame.data), core_cycles, self._extra_cycles(frame),
            reply_bytes=reply_bytes)
        if service_ns <= 0:
            raise TargetError("service time must be positive")
        return min(1e9 / service_ns, line_rate_pps(len(frame.data)))
