"""The CPU target (workflow A of Fig. 1): software semantics.

The service runs as an ordinary process: frames arrive on virtual
interfaces (tap-style), the handler runs to completion per frame, and
replies leave on the interfaces the output bitmap selects.  This is the
develop/test/debug environment — functional, not timing-accurate.
"""

from repro.core.dataplane import NetFPGAData
from repro.errors import TargetError
from repro.net.interfaces import VirtualInterface


class CpuTarget:
    """Run a service over a set of virtual network interfaces.

    *seed* is accepted for uniformity with the other targets (the
    :mod:`repro.deploy` layer threads one seed to every backend).
    Software semantics are deterministic, so the seed changes nothing
    here — but a call site no longer needs to know which targets
    randomize and which don't.
    """

    def __init__(self, service, num_ports=4, seed=1):
        self.service = service
        self.seed = seed
        self.interfaces = [VirtualInterface("veth%d" % port)
                           for port in range(num_ports)]
        self.frames_processed = 0

    def interface(self, port):
        if not 0 <= port < len(self.interfaces):
            raise TargetError("no interface %d" % port)
        return self.interfaces[port]

    def send(self, frame):
        """Inject one frame; returns the list of (port, frame) emitted."""
        dataplane = NetFPGAData(frame)
        self.service.process(dataplane)
        self.frames_processed += 1
        emitted = []
        for port, interface in enumerate(self.interfaces):
            if dataplane.dst_ports & (1 << port):
                out = dataplane.to_frame()
                interface.transmit(out)
                emitted.append((port, out))
        return emitted

    def poll(self):
        """Drain any frames queued on the interfaces' RX sides and
        process them (the main loop of the x86 runtime)."""
        emitted = []
        for port, interface in enumerate(self.interfaces):
            for frame in interface.drain_rx():
                frame.src_port = port
                emitted.extend(self.send(frame))
        return emitted
