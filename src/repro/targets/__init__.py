"""Heterogeneous execution targets (§3.3, contribution 2).

The same service object runs on all of them:

* :mod:`repro.targets.cpu`     — workflow A: an ordinary process over
  virtual NICs (software semantics; develop/test/debug).
* :mod:`repro.targets.fpga`    — workflow B/C: the NetFPGA SUME model —
  reference pipeline (Fig. 10) around the service as the "main logical
  core", with a 200 MHz cycle/latency/throughput model.
* :mod:`repro.netsim`          — the Mininet-style simulated network
  (services attach to simulated hosts' links).
* :mod:`repro.targets.multicore` — N service cores, one per port
  (§5.4's 4-core Memcached experiment).

Direct target construction is deprecated (not removed): new code
should go through :func:`repro.deploy.deploy`, which builds any of
these targets behind one fluent API with uniform seeding, optimization
threading, fault wiring, and metrics.  These classes remain the
implementation layer the deploy backends delegate to.
"""

from repro.targets.cpu import CpuTarget
from repro.targets.fpga import FpgaTarget, FpgaTimingModel
from repro.targets.kernel_model import KernelCycleModel
from repro.targets.pipeline import NetfpgaPipeline
from repro.targets.multicore import MultiCoreTarget

__all__ = ["CpuTarget", "FpgaTarget", "FpgaTimingModel",
           "KernelCycleModel", "NetfpgaPipeline", "MultiCoreTarget"]
