"""Functional model of the NetFPGA reference pipeline (Fig. 10).

Four 10G ports feed per-port input FIFOs; a round-robin input arbiter
picks one frame at a time into the *main logical core* (the Emu
service); the core's output bitmap fans the frame out into per-port
output queues, which drain onto the wires.

"Emu capitalizes on this generic NetFPGA design: we target only the
main logical core and build upon all other components to be shared
between services."  This module is those shared components.
"""

from repro.core.dataplane import NetFPGAData
from repro.errors import TargetError
from repro.ip.fifo import SyncFIFO

BUS_BYTES = 32                  # 256-bit AXI-Stream datapath
INPUT_QUEUE_DEPTH = 64
OUTPUT_QUEUE_DEPTH = 64


class NetfpgaPipeline:
    """Input arbiter + main logical core slot + output queues.

    *cycle_model* (optional, a
    :class:`~repro.targets.kernel_model.KernelCycleModel`) replaces the
    behavioural pause-count with cycles measured on the compiled kernel
    — the frame's fate is still decided behaviourally, but its cost is
    the optimized (or deliberately unoptimized) machine's.
    """

    def __init__(self, service, num_ports=4, cycle_model=None):
        self.service = service
        self.num_ports = num_ports
        self.cycle_model = cycle_model
        self.input_queues = [SyncFIFO(width=8, depth=INPUT_QUEUE_DEPTH)
                             for _ in range(num_ports)]
        self.output_queues = [SyncFIFO(width=8, depth=OUTPUT_QUEUE_DEPTH)
                              for _ in range(num_ports)]
        self._arbiter_next = 0
        self.frames_in = 0
        self.frames_out = 0
        self.frames_dropped_ingress = 0
        self.core_busy_cycles = 0

    def receive(self, frame):
        """A frame arrives on its ``src_port``; queue it for the arbiter."""
        if not 0 <= frame.src_port < self.num_ports:
            raise TargetError("no port %d on this pipeline"
                              % frame.src_port)
        queue = self.input_queues[frame.src_port]
        if not queue.try_push(frame):
            self.frames_dropped_ingress += 1
            return False
        self.frames_in += 1
        return True

    def arbitrate(self):
        """Round-robin pick of the next queued frame (or ``None``)."""
        for offset in range(self.num_ports):
            port = (self._arbiter_next + offset) % self.num_ports
            queue = self.input_queues[port]
            if not queue.empty:
                self._arbiter_next = (port + 1) % self.num_ports
                return queue.pop()
        return None

    def run_core(self, frame, cycles=None):
        """Push one frame through the main logical core.

        Returns ``(dataplane, core_cycles)`` — hardware semantics, so
        the cycle count is measured, not assumed.  *cycles* supplies a
        pre-measured count (the batched FPGA target measures a whole
        burst in one lockstep run, then replays each frame's
        behavioural fate here with its already-known cost).
        """
        dataplane = NetFPGAData(frame)
        dataplane, counted = self.service.process_counting(dataplane)
        if cycles is None:
            cycles = counted if self.cycle_model is None \
                else self.cycle_model.cycles(frame)
        self.core_busy_cycles += cycles
        return dataplane, cycles

    def dispatch(self, dataplane):
        """Fan the core's decision out into the output queues."""
        emitted = []
        for port in range(self.num_ports):
            if dataplane.dst_ports & (1 << port):
                out_frame = dataplane.to_frame()
                out_frame.src_port = dataplane.src_port
                if self.output_queues[port].try_push((port, out_frame)):
                    emitted.append((port, out_frame))
                    self.frames_out += 1
        return emitted

    def process_frame(self, frame):
        """Full path: receive → arbitrate → core → output queues.

        Returns ``(emitted, core_cycles)`` where *emitted* is a list of
        ``(port, frame)``.
        """
        if not self.receive(frame):
            return [], 0
        queued = self.arbitrate()
        dataplane, cycles = self.run_core(queued)
        emitted = self.dispatch(dataplane)
        return emitted, cycles

    def drain_port(self, port):
        """Pop everything sitting in one output queue."""
        frames = []
        queue = self.output_queues[port]
        while not queue.empty:
            frames.append(queue.pop()[1])
        return frames

    def occupancy(self):
        """Queue occupancies, for monitoring/debug."""
        return {
            "input": [q.occupancy for q in self.input_queues],
            "output": [q.occupancy for q in self.output_queues],
        }
